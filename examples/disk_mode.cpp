// Disk-resident C2LSH — the paper's external-memory deployment, end to end:
// build an index into a page file, reopen it cold, and watch the buffer
// pool turn page misses into hits as the cache warms, with identical
// answers to the in-memory index throughout.
//
// Run: ./build/examples/disk_mode [--n=10000] [--pool_mib=4]

#include <cstdio>
#include <filesystem>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/util/argparse.h"
#include "src/util/timer.h"
#include "src/vector/synthetic.h"

int main(int argc, char** argv) {
  using namespace c2lsh;

  ArgParser parser("disk_mode: the external-memory C2LSH index with measured I/O");
  parser.AddInt("n", 10000, "dataset size");
  parser.AddInt("k", 10, "neighbors per query");
  parser.AddInt("queries", 10, "number of queries");
  parser.AddDouble("pool_mib", 4.0, "buffer pool size in MiB");
  parser.AddInt("seed", 5, "seed");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t pool_pages = static_cast<size_t>(
      parser.GetDouble("pool_mib") * (1 << 20) / kDefaultPageBytes);
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  auto pd = MakeProfileDataset(DatasetProfile::kMnist, n, nq, seed);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().ToString().c_str());
    return 1;
  }
  C2lshOptions options;
  options.seed = seed;

  const std::string path =
      (std::filesystem::temp_directory_path() / "c2lsh_disk_example.pf").string();

  // Build the on-disk index.
  Timer build_timer;
  {
    auto built = DiskC2lshIndex::Build(pd->data, options, path, pool_pages);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    std::printf("built disk index in %.2fs: %llu pages (%.1f MiB) at %s\n",
                build_timer.ElapsedSeconds(),
                static_cast<unsigned long long>(built->FilePages()),
                static_cast<double>(built->FilePages()) * kDefaultPageBytes / (1 << 20),
                path.c_str());
  }

  // Reopen cold, with a bounded buffer pool.
  auto disk = DiskC2lshIndex::Open(path, pool_pages);
  if (!disk.ok()) {
    std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
    return 1;
  }
  std::printf("reopened with a %.1f MiB pool (%zu pages)\n\n",
              static_cast<double>(pool_pages) * kDefaultPageBytes / (1 << 20),
              pool_pages);

  // Reference: the in-memory index with the same seed gives identical answers.
  auto mem = C2lshIndex::Build(pd->data, options);
  if (!mem.ok()) {
    std::fprintf(stderr, "%s\n", mem.status().ToString().c_str());
    return 1;
  }

  std::printf("%-7s %-18s %-18s %-10s\n", "query", "cold misses/hits", "warm misses/hits",
              "answers==mem?");
  size_t mismatches = 0;
  for (size_t q = 0; q < nq; ++q) {
    DiskQueryStats cold;
    auto r1 = disk->Query(pd->data, pd->queries.row(q), k, &cold);
    DiskQueryStats warm;
    auto r2 = disk->Query(pd->data, pd->queries.row(q), k, &warm);
    auto rm = mem->Query(pd->data, pd->queries.row(q), k);
    if (!r1.ok() || !r2.ok() || !rm.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    bool same = r1->size() == rm->size();
    for (size_t i = 0; same && i < rm->size(); ++i) {
      same = (*r1)[i].id == (*rm)[i].id;
    }
    if (!same) ++mismatches;
    std::printf("%-7zu %6llu / %-9llu %6llu / %-9llu %s\n", q,
                static_cast<unsigned long long>(cold.pool_misses),
                static_cast<unsigned long long>(cold.pool_hits),
                static_cast<unsigned long long>(warm.pool_misses),
                static_cast<unsigned long long>(warm.pool_hits), same ? "yes" : "NO");
  }
  const BufferPoolStats& total = disk->pool_stats();
  std::printf("\ncumulative pool: %llu hits, %llu misses (hit rate %.3f), "
              "%llu evictions\n",
              static_cast<unsigned long long>(total.hits),
              static_cast<unsigned long long>(total.misses), total.HitRate(),
              static_cast<unsigned long long>(total.evictions));
  std::printf("answer equivalence with the in-memory index: %zu/%zu queries\n",
              nq - mismatches, nq);
  std::filesystem::remove(path);
  return mismatches == 0 ? 0 : 1;
}
