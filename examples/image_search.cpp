// Image similarity search — the workload class (Color / LabelMe descriptors)
// the paper's introduction motivates.
//
// Simulates a library of image descriptors (GIST-like, 512-d), builds a
// C2LSH index, and serves "find visually similar images" queries, comparing
// the approximate answers against the exact scan to report recall/ratio and
// speedup live.
//
// Run: ./build/examples/image_search [--n=20000] [--k=10]

#include <cstdio>

#include "src/baselines/linear_scan.h"
#include "src/core/index.h"
#include "src/eval/metrics.h"
#include "src/util/argparse.h"
#include "src/util/timer.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

int main(int argc, char** argv) {
  using namespace c2lsh;

  ArgParser parser("image_search: approximate visual similarity over GIST-like vectors");
  parser.AddInt("n", 20000, "library size (number of images)");
  parser.AddInt("k", 10, "similar images to retrieve");
  parser.AddInt("queries", 20, "number of query images");
  parser.AddInt("seed", 1, "seed");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  std::printf("Generating a %zu-image library of 512-d GIST-like descriptors...\n", n);
  auto pd = MakeProfileDataset(DatasetProfile::kLabelMe, n, nq, seed);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().ToString().c_str());
    return 1;
  }

  Timer build_timer;
  C2lshOptions options;
  options.seed = seed;
  auto index = C2lshIndex::Build(pd->data, options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("Index built in %.2fs (%s)\n", build_timer.ElapsedSeconds(),
              index->derived().ToString().c_str());

  LinearScan scan;
  double approx_ms = 0, exact_ms = 0, recall = 0, ratio = 0;
  for (size_t q = 0; q < nq; ++q) {
    Timer t1;
    auto approx = index->Query(pd->data, pd->queries.row(q), k);
    approx_ms += t1.ElapsedMillis();
    Timer t2;
    auto exact = scan.Search(pd->data, pd->queries.row(q), k);
    exact_ms += t2.ElapsedMillis();
    if (!approx.ok() || !exact.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    recall += Recall(*approx, *exact, k);
    ratio += OverallRatio(*approx, *exact, k);
    if (q == 0) {
      std::printf("\nSample query — top-%zu similar images (C2LSH | exact):\n", k);
      for (size_t i = 0; i < k && i < approx->size(); ++i) {
        std::printf("  #%zu  img-%06u d=%.3f   |   img-%06u d=%.3f\n", i + 1,
                    (*approx)[i].id, (*approx)[i].dist, (*exact)[i].id,
                    (*exact)[i].dist);
      }
    }
  }
  std::printf("\nOver %zu queries: recall@%zu=%.3f  ratio=%.4f\n", nq, k, recall / nq,
              ratio / nq);
  std::printf("Mean latency: C2LSH %.2fms vs exact scan %.2fms (%.1fx speedup)\n",
              approx_ms / nq, exact_ms / nq, exact_ms / approx_ms);
  return 0;
}
