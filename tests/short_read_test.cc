// Short-read fault tests: POSIX pread may return fewer bytes than asked at
// ANY offset, and FaultInjectionEnv::SetShortReads makes that promise easy
// to break on purpose. Every fixed-size-record reader must loop via
// ReadFullyAt — these tests pin that for the raw helper, PageFile (header
// and page reads), and WAL replay, including short reads combined with
// transient faults so the retry loop and the refill loop compose.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/storage/page_file.h"
#include "src/storage/wal.h"
#include "src/util/env.h"
#include "src/util/fault_env.h"

namespace c2lsh {
namespace {

class ShortReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_short_read_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  FaultInjectionEnv env_{Env::Default()};
};

TEST_F(ShortReadTest, ReadFullyAtLoopsUntilFilled) {
  auto file_or = env_.NewFile(Path("raw.bin"));
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  std::vector<uint8_t> data(8192);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  ASSERT_TRUE(file->WriteAt(0, data.data(), data.size()).ok());

  // Every one of the next reads is served short; ReadFullyAt must keep
  // looping until the full range arrives, byte-identical.
  env_.SetShortReads(64);
  std::vector<uint8_t> got(data.size());
  size_t bytes_read = 0;
  Status s = ReadFullyAt(*file, 0, got.data(), got.size(), &bytes_read);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(bytes_read, data.size());
  EXPECT_EQ(got, data);
  EXPECT_GT(env_.stats().short_reads, 0u);
}

TEST_F(ShortReadTest, ReadFullyAtShortOnlyAtTrueEof) {
  auto file_or = env_.NewFile(Path("eof.bin"));
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  const char payload[] = "0123456789";
  ASSERT_TRUE(file->WriteAt(0, payload, 10).ok());

  env_.SetShortReads(8);
  char buf[64];
  size_t bytes_read = 0;
  // Asking for more than the file holds: the loop must stop at genuine EOF
  // with exactly the available bytes, not spin and not invent data.
  Status s = ReadFullyAt(*file, 4, buf, sizeof(buf), &bytes_read);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(bytes_read, 6u);
  EXPECT_EQ(std::memcmp(buf, "456789", 6), 0);
}

TEST_F(ShortReadTest, PageFileReadsAndReopensUnderShortReads) {
  std::vector<uint8_t> page;
  PageId id = 0;
  {
    auto pf_or = PageFile::Create(Path("pages.pf"), 4096, &env_);
    ASSERT_TRUE(pf_or.ok()) << pf_or.status().ToString();
    PageFile pf = std::move(pf_or).value();
    auto id_or = pf.AllocatePage();
    ASSERT_TRUE(id_or.ok());
    id = id_or.value();
    page.assign(pf.page_bytes(), 0);
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(i % 251);
    }
    ASSERT_TRUE(pf.WritePage(id, page.data()).ok());
    ASSERT_TRUE(pf.Sync().ok());

    // Page reads cross the checksum verifier: a short read mistaken for
    // truncation would surface as Corruption here.
    env_.SetShortReads(16);
    std::vector<uint8_t> got(pf.page_bytes());
    Status s = pf.ReadPage(id, got.data());
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(got, page);
  }
  // Reopen with short reads armed: the shadow-header validation reads must
  // loop too.
  env_.SetShortReads(16);
  auto reopened = PageFile::Open(Path("pages.pf"), &env_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<uint8_t> got(reopened->page_bytes());
  ASSERT_TRUE(reopened->ReadPage(id, got.data()).ok());
  EXPECT_EQ(got, page);
}

TEST_F(ShortReadTest, WalReplaySurvivesShortReads) {
  const std::string path = Path("log.wal");
  {
    auto wal_or = WriteAheadLog::Open(path, &env_);
    ASSERT_TRUE(wal_or.ok());
    WriteAheadLog wal = std::move(wal_or).value();
    for (uint64_t lsn = 1; lsn <= 20; ++lsn) {
      WriteAheadLog::Record rec;
      rec.lsn = lsn;
      rec.type = (lsn % 4 == 0) ? WriteAheadLog::RecordType::kDelete
                                : WriteAheadLog::RecordType::kInsert;
      rec.id = static_cast<ObjectId>(lsn);
      if (rec.type == WriteAheadLog::RecordType::kInsert) {
        rec.vec.assign(8, static_cast<float>(lsn));
      }
      ASSERT_TRUE(wal.Append(rec).ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
  }
  // Replay with every read served short: all 20 records must arrive, in
  // order, byte-identical — a replay that mistakes a short read for a torn
  // tail would silently drop acked mutations.
  env_.SetShortReads(1000);
  auto wal_or = WriteAheadLog::Open(path, &env_);
  ASSERT_TRUE(wal_or.ok());
  uint64_t seen = 0;
  auto stats_or = wal_or->Replay(0, [&](const WriteAheadLog::Record& rec) {
    ++seen;
    EXPECT_EQ(rec.lsn, seen);
    EXPECT_EQ(rec.id, static_cast<ObjectId>(seen));
    if (rec.type == WriteAheadLog::RecordType::kInsert) {
      EXPECT_EQ(rec.vec.size(), 8u);
      EXPECT_FLOAT_EQ(rec.vec[0], static_cast<float>(seen));
    }
    return Status::OK();
  });
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_EQ(stats_or->applied, 20u);
  EXPECT_EQ(stats_or->truncated, 0u);
  EXPECT_GT(env_.stats().short_reads, 0u);
}

TEST_F(ShortReadTest, ShortReadsComposeWithTransientFaultRetries) {
  auto pf_or = PageFile::Create(Path("both.pf"), 4096, &env_);
  ASSERT_TRUE(pf_or.ok());
  PageFile pf = std::move(pf_or).value();
  auto id_or = pf.AllocatePage();
  ASSERT_TRUE(id_or.ok());
  std::vector<uint8_t> page(pf.page_bytes(), 0xAB);
  ASSERT_TRUE(pf.WritePage(id_or.value(), page.data()).ok());
  ASSERT_TRUE(pf.Sync().ok());

  // A transient fault burst AND short reads at once: the retry loop handles
  // the former, the refill loop the latter, and they must not confuse each
  // other (e.g. a retry restarting mid-refill must restart cleanly).
  env_.SetTransientReadFaults(2);
  env_.SetShortReads(8);
  std::vector<uint8_t> got(pf.page_bytes());
  Status s = pf.ReadPage(id_or.value(), got.data());
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got, page);
}

}  // namespace
}  // namespace c2lsh
