#include "src/vector/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(MatrixTest, CreateZeroed) {
  auto r = FloatMatrix::Create(3, 4);
  ASSERT_TRUE(r.ok());
  const FloatMatrix& m = r.value();
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.dim(), 4u);
  EXPECT_FALSE(m.empty());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.at(i, j), 0.0f);
    }
  }
}

TEST(MatrixTest, CreateRejectsZeroDims) {
  EXPECT_TRUE(FloatMatrix::Create(0, 4).status().IsInvalidArgument());
  EXPECT_TRUE(FloatMatrix::Create(4, 0).status().IsInvalidArgument());
}

TEST(MatrixTest, DefaultIsEmpty) {
  FloatMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.num_rows(), 0u);
}

TEST(MatrixTest, FromVector) {
  auto r = FloatMatrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0), 1.0f);
  EXPECT_EQ(r->at(1, 2), 6.0f);
  EXPECT_EQ(r->row(1)[0], 4.0f);
}

TEST(MatrixTest, FromVectorSizeMismatch) {
  EXPECT_TRUE(FloatMatrix::FromVector(2, 3, {1, 2, 3}).status().IsInvalidArgument());
}

TEST(MatrixTest, SetAndGet) {
  auto r = FloatMatrix::Create(2, 2);
  ASSERT_TRUE(r.ok());
  r->set(1, 1, 9.5f);
  EXPECT_EQ(r->at(1, 1), 9.5f);
  r->mutable_row(0)[1] = -2.0f;
  EXPECT_EQ(r->at(0, 1), -2.0f);
}

TEST(MatrixTest, AppendRow) {
  auto r = FloatMatrix::FromVector(1, 3, {1, 2, 3});
  ASSERT_TRUE(r.ok());
  const float row[3] = {4, 5, 6};
  ASSERT_TRUE(r->AppendRow(row, 3).ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->at(1, 1), 5.0f);
}

TEST(MatrixTest, AppendRowWrongLength) {
  auto r = FloatMatrix::FromVector(1, 3, {1, 2, 3});
  ASSERT_TRUE(r.ok());
  const float row[2] = {4, 5};
  EXPECT_TRUE(r->AppendRow(row, 2).IsInvalidArgument());
}

TEST(MatrixTest, NormalizeRows) {
  auto r = FloatMatrix::FromVector(3, 2, {3, 4, 0, 0, 1, 0});
  ASSERT_TRUE(r.ok());
  r->NormalizeRows();
  EXPECT_NEAR(r->at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(r->at(0, 1), 0.8f, 1e-6);
  // Zero row untouched.
  EXPECT_EQ(r->at(1, 0), 0.0f);
  EXPECT_EQ(r->at(1, 1), 0.0f);
  // Already unit row stays unit.
  EXPECT_NEAR(r->at(2, 0), 1.0f, 1e-6);
}

TEST(MatrixTest, DeepCopy) {
  auto r = FloatMatrix::FromVector(1, 2, {1, 2});
  ASSERT_TRUE(r.ok());
  FloatMatrix copy = r.value();
  copy.set(0, 0, 99.0f);
  EXPECT_EQ(r->at(0, 0), 1.0f);
  EXPECT_EQ(copy.at(0, 0), 99.0f);
}

}  // namespace
}  // namespace c2lsh
