// Deadline, cancellation, and I/O-budget tests: a QueryContext must stop a
// query cooperatively — best-effort partial results under kDeadline /
// kCancelled, never an error — across the in-memory index, the disk index
// (including its transient-fault retry loop), and QALSH. The acceptance
// bound asserted here: a deadline-bounded disk query against a fault-heavy
// env returns within 2x the requested deadline.

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/extensions/qalsh/qalsh.h"
#include "src/util/fault_env.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/random.h"
#include "src/util/retry.h"
#include "src/util/timer.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_deadline_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

bool SortedAscending(const NeighborList& r) {
  for (size_t i = 1; i < r.size(); ++i) {
    if (r[i].dist < r[i - 1].dist) return false;
  }
  return true;
}

// --- in-memory index ------------------------------------------------------

TEST_F(DeadlineTest, ExpiredDeadlineStopsBeforeFirstRound) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 2, 7);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 11;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMicros(-1);  // already expired
  C2lshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 10, &stats, nullptr, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // partial results, not an error
  EXPECT_EQ(stats.termination, Termination::kDeadline);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_TRUE(r->empty());
}

TEST_F(DeadlineTest, CancelledBeforeQueryReportsCancelled) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 13);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 17;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;
  C2lshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 5, &stats, nullptr, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.termination, Termination::kCancelled);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_TRUE(r->empty());
}

TEST_F(DeadlineTest, CancellationWinsOverExpiredDeadline) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 500, 1, 19);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 23;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;
  ctx.deadline = Deadline::AfterMicros(-1);
  C2lshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 5, &stats, nullptr, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.termination, Termination::kCancelled);
}

TEST_F(DeadlineTest, PageBudgetTerminatesWithPartialResults) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 4000, 2, 29);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 31;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  // Calibrate: the unbounded query must take >= 2 rounds, otherwise a
  // one-page budget could not cut anything off.
  C2lshQueryStats full;
  auto rf = index->Query(pd->data, pd->queries.row(0), 10, &full);
  ASSERT_TRUE(rf.ok());
  ASSERT_GE(full.rounds, 2u) << "dataset too easy to exercise the budget";

  QueryContext ctx;
  ctx.io_page_budget = 1;  // exhausted after the first round's first page
  C2lshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 10, &stats, nullptr, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.termination, Termination::kDeadline);  // resource deadline
  EXPECT_LT(stats.rounds, full.rounds);
  EXPECT_LE(stats.total_pages(), full.total_pages());
  // Whatever came back is genuine: exact distances, sorted ascending.
  EXPECT_TRUE(SortedAscending(*r));
}

TEST_F(DeadlineTest, GenerousContextChangesNothing) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 4, 37);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 41;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;  // never cancelled
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(60'000);
  ctx.cancel = &token;
  for (size_t q = 0; q < 4; ++q) {
    C2lshQueryStats plain, bounded;
    auto a = index->Query(pd->data, pd->queries.row(q), 10, &plain);
    auto b = index->Query(pd->data, pd->queries.row(q), 10, &bounded, nullptr, &ctx);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(plain.termination, bounded.termination);
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
      EXPECT_EQ((*a)[i].dist, (*b)[i].dist);
    }
  }
}

// RangeQuery and DecisionQuery share RunQuery's cooperative-stop contract:
// partial results (never an error) under kCancelled/kDeadline, and a
// DecisionQuery NotFound after an interruption is not a verified "no".

TEST_F(DeadlineTest, RangeQueryCancelledReturnsPartialNotError) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 2, 53);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 23;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;
  C2lshQueryStats stats;
  auto r = index->RangeQuery(pd->data, pd->queries.row(0), 2.0, &stats, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // partial, not an error
  EXPECT_EQ(stats.termination, Termination::kCancelled);
}

TEST_F(DeadlineTest, RangeQueryExpiredDeadlineReportsDeadline) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 2, 59);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 29;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMicros(-1);  // already expired
  C2lshQueryStats stats;
  auto r = index->RangeQuery(pd->data, pd->queries.row(0), 2.0, &stats, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.termination, Termination::kDeadline);
}

TEST_F(DeadlineTest, RangeQueryGenerousContextMatchesUnbounded) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 2, 61);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 31;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(60'000);
  for (size_t q = 0; q < 2; ++q) {
    C2lshQueryStats plain, bounded;
    auto a = index->RangeQuery(pd->data, pd->queries.row(q), 1.5, &plain);
    auto b = index->RangeQuery(pd->data, pd->queries.row(q), 1.5, &bounded, &ctx);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
    }
  }
}

TEST_F(DeadlineTest, DecisionQueryInterruptedNotFoundIsNotVerifiedNo) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 2, 67);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 37;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;
  C2lshQueryStats stats;
  auto r = index->DecisionQuery(pd->data, pd->queries.row(0), 4, &stats, &ctx);
  // A hit found before the cancellation poll is still a valid verified
  // answer; a miss must carry the kCancelled marker so the caller knows it
  // is not a verified "no object within R".
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
    EXPECT_EQ(stats.termination, Termination::kCancelled);
  }
}

// --- disk index under fault injection -------------------------------------

TEST_F(DeadlineTest, DiskDeadlineBoundedUnderPersistentFaults) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1200, 1, 43);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 47;
  const std::string path = Path("deadline.pf");
  FaultInjectionEnv env(Env::Default());
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64, true, &env);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }
  auto disk = DiskC2lshIndex::Open(path, 8, &env);  // tiny pool: real reads
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  // Every read fails with a transient fault from here on; the sleepy retry
  // policy makes each retry loop expensive. Only the deadline-aware retry
  // abandonment keeps the query inside its latency budget.
  env.SetTransientReadFaults(1'000'000);
  RetryPolicy sleepy;
  sleepy.max_attempts = 1000;
  sleepy.backoff_initial_us = 10'000;
  sleepy.backoff_max_us = 20'000;
  disk->SetRetryPolicy(sleepy);

  constexpr double kDeadlineMillis = 100.0;
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(kDeadlineMillis);
  DiskQueryStats stats;
  Timer timer;
  auto r = disk->Query(pd->queries.row(0), 10, &stats, nullptr, &ctx);
  const double elapsed = timer.ElapsedMillis();

  ASSERT_TRUE(r.ok()) << r.status().ToString();  // partial, never an error
  EXPECT_EQ(stats.base.termination, Termination::kDeadline);
  // The acceptance bound: the query honors the deadline within a factor of
  // two (the slack covers at most one abandoned backoff sleep).
  EXPECT_LE(elapsed, 2.0 * kDeadlineMillis)
      << "deadline-bounded query overran its budget";
  EXPECT_GE(disk->retry_stats().abandoned.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(disk->PinnedPoolFrames(), 0u);  // no pins leaked on the early stop
}

TEST_F(DeadlineTest, CancelRacingRetryLoopReturnsPromptly) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1200, 1, 53);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 59;
  const std::string path = Path("cancel_race.pf");
  FaultInjectionEnv env(Env::Default());
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64, true, &env);
    ASSERT_TRUE(built.ok());
  }
  auto disk = DiskC2lshIndex::Open(path, 8, &env);
  ASSERT_TRUE(disk.ok());

  // Without the cancel, this retry configuration would grind for seconds:
  // every read faults and the policy allows 1000 sleepy attempts. The
  // external Cancel() must cut the in-flight retry loop short.
  env.SetTransientReadFaults(1'000'000);
  RetryPolicy sleepy;
  sleepy.max_attempts = 1000;
  sleepy.backoff_initial_us = 5'000;
  sleepy.backoff_max_us = 10'000;
  disk->SetRetryPolicy(sleepy);

  CancellationToken token;
  QueryContext ctx;
  ctx.cancel = &token;

  DiskQueryStats stats;
  Result<NeighborList> r = Status::Internal("query never ran");
  Timer total;
  std::thread worker([&] {
    r = disk->Query(pd->queries.row(0), 10, &stats, nullptr, &ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel();
  worker.join();
  const double elapsed = total.ElapsedMillis();

  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.base.termination, Termination::kCancelled);
  // Prompt return: one poll interval plus at most one abandoned backoff,
  // with generous slack for sanitizer builds.
  EXPECT_LE(elapsed, 2000.0) << "cancellation did not cut the retry loop short";
  EXPECT_GE(disk->retry_stats().abandoned.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(disk->PinnedPoolFrames(), 0u);  // no pins leaked
}

TEST_F(DeadlineTest, DiskGenerousContextMatchesUnbounded) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 3, 61);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 67;
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("generous.pf"), 256);
  ASSERT_TRUE(disk.ok());

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(60'000);
  for (size_t q = 0; q < 3; ++q) {
    auto a = disk->Query(pd->queries.row(q), 5);
    auto b = disk->Query(pd->queries.row(q), 5, nullptr, nullptr, &ctx);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
    }
  }
}

// --- QALSH ----------------------------------------------------------------

TEST_F(DeadlineTest, QalshExpiredDeadlineReturnsPartial) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 71);
  ASSERT_TRUE(pd.ok());
  QalshOptions o;
  o.seed = 73;
  auto index = QalshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMicros(-1);
  QalshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 10, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.termination, Termination::kDeadline);
  EXPECT_EQ(stats.rounds, 0u);
}

TEST_F(DeadlineTest, QalshCancelledReportsCancelled) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 79);
  ASSERT_TRUE(pd.ok());
  QalshOptions o;
  o.seed = 83;
  auto index = QalshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;
  QalshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 10, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.termination, Termination::kCancelled);
}

// --- deadline-aware retry loop (unit level) -------------------------------

TEST_F(DeadlineTest, RetryAbandonsWhenBudgetCannotCoverBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_initial_us = 10'000;
  policy.backoff_max_us = 20'000;
  RetryStats stats;
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMicros(100);  // << the 10ms backoff floor

  int calls = 0;
  Status s = RetryTransient(policy, &stats, &ctx, [&] {
    ++calls;
    return Status::Unavailable("injected");
  });
  // One attempt, then the loop sees the backoff cannot fit and gives up
  // with the still-transient status (the query ran out of budget, the
  // device did not fail hard).
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.abandoned.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(stats.retries.load(std::memory_order_relaxed), 0u);
}

TEST_F(DeadlineTest, RetryAbandonsOnCancellation) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_initial_us = 1'000;
  RetryStats stats;
  CancellationToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.cancel = &token;

  int calls = 0;
  Status s = RetryTransient(policy, &stats, &ctx, [&] {
    ++calls;
    return Status::Unavailable("injected");
  });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.abandoned.load(std::memory_order_relaxed), 1u);
}

TEST_F(DeadlineTest, RetryWithoutContextStillExhaustsToIoError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_us = 0;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(policy, &stats, [&] {
    ++calls;
    return Status::Unavailable("injected");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.exhausted.load(std::memory_order_relaxed), 1u);
}

// --- decorrelated jitter (unit level) -------------------------------------

TEST_F(DeadlineTest, JitterStaysWithinDecorrelatedBounds) {
  RetryPolicy policy;
  policy.backoff_initial_us = 100;
  policy.backoff_max_us = 10'000;
  Rng rng(12345);
  int prev = 0;
  for (int i = 0; i < 200; ++i) {
    const int next = retry_internal::NextBackoffUs(policy, prev, &rng);
    EXPECT_GE(next, policy.backoff_initial_us);
    EXPECT_LE(next, policy.backoff_max_us);
    // Decorrelated jitter: next <= 3 * max(prev, base).
    EXPECT_LE(next, 3 * std::max(prev, policy.backoff_initial_us));
    prev = next;
  }
}

TEST_F(DeadlineTest, JitterDisabledWhenPolicyDisablesSleeping) {
  RetryPolicy policy;
  policy.backoff_initial_us = 0;
  Rng rng(1);
  EXPECT_EQ(retry_internal::NextBackoffUs(policy, 500, &rng), 0);
}

TEST_F(DeadlineTest, JitterSequenceIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.backoff_initial_us = 100;
  policy.backoff_max_us = 50'000;
  Rng a(99), b(99), c(100);
  std::vector<int> sa, sb, sc;
  int pa = 0, pb = 0, pc = 0;
  for (int i = 0; i < 50; ++i) {
    pa = retry_internal::NextBackoffUs(policy, pa, &a);
    pb = retry_internal::NextBackoffUs(policy, pb, &b);
    pc = retry_internal::NextBackoffUs(policy, pc, &c);
    sa.push_back(pa);
    sb.push_back(pb);
    sc.push_back(pc);
  }
  EXPECT_EQ(sa, sb);  // same seed, same sequence
  EXPECT_NE(sa, sc);  // different seed, different sequence
}

}  // namespace
}  // namespace c2lsh
