#include "src/eval/metrics.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

NeighborList MakeList(std::initializer_list<std::pair<ObjectId, float>> items) {
  NeighborList out;
  for (const auto& [id, dist] : items) out.push_back(Neighbor{id, dist});
  return out;
}

TEST(RatioTest, ExactResultIsOne) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}, {2, 3.0f}});
  EXPECT_DOUBLE_EQ(OverallRatio(gt, gt, 3), 1.0);
}

TEST(RatioTest, HandComputed) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}});
  const NeighborList result = MakeList({{5, 2.0f}, {6, 3.0f}});
  // (2/1 + 3/2) / 2 = 1.75
  EXPECT_DOUBLE_EQ(OverallRatio(result, gt, 2), 1.75);
}

TEST(RatioTest, MissingPositionsChargedWorstRatio) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 1.0f}, {2, 1.0f}});
  const NeighborList result = MakeList({{9, 2.0f}});  // only 1 of 3 returned
  // Worst observed ratio = 2; missing two slots charged 2 each.
  EXPECT_DOUBLE_EQ(OverallRatio(result, gt, 3), 2.0);
}

TEST(RatioTest, ZeroExactDistanceSkipped) {
  const NeighborList gt = MakeList({{0, 0.0f}, {1, 2.0f}});
  const NeighborList result = MakeList({{0, 0.0f}, {1, 2.0f}});
  EXPECT_DOUBLE_EQ(OverallRatio(result, gt, 2), 1.0);
}

TEST(RatioTest, KCappedByGroundTruth) {
  const NeighborList gt = MakeList({{0, 1.0f}});
  const NeighborList result = MakeList({{0, 1.0f}, {1, 5.0f}});
  EXPECT_DOUBLE_EQ(OverallRatio(result, gt, 10), 1.0);
}

TEST(RatioTest, EmptyGroundTruthIsOne) {
  EXPECT_DOUBLE_EQ(OverallRatio(MakeList({}), MakeList({}), 5), 1.0);
}

TEST(RecallTest, PerfectAndEmpty) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}, {2, 3.0f}});
  EXPECT_DOUBLE_EQ(Recall(gt, gt, 3), 1.0);
  EXPECT_DOUBLE_EQ(Recall(MakeList({}), gt, 3), 0.0);
}

TEST(RecallTest, PartialOverlap) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}, {2, 3.0f}, {3, 4.0f}});
  const NeighborList result = MakeList({{0, 1.0f}, {9, 1.5f}, {2, 3.0f}, {8, 9.0f}});
  EXPECT_DOUBLE_EQ(Recall(result, gt, 4), 0.5);
}

TEST(RecallTest, OrderIrrelevant) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}});
  const NeighborList result = MakeList({{1, 2.0f}, {0, 1.0f}});
  EXPECT_DOUBLE_EQ(Recall(result, gt, 2), 1.0);
}

TEST(RecallTest, OnlyFirstKOfResultCount) {
  const NeighborList gt = MakeList({{0, 1.0f}, {1, 2.0f}});
  // The true hit sits at position 3 of the result; with k = 2 only the
  // first 2 result entries are considered.
  const NeighborList result = MakeList({{7, 1.0f}, {8, 2.0f}, {0, 3.0f}});
  EXPECT_DOUBLE_EQ(Recall(result, gt, 2), 0.0);
}

TEST(MeanOverQueriesTest, Averages) {
  const std::vector<NeighborList> gt = {MakeList({{0, 1.0f}}), MakeList({{1, 1.0f}})};
  const std::vector<NeighborList> results = {MakeList({{0, 1.0f}}),
                                             MakeList({{9, 2.0f}})};
  EXPECT_DOUBLE_EQ(MeanOverQueries(results, gt, 1, &Recall), 0.5);
  EXPECT_DOUBLE_EQ(MeanOverQueries(results, gt, 1, &OverallRatio), 1.5);
  EXPECT_DOUBLE_EQ(MeanOverQueries({}, gt, 1, &Recall), 0.0);
}

}  // namespace
}  // namespace c2lsh
