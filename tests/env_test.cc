#include "src/util/env.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/fault_env.h"
#include "src/util/retry.h"

namespace c2lsh {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_env_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(EnvTest, PosixRoundTrip) {
  Env* env = Env::Default();
  auto f = env->NewFile(Path("a.bin"));
  ASSERT_TRUE(f.ok()) << f.status().ToString();

  const char payload[] = "hello, storage stack";
  ASSERT_TRUE((*f)->WriteAt(0, payload, sizeof(payload)).ok());
  ASSERT_TRUE((*f)->Sync().ok());

  char back[sizeof(payload)] = {};
  size_t n = 0;
  ASSERT_TRUE((*f)->ReadAt(0, back, sizeof(back), &n).ok());
  EXPECT_EQ(n, sizeof(payload));
  EXPECT_STREQ(back, payload);

  auto size = (*f)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), sizeof(payload));
}

TEST_F(EnvTest, WriteAtExtendsAndOffsets) {
  Env* env = Env::Default();
  auto f = env->NewFile(Path("b.bin"));
  ASSERT_TRUE(f.ok());
  // Write at a far offset; the gap reads back as zeros.
  const uint8_t byte = 0xEE;
  ASSERT_TRUE((*f)->WriteAt(100, &byte, 1).ok());
  EXPECT_EQ((*f)->Size().value(), 101u);
  uint8_t buf[101] = {0xFF};
  size_t n = 0;
  ASSERT_TRUE((*f)->ReadAt(0, buf, sizeof(buf), &n).ok());
  EXPECT_EQ(n, 101u);
  EXPECT_EQ(buf[0], 0u);
  EXPECT_EQ(buf[99], 0u);
  EXPECT_EQ(buf[100], 0xEE);
}

TEST_F(EnvTest, ShortReadAtEofIsNotAnError) {
  Env* env = Env::Default();
  auto f = env->NewFile(Path("c.bin"));
  ASSERT_TRUE(f.ok());
  const char four[] = {'a', 'b', 'c', 'd'};
  ASSERT_TRUE((*f)->WriteAt(0, four, 4).ok());

  char buf[16] = {};
  size_t n = 99;
  ASSERT_TRUE((*f)->ReadAt(0, buf, sizeof(buf), &n).ok());
  EXPECT_EQ(n, 4u);
  // Reading entirely past EOF: ok, zero bytes.
  ASSERT_TRUE((*f)->ReadAt(1000, buf, sizeof(buf), &n).ok());
  EXPECT_EQ(n, 0u);
}

TEST_F(EnvTest, OpenMissingFileCarriesErrnoContext) {
  Env* env = Env::Default();
  auto f = env->OpenFile(Path("does_not_exist.bin"));
  ASSERT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsIOError());
  const std::string msg(f.status().message());
  // Satellite contract: every storage IOError names the op, the path, and
  // the strerror text.
  EXPECT_NE(msg.find("does_not_exist.bin"), std::string::npos) << msg;
  EXPECT_NE(msg.find("No such file"), std::string::npos) << msg;
  EXPECT_NE(msg.find("errno"), std::string::npos) << msg;
}

TEST_F(EnvTest, FileExistsAndDelete) {
  Env* env = Env::Default();
  const std::string path = Path("d.bin");
  EXPECT_FALSE(env->FileExists(path));
  { auto f = env->NewFile(path); ASSERT_TRUE(f.ok()); }
  EXPECT_TRUE(env->FileExists(path));
  EXPECT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->DeleteFile(path).IsIOError());  // already gone
}

// ---------------------------------------------------------------------------
// RetryTransient
// ---------------------------------------------------------------------------

TEST(RetryTest, PassesThroughImmediateSuccess) {
  RetryPolicy policy;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(policy, &stats, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, RecoversFromTransientBurstWithObservableRetries) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_us = 0;  // keep the test fast
  RetryStats stats;
  int remaining_faults = 2;
  Status s = RetryTransient(policy, &stats, [&] {
    if (remaining_faults > 0) {
      --remaining_faults;
      return Status::Unavailable("simulated EINTR");
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.retries, 2u);  // two faults -> two extra attempts
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, ExhaustionIsBoundedAndBecomesIOError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_us = 0;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(policy, &stats, [&] {
    ++calls;
    return Status::Unavailable("still busy");
  });
  EXPECT_TRUE(s.IsIOError());  // converted: callers never see raw Unavailable
  EXPECT_EQ(calls, 3);         // bounded, no infinite spin
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_NE(std::string(s.message()).find("3 attempts"), std::string::npos)
      << s.ToString();
}

TEST(RetryTest, HardErrorsAreNotRetried) {
  RetryPolicy policy;
  policy.backoff_initial_us = 0;
  RetryStats stats;
  int calls = 0;
  Status s = RetryTransient(policy, &stats, [&] {
    ++calls;
    return Status::Corruption("bad page");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

class FaultEnvTest : public EnvTest {};

TEST_F(FaultEnvTest, CountsOperations) {
  FaultInjectionEnv env(Env::Default());
  auto f = env.NewFile(Path("f.bin"));
  ASSERT_TRUE(f.ok());
  uint8_t b = 1;
  size_t n = 0;
  ASSERT_TRUE((*f)->WriteAt(0, &b, 1).ok());
  ASSERT_TRUE((*f)->ReadAt(0, &b, 1, &n).ok());
  ASSERT_TRUE((*f)->Sync().ok());
  EXPECT_EQ(env.stats().writes, 1u);
  EXPECT_EQ(env.stats().reads, 1u);
  EXPECT_EQ(env.stats().syncs, 1u);
}

TEST_F(FaultEnvTest, CrashAfterNthWriteTearsAndRejects) {
  FaultInjectionEnv env(Env::Default());
  auto f = env.NewFile(Path("g.bin"));
  ASSERT_TRUE(f.ok());

  std::vector<uint8_t> page(64, 0xAA);
  env.SetCrashAfterWrites(2);
  env.SetTornBytes(16);

  ASSERT_TRUE((*f)->WriteAt(0, page.data(), page.size()).ok());  // write 1: fine
  EXPECT_FALSE(env.crashed());
  Status torn = (*f)->WriteAt(64, page.data(), page.size());  // write 2: torn
  EXPECT_TRUE(torn.IsIOError());
  EXPECT_TRUE(env.crashed());
  EXPECT_NE(std::string(torn.message()).find("torn"), std::string::npos)
      << torn.ToString();

  // Only the torn prefix reached the base env.
  EXPECT_EQ((*f)->Size().value(), 64u + 16u);

  // Everything after the crash is refused until ClearCrash.
  EXPECT_TRUE((*f)->WriteAt(128, page.data(), page.size()).IsIOError());
  EXPECT_TRUE((*f)->Sync().IsIOError());
  EXPECT_GE(env.stats().post_crash_rejects, 2u);

  env.ClearCrash();
  EXPECT_FALSE(env.crashed());
  EXPECT_TRUE((*f)->WriteAt(128, page.data(), page.size()).ok());
}

TEST_F(FaultEnvTest, TransientFaultsAreUnavailableAndDoNotTouchTheFile) {
  FaultInjectionEnv env(Env::Default());
  auto f = env.NewFile(Path("h.bin"));
  ASSERT_TRUE(f.ok());
  uint8_t b = 0x42;
  env.SetTransientWriteFaults(2);
  EXPECT_TRUE((*f)->WriteAt(0, &b, 1).IsUnavailable());
  EXPECT_TRUE((*f)->WriteAt(0, &b, 1).IsUnavailable());
  EXPECT_TRUE((*f)->WriteAt(0, &b, 1).ok());  // faults exhausted
  EXPECT_EQ(env.stats().transient_faults, 2u);
  EXPECT_EQ(env.stats().writes, 1u);  // only the successful write forwarded

  size_t n = 0;
  env.SetTransientReadFaults(1);
  EXPECT_TRUE((*f)->ReadAt(0, &b, 1, &n).IsUnavailable());
  EXPECT_TRUE((*f)->ReadAt(0, &b, 1, &n).ok());
  EXPECT_EQ(b, 0x42);
}

TEST_F(FaultEnvTest, ReadCorruptionFlipsExactlyTheChosenByte) {
  FaultInjectionEnv env(Env::Default());
  auto f = env.NewFile(Path("i.bin"));
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> data(32, 0x11);
  ASSERT_TRUE((*f)->WriteAt(0, data.data(), data.size()).ok());

  env.SetReadCorruption(/*offset=*/5, /*mask=*/0xFF);
  std::vector<uint8_t> back(32, 0);
  size_t n = 0;
  ASSERT_TRUE((*f)->ReadAt(0, back.data(), back.size(), &n).ok());
  EXPECT_EQ(back[5], 0x11 ^ 0xFF);
  for (size_t i = 0; i < back.size(); ++i) {
    if (i != 5) {
      EXPECT_EQ(back[i], 0x11) << "byte " << i;
    }
  }
  EXPECT_EQ(env.stats().corrupted_reads, 1u);

  // A read that does not cover the offset is untouched.
  ASSERT_TRUE((*f)->ReadAt(8, back.data(), 8, &n).ok());
  EXPECT_EQ(back[0], 0x11);

  // The file itself was never modified.
  env.ClearReadCorruption();
  ASSERT_TRUE((*f)->ReadAt(0, back.data(), back.size(), &n).ok());
  EXPECT_EQ(back[5], 0x11);
}

TEST_F(FaultEnvTest, DroppedAndFailedSyncs) {
  FaultInjectionEnv env(Env::Default());
  auto f = env.NewFile(Path("j.bin"));
  ASSERT_TRUE(f.ok());

  env.SetDropSyncs(true);
  EXPECT_TRUE((*f)->Sync().ok());  // lies, silently
  env.SetDropSyncs(false);

  env.SetFailSyncs(true);
  EXPECT_TRUE((*f)->Sync().IsIOError());
  env.SetFailSyncs(false);
  EXPECT_TRUE((*f)->Sync().ok());
  EXPECT_EQ(env.stats().syncs, 3u);
}

TEST_F(FaultEnvTest, PassesThroughFilesystemQueries) {
  FaultInjectionEnv env(Env::Default());
  const std::string path = Path("k.bin");
  EXPECT_FALSE(env.FileExists(path));
  { auto f = env.NewFile(path); ASSERT_TRUE(f.ok()); }
  EXPECT_TRUE(env.FileExists(path));
  auto g = env.OpenFile(path);
  EXPECT_TRUE(g.ok());
  g->reset();
  EXPECT_TRUE(env.DeleteFile(path).ok());
  EXPECT_FALSE(env.FileExists(path));
}

}  // namespace
}  // namespace c2lsh
