#include "src/vector/ground_truth.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

Dataset MakeSmallDataset() {
  // 5 points on a line: 0, 1, 2, 3, 10.
  auto m = FloatMatrix::FromVector(5, 1, {0, 1, 2, 3, 10});
  auto d = Dataset::Create("line", std::move(m.value()));
  return std::move(d.value());
}

TEST(GroundTruthTest, ExactOnHandComputedCase) {
  Dataset data = MakeSmallDataset();
  auto q = FloatMatrix::FromVector(1, 1, {1.4f});
  ASSERT_TRUE(q.ok());
  auto gt = ComputeGroundTruth(data, q.value(), 3);
  ASSERT_TRUE(gt.ok());
  ASSERT_EQ(gt->size(), 1u);
  const NeighborList& list = (*gt)[0];
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].id, 1u);  // dist 0.4
  EXPECT_EQ(list[1].id, 2u);  // dist 0.6
  EXPECT_EQ(list[2].id, 0u);  // dist 1.4
  EXPECT_NEAR(list[0].dist, 0.4f, 1e-5);
  EXPECT_NEAR(list[2].dist, 1.4f, 1e-5);
}

TEST(GroundTruthTest, SortedAscending) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 500, 8, 3);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());
  for (const NeighborList& list : *gt) {
    ASSERT_EQ(list.size(), 10u);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LE(list[i - 1].dist, list[i].dist);
    }
  }
}

TEST(GroundTruthTest, KCappedByN) {
  Dataset data = MakeSmallDataset();
  auto q = FloatMatrix::FromVector(1, 1, {0.0f});
  auto gt = ComputeGroundTruth(data, q.value(), 100);
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ((*gt)[0].size(), 5u);
}

TEST(GroundTruthTest, KZeroRejected) {
  Dataset data = MakeSmallDataset();
  auto q = FloatMatrix::FromVector(1, 1, {0.0f});
  EXPECT_TRUE(ComputeGroundTruth(data, q.value(), 0).status().IsInvalidArgument());
}

TEST(GroundTruthTest, DimMismatchRejected) {
  Dataset data = MakeSmallDataset();
  auto q = FloatMatrix::FromVector(1, 2, {0.0f, 1.0f});
  EXPECT_TRUE(ComputeGroundTruth(data, q.value(), 1).status().IsInvalidArgument());
}

TEST(GroundTruthTest, MultiThreadMatchesSingleThread) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 800, 16, 5);
  ASSERT_TRUE(pd.ok());
  auto gt1 = ComputeGroundTruth(pd->data, pd->queries, 5, Metric::kEuclidean, 1);
  auto gt4 = ComputeGroundTruth(pd->data, pd->queries, 5, Metric::kEuclidean, 4);
  ASSERT_TRUE(gt1.ok() && gt4.ok());
  ASSERT_EQ(gt1->size(), gt4->size());
  for (size_t i = 0; i < gt1->size(); ++i) {
    ASSERT_EQ((*gt1)[i].size(), (*gt4)[i].size());
    for (size_t j = 0; j < (*gt1)[i].size(); ++j) {
      EXPECT_EQ((*gt1)[i][j].id, (*gt4)[i][j].id);
      EXPECT_EQ((*gt1)[i][j].dist, (*gt4)[i][j].dist);
    }
  }
}

TEST(GroundTruthTest, SaveLoadRoundTrip) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 4, 7);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 5);
  ASSERT_TRUE(gt.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "c2lsh_gt_test.ivecs").string();
  ASSERT_TRUE(SaveGroundTruth(path, *gt).ok());
  auto back = LoadGroundTruth(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), gt->size());
  for (size_t i = 0; i < gt->size(); ++i) {
    for (size_t j = 0; j < (*gt)[i].size(); ++j) {
      EXPECT_EQ((*back)[i][j].id, (*gt)[i][j].id);
      EXPECT_EQ((*back)[i][j].dist, (*gt)[i][j].dist);  // bit-exact
    }
  }
  std::filesystem::remove(path);
}

TEST(GroundTruthTest, LoadOrComputeUsesCache) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 3, 9);
  ASSERT_TRUE(pd.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "c2lsh_gt_cache_test.ivecs").string();
  std::filesystem::remove(path);

  auto first = LoadOrComputeGroundTruth(path, pd->data, pd->queries, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(std::filesystem::exists(path));
  auto second = LoadOrComputeGroundTruth(path, pd->data, pd->queries, 4);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i][0].id, (*second)[i][0].id);
  }
  std::filesystem::remove(path);
}

TEST(GroundTruthTest, EmptyPathSkipsCaching) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 100, 2, 10);
  ASSERT_TRUE(pd.ok());
  auto gt = LoadOrComputeGroundTruth("", pd->data, pd->queries, 2);
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->size(), 2u);
}

}  // namespace
}  // namespace c2lsh
