#include "src/vector/transform.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/eval/metrics.h"
#include "src/util/random.h"
#include "src/vector/distance.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

// Anisotropic Gaussian with a planted dominant direction.
FloatMatrix MakeAnisotropic(size_t n, size_t d, const std::vector<double>& axis,
                            double major_sigma, double minor_sigma, uint64_t seed) {
  Rng rng(seed);
  auto m = FloatMatrix::Create(n, d);
  EXPECT_TRUE(m.ok());
  for (size_t i = 0; i < n; ++i) {
    const double along = rng.Gaussian(0.0, major_sigma);
    float* row = m->mutable_row(i);
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<float>(along * axis[j] + rng.Gaussian(5.0, minor_sigma));
    }
  }
  return std::move(m).value();
}

std::vector<double> UnitAxis(size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> axis(d);
  double norm = 0;
  for (auto& x : axis) {
    x = rng.Gaussian();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : axis) x /= norm;
  return axis;
}

TEST(PcaTest, Validation) {
  auto m = FloatMatrix::FromVector(1, 3, {1, 2, 3});
  ASSERT_TRUE(m.ok());
  PcaOptions o;
  EXPECT_TRUE(PcaTransform::Fit(m.value(), o).status().IsInvalidArgument());
  auto m2 = FloatMatrix::FromVector(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(m2.ok());
  o.out_dim = 3;
  EXPECT_TRUE(PcaTransform::Fit(m2.value(), o).status().IsInvalidArgument());
}

TEST(PcaTest, RecoversPlantedDirection) {
  const size_t d = 16;
  const auto axis = UnitAxis(d, 3);
  FloatMatrix data = MakeAnisotropic(2000, d, axis, 10.0, 0.3, 5);
  PcaOptions o;
  o.out_dim = 1;
  auto pca = PcaTransform::Fit(data, o);
  ASSERT_TRUE(pca.ok());
  double cosine = 0;
  for (size_t j = 0; j < d; ++j) cosine += pca->component(0)[j] * axis[j];
  EXPECT_GT(std::fabs(cosine), 0.99);
  // Leading eigenvalue ~ major variance (100) >> minor (0.09).
  EXPECT_GT(pca->eigenvalues()[0], 50.0);
}

TEST(PcaTest, ComponentsOrthonormalAndEigenvaluesOrdered) {
  auto data = GenerateGaussianMixture(
      {.n = 1500, .dim = 12, .num_clusters = 6, .center_spread = 2.0,
       .cluster_stddev = 0.3, .seed = 7});
  ASSERT_TRUE(data.ok());
  PcaOptions o;
  o.out_dim = 6;
  auto pca = PcaTransform::Fit(data.value(), o);
  ASSERT_TRUE(pca.ok());
  for (size_t a = 0; a < 6; ++a) {
    double norm = 0;
    for (double x : pca->component(a)) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-6);
    for (size_t b = a + 1; b < 6; ++b) {
      double dot = 0;
      for (size_t j = 0; j < 12; ++j) dot += pca->component(a)[j] * pca->component(b)[j];
      EXPECT_NEAR(dot, 0.0, 1e-6) << a << "," << b;
    }
    if (a > 0) {
      EXPECT_LE(pca->eigenvalues()[a], pca->eigenvalues()[a - 1] + 1e-6);
    }
  }
}

TEST(PcaTest, FullRotationPreservesDistances) {
  auto data = GenerateGaussianMixture(
      {.n = 300, .dim = 8, .num_clusters = 4, .seed = 9});
  ASSERT_TRUE(data.ok());
  PcaOptions o;
  o.out_dim = 0;  // keep all -> pure rotation (plus centering)
  auto pca = PcaTransform::Fit(data.value(), o);
  ASSERT_TRUE(pca.ok());
  auto projected = pca->Apply(data.value());
  ASSERT_TRUE(projected.ok());
  Rng rng(11);
  for (int t = 0; t < 30; ++t) {
    const size_t a = rng.Index(300);
    const size_t b = rng.Index(300);
    const double orig = L2(data->row(a), data->row(b), 8);
    const double proj = L2(projected->row(a), projected->row(b), 8);
    EXPECT_NEAR(proj, orig, 1e-3 * (1.0 + orig));
  }
  EXPECT_NEAR(pca->ExplainedVarianceRatio(), 1.0, 1e-6);
}

TEST(PcaTest, ProjectedVarianceMatchesEigenvalues) {
  const size_t d = 10;
  auto data = GenerateGaussianMixture(
      {.n = 3000, .dim = d, .num_clusters = 5, .center_spread = 3.0, .seed = 13});
  ASSERT_TRUE(data.ok());
  PcaOptions o;
  o.out_dim = 3;
  auto pca = PcaTransform::Fit(data.value(), o);
  ASSERT_TRUE(pca.ok());
  auto projected = pca->Apply(data.value());
  ASSERT_TRUE(projected.ok());
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0;
    for (size_t i = 0; i < 3000; ++i) mean += projected->at(i, c);
    mean /= 3000.0;
    double var = 0;
    for (size_t i = 0; i < 3000; ++i) {
      const double x = projected->at(i, c) - mean;
      var += x * x;
    }
    var /= 2999.0;
    EXPECT_NEAR(var, pca->eigenvalues()[c], 0.05 * pca->eigenvalues()[c] + 1e-6);
    EXPECT_NEAR(mean, 0.0, 1e-3);  // centering
  }
}

TEST(PcaTest, WhiteningUnitVariance) {
  auto data = GenerateGaussianMixture(
      {.n = 2000, .dim = 8, .num_clusters = 4, .center_spread = 4.0, .seed = 17});
  ASSERT_TRUE(data.ok());
  PcaOptions o;
  o.out_dim = 4;
  o.whiten = true;
  auto pca = PcaTransform::Fit(data.value(), o);
  ASSERT_TRUE(pca.ok());
  auto projected = pca->Apply(data.value());
  ASSERT_TRUE(projected.ok());
  for (size_t c = 0; c < 4; ++c) {
    double var = 0;
    for (size_t i = 0; i < 2000; ++i) {
      var += static_cast<double>(projected->at(i, c)) * projected->at(i, c);
    }
    var /= 1999.0;
    EXPECT_NEAR(var, 1.0, 0.1) << "component " << c;
  }
}

TEST(PcaTest, ApplyDimMismatchRejected) {
  auto data = GenerateUniform(100, 6, 19);
  ASSERT_TRUE(data.ok());
  PcaOptions o;
  o.out_dim = 2;
  auto pca = PcaTransform::Fit(data.value(), o);
  ASSERT_TRUE(pca.ok());
  auto wrong = GenerateUniform(10, 7, 21);
  ASSERT_TRUE(wrong.ok());
  EXPECT_TRUE(pca->Apply(wrong.value()).status().IsInvalidArgument());
}

// Pipeline test: PCA-reduce a high-d profile, index the reduction with
// C2LSH, and check recall against the ORIGINAL-space ground truth stays
// useful — the standard dimension-reduction + LSH pipeline.
TEST(PcaTest, ReductionPipelineKeepsRecall) {
  auto pd = MakeProfileDataset(DatasetProfile::kAudio, 3000, 12, 23);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());

  PcaOptions o;
  o.out_dim = 48;  // 192 -> 48 (the Audio profile spreads variance over ~50
                   // cluster directions, so a 4x reduction is the sweet spot)
  auto pca = PcaTransform::Fit(pd->data.vectors(), o);
  ASSERT_TRUE(pca.ok());
  EXPECT_GT(pca->ExplainedVarianceRatio(), 0.5);

  auto reduced_data_m = pca->Apply(pd->data.vectors());
  auto reduced_queries = pca->Apply(pd->queries);
  ASSERT_TRUE(reduced_data_m.ok() && reduced_queries.ok());
  // Re-normalize the reduced space's NN distance for the radius schedule.
  FloatMatrix reduced = std::move(reduced_data_m).value();
  FloatMatrix red_q = std::move(reduced_queries).value();
  const double scale = RescaleToTargetNN(&reduced, 8.0, 29);
  for (size_t i = 0; i < red_q.num_rows(); ++i) {
    for (size_t j = 0; j < red_q.dim(); ++j) {
      red_q.set(i, j, static_cast<float>(red_q.at(i, j) * scale));
    }
  }
  auto reduced_ds = Dataset::Create("audio-pca24", std::move(reduced));
  ASSERT_TRUE(reduced_ds.ok());

  // Ceiling: the exact reduced-space neighbors vs the original-space truth
  // (what the reduction itself costs, independent of the index).
  auto reduced_gt = ComputeGroundTruth(reduced_ds.value(), red_q, 10);
  ASSERT_TRUE(reduced_gt.ok());
  double ceiling = 0;
  for (size_t q = 0; q < 12; ++q) {
    ceiling += Recall((*reduced_gt)[q], (*gt)[q], 10);
  }
  ceiling /= 12.0;

  C2lshOptions co;
  co.seed = 31;
  auto index = C2lshIndex::Build(reduced_ds.value(), co);
  ASSERT_TRUE(index.ok());
  double recall_vs_original = 0;
  double recall_vs_reduced = 0;
  for (size_t q = 0; q < 12; ++q) {
    auto r = index->Query(reduced_ds.value(), red_q.row(q), 10);
    ASSERT_TRUE(r.ok());
    recall_vs_original += Recall(*r, (*gt)[q], 10);
    recall_vs_reduced += Recall(*r, (*reduced_gt)[q], 10);
  }
  recall_vs_original /= 12.0;
  recall_vs_reduced /= 12.0;

  // The index must recover most of what the reduced space still contains...
  EXPECT_GT(recall_vs_reduced, 0.6);
  // ...and end-to-end recall must sit near the reduction's own ceiling.
  EXPECT_GT(recall_vs_original, ceiling * 0.6);
}

}  // namespace
}  // namespace c2lsh
