#include "src/vector/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

TEST(DatasetTest, CreateValidation) {
  FloatMatrix empty;
  EXPECT_TRUE(Dataset::Create("x", std::move(empty)).status().IsInvalidArgument());
}

TEST(DatasetTest, BasicAccessors) {
  auto m = FloatMatrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(m.ok());
  auto d = Dataset::Create("demo", std::move(m.value()));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->name(), "demo");
  EXPECT_EQ(d->size(), 2u);
  EXPECT_EQ(d->dim(), 3u);
  EXPECT_EQ(d->object(1)[0], 4.0f);
  EXPECT_EQ(d->vectors().at(0, 2), 3.0f);
}

TEST(DatasetTest, ComputeStatsHandComputed) {
  // Rows (3,4) and (0,0): norms 5 and 0 -> mean 2.5; max |coord| = 4.
  auto m = FloatMatrix::FromVector(2, 2, {3, 4, 0, 0});
  ASSERT_TRUE(m.ok());
  auto d = Dataset::Create("stats", std::move(m.value()));
  ASSERT_TRUE(d.ok());
  const Dataset::Stats s = d->ComputeStats();
  EXPECT_EQ(s.n, 2u);
  EXPECT_EQ(s.dim, 2u);
  EXPECT_DOUBLE_EQ(s.mean_norm, 2.5);
  EXPECT_DOUBLE_EQ(s.max_abs_coord, 4.0);
}

TEST(DatasetTest, ComputeStatsNegativeCoords) {
  auto m = FloatMatrix::FromVector(1, 3, {-7, 2, -1});
  ASSERT_TRUE(m.ok());
  auto d = Dataset::Create("neg", std::move(m.value()));
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->ComputeStats().max_abs_coord, 7.0);
}

TEST(DatasetTest, StatsOnProfileDataset) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 500, 1, 3);
  ASSERT_TRUE(pd.ok());
  const Dataset::Stats s = pd->data.ComputeStats();
  EXPECT_EQ(s.n, 500u);
  EXPECT_EQ(s.dim, 32u);
  EXPECT_GT(s.mean_norm, 0.0);
  EXPECT_GT(s.max_abs_coord, 0.0);
}

}  // namespace
}  // namespace c2lsh
