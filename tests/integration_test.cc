// Cross-module integration tests: the full pipeline (profile dataset ->
// ground truth -> every index -> harness -> metrics), plus the head-to-head
// comparisons the paper's evaluation rests on.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/eval/harness.h"
#include "src/eval/method.h"
#include "src/eval/metrics.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto pd = MakeProfileDataset(DatasetProfile::kMnist, 6000, 24, 1234);
    ASSERT_TRUE(pd.ok());
    data_ = std::make_unique<Dataset>(std::move(pd->data));
    queries_ = std::make_unique<FloatMatrix>(std::move(pd->queries));
    auto gt = ComputeGroundTruth(*data_, *queries_, 20);
    ASSERT_TRUE(gt.ok());
    gt_ = std::make_unique<std::vector<NeighborList>>(std::move(gt.value()));
  }
  static void TearDownTestSuite() {
    data_.reset();
    queries_.reset();
    gt_.reset();
  }

  static std::unique_ptr<Dataset> data_;
  static std::unique_ptr<FloatMatrix> queries_;
  static std::unique_ptr<std::vector<NeighborList>> gt_;
};

std::unique_ptr<Dataset> IntegrationTest::data_;
std::unique_ptr<FloatMatrix> IntegrationTest::queries_;
std::unique_ptr<std::vector<NeighborList>> IntegrationTest::gt_;

TEST_F(IntegrationTest, AllMethodsBeatRandomAndReportSaneRatios) {
  C2lshOptions co;
  co.seed = 1;
  auto c2 = MakeC2lshMethod(*data_, co);
  ASSERT_TRUE(c2.ok());

  E2lshOptions eo;
  eo.K = 6;
  eo.L = 32;
  eo.seed = 2;
  auto e2 = MakeE2lshMethod(*data_, eo);
  ASSERT_TRUE(e2.ok());

  LsbForestOptions lo;
  lo.tree.u = 6;
  lo.tree.w = 4.0;
  lo.L = 8;
  lo.seed = 3;
  auto lsb = MakeLsbForestMethod(*data_, lo);
  ASSERT_TRUE(lsb.ok());

  for (AnnMethod* m : {c2->get(), e2->get(), lsb->get()}) {
    auto r = RunWorkload(m, *data_, *queries_, *gt_, 10);
    ASSERT_TRUE(r.ok()) << m->name();
    EXPECT_GE(r->mean_ratio, 1.0) << m->name();
    EXPECT_LT(r->mean_ratio, 3.0) << m->name();
    EXPECT_GT(r->mean_recall, 0.2) << m->name();
  }
}

TEST_F(IntegrationTest, C2lshSmallerIndexThanE2lshAtComparableRecall) {
  // The headline claim: dynamic collision counting needs far less index
  // than static concatenation at comparable quality.
  C2lshOptions co;
  co.seed = 4;
  auto c2 = MakeC2lshMethod(*data_, co);
  ASSERT_TRUE(c2.ok());

  auto model = MakeCollisionModel(1.0, 2.0);
  ASSERT_TRUE(model.ok());
  E2lshOptions eo = SuggestE2lshOptions(data_->size(), *model, 64);
  eo.seed = 5;
  auto e2 = MakeE2lshMethod(*data_, eo);
  ASSERT_TRUE(e2.ok());

  auto rc = RunWorkload(c2->get(), *data_, *queries_, *gt_, 10);
  auto re = RunWorkload(e2->get(), *data_, *queries_, *gt_, 10);
  ASSERT_TRUE(rc.ok() && re.ok());
  EXPECT_LT(rc->index_bytes, re->index_bytes);
  EXPECT_GE(rc->mean_recall + 0.15, re->mean_recall);  // not worse in quality
}

TEST_F(IntegrationTest, C2lshBetterRatioThanLsbAtSimilarIo) {
  C2lshOptions co;
  co.seed = 6;
  auto c2 = MakeC2lshMethod(*data_, co);
  ASSERT_TRUE(c2.ok());
  LsbForestOptions lo;
  lo.tree.u = 6;
  lo.tree.w = 4.0;
  lo.L = 8;
  lo.seed = 7;
  auto lsb = MakeLsbForestMethod(*data_, lo);
  ASSERT_TRUE(lsb.ok());

  auto rc = RunWorkload(c2->get(), *data_, *queries_, *gt_, 10);
  auto rl = RunWorkload(lsb->get(), *data_, *queries_, *gt_, 10);
  ASSERT_TRUE(rc.ok() && rl.ok());
  // The paper's shape: C2LSH achieves a better (or equal) ratio.
  EXPECT_LE(rc->mean_ratio, rl->mean_ratio + 0.05);
}

TEST_F(IntegrationTest, RecallDegradesGracefullyWithK) {
  C2lshOptions co;
  co.seed = 8;
  auto c2 = MakeC2lshMethod(*data_, co);
  ASSERT_TRUE(c2.ok());
  auto sweep = RunWorkloadSweep(c2->get(), *data_, *queries_, *gt_, {1, 10, 20});
  ASSERT_TRUE(sweep.ok());
  for (const auto& r : *sweep) {
    EXPECT_GT(r.mean_recall, 0.3) << "k=" << r.k;
  }
}

TEST_F(IntegrationTest, IoCostGrowsWithK) {
  C2lshOptions co;
  co.seed = 9;
  auto c2 = MakeC2lshMethod(*data_, co);
  ASSERT_TRUE(c2.ok());
  auto sweep = RunWorkloadSweep(c2->get(), *data_, *queries_, *gt_, {1, 20});
  ASSERT_TRUE(sweep.ok());
  EXPECT_LE((*sweep)[0].mean_total_pages, (*sweep)[1].mean_total_pages * 1.05);
}

TEST_F(IntegrationTest, EndToEndAngularViaNormalization) {
  // Angular search via the Euclidean index on normalized vectors: for unit
  // vectors, L2^2 = 2 * angular distance, so rankings agree. The sphere is
  // scaled up so NN distances land a few radius doublings above R = 1 (the
  // same normalization the synthetic profiles apply).
  FloatMatrix normalized = data_->vectors();
  normalized.NormalizeRows();
  constexpr float kSphereScale = 24.0f;
  for (size_t i = 0; i < normalized.num_rows(); ++i) {
    for (size_t j = 0; j < normalized.dim(); ++j) {
      normalized.set(i, j, normalized.at(i, j) * kSphereScale);
    }
  }
  auto norm_data = Dataset::Create("normalized", std::move(normalized));
  ASSERT_TRUE(norm_data.ok());
  FloatMatrix norm_queries = *queries_;
  norm_queries.NormalizeRows();
  for (size_t i = 0; i < norm_queries.num_rows(); ++i) {
    for (size_t j = 0; j < norm_queries.dim(); ++j) {
      norm_queries.set(i, j, norm_queries.at(i, j) * kSphereScale);
    }
  }

  auto gt = ComputeGroundTruth(norm_data.value(), norm_queries, 10, Metric::kAngular);
  ASSERT_TRUE(gt.ok());

  C2lshOptions co;
  co.seed = 10;
  co.w = 1.0;
  auto index = C2lshIndex::Build(norm_data.value(), co);
  ASSERT_TRUE(index.ok());
  double recall = 0.0;
  for (size_t q = 0; q < norm_queries.num_rows(); ++q) {
    auto r = index->Query(norm_data.value(), norm_queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    recall += Recall(*r, (*gt)[q], 10);
  }
  recall /= static_cast<double>(norm_queries.num_rows());
  EXPECT_GT(recall, 0.3);
}

}  // namespace
}  // namespace c2lsh
