#include "src/baselines/linear_scan.h"

#include <gtest/gtest.h>

#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

Dataset LineDataset() {
  auto m = FloatMatrix::FromVector(6, 1, {0, 1, 2, 3, 4, 100});
  auto d = Dataset::Create("line", std::move(m.value()));
  return std::move(d.value());
}

TEST(LinearScanTest, ExactTopK) {
  Dataset data = LineDataset();
  LinearScan scan;
  const float q = 2.2f;
  auto r = scan.Search(data, &q, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].id, 2u);
  EXPECT_EQ((*r)[1].id, 3u);
  EXPECT_EQ((*r)[2].id, 1u);
}

TEST(LinearScanTest, KZeroRejected) {
  Dataset data = LineDataset();
  LinearScan scan;
  const float q = 0.0f;
  EXPECT_TRUE(scan.Search(data, &q, 0).status().IsInvalidArgument());
}

TEST(LinearScanTest, KCappedAtN) {
  Dataset data = LineDataset();
  LinearScan scan;
  const float q = 0.0f;
  auto r = scan.Search(data, &q, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 6u);
}

TEST(LinearScanTest, TieBrokenById) {
  auto m = FloatMatrix::FromVector(3, 1, {1, -1, 1});  // ids 0 and 2 tie
  auto data = Dataset::Create("ties", std::move(m.value()));
  ASSERT_TRUE(data.ok());
  LinearScan scan;
  const float q = 0.0f;
  auto r = scan.Search(data.value(), &q, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].id, 0u);
  EXPECT_EQ((*r)[1].id, 1u);
  EXPECT_EQ((*r)[2].id, 2u);
}

TEST(LinearScanTest, MatchesGroundTruthHelper) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 600, 8, 3);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 7);
  ASSERT_TRUE(gt.ok());
  LinearScan scan;
  for (size_t q = 0; q < 8; ++q) {
    auto r = scan.Search(pd->data, pd->queries.row(q), 7);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_EQ((*r)[i].id, (*gt)[q][i].id);
    }
  }
}

TEST(LinearScanTest, StatsSequentialCost) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 5);
  ASSERT_TRUE(pd.ok());
  LinearScan scan;
  LinearScanStats stats;
  auto r = scan.Search(pd->data, pd->queries.row(0), 5, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.distance_computations, 1000u);
  // 1000 rows x 32 dims x 4B = 128000 bytes = 32 pages (4KB).
  EXPECT_EQ(stats.data_pages, 32u);
}

TEST(LinearScanTest, AngularMetric) {
  auto m = FloatMatrix::FromVector(3, 2, {1, 0, 0, 1, -1, 0});
  auto data = Dataset::Create("angular", std::move(m.value()));
  ASSERT_TRUE(data.ok());
  LinearScan scan(Metric::kAngular);
  const float q[2] = {1, 0.01f};
  auto r = scan.Search(data.value(), q, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].id, 0u);  // nearly parallel
  EXPECT_EQ((*r)[1].id, 1u);  // orthogonal
  EXPECT_EQ((*r)[2].id, 2u);  // opposite
}

}  // namespace
}  // namespace c2lsh
