#include "src/lsh/compound.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/math.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

TEST(CompoundTest, SampleValidation) {
  EXPECT_TRUE(CompoundHash::Sample(4, 8, 1.0, 1).ok());
  EXPECT_TRUE(CompoundHash::Sample(0, 8, 1.0, 1).status().IsInvalidArgument());
}

TEST(CompoundTest, KeyDeterministic) {
  auto g1 = CompoundHash::Sample(4, 8, 1.0, 5);
  auto g2 = CompoundHash::Sample(4, 8, 1.0, 5);
  ASSERT_TRUE(g1.ok() && g2.ok());
  const float v[8] = {1, 2, 3, 4, -1, -2, -3, -4};
  EXPECT_EQ(g1->Key(v), g2->Key(v));
  EXPECT_EQ(g1->Key(v), g1->Key(v));
}

TEST(CompoundTest, DifferentSeedsDifferentKeys) {
  auto g1 = CompoundHash::Sample(4, 8, 1.0, 5);
  auto g2 = CompoundHash::Sample(4, 8, 1.0, 6);
  ASSERT_TRUE(g1.ok() && g2.ok());
  const float v[8] = {1, 2, 3, 4, -1, -2, -3, -4};
  EXPECT_NE(g1->Key(v), g2->Key(v));
}

TEST(CompoundTest, KeyEqualsKeyFromComponents) {
  auto g = CompoundHash::Sample(5, 8, 2.0, 9);
  ASSERT_TRUE(g.ok());
  const float v[8] = {0.5f, -1, 2, 3, 0, 1, -2, 4};
  std::vector<BucketId> comps;
  g->Components(v, &comps);
  ASSERT_EQ(comps.size(), 5u);
  EXPECT_EQ(g->Key(v), g->KeyFromComponents(comps));
}

TEST(CompoundTest, EqualComponentVectorsShareKey) {
  auto g = CompoundHash::Sample(3, 4, 1.0, 2);
  ASSERT_TRUE(g.ok());
  const std::vector<BucketId> c1 = {1, -2, 3};
  const std::vector<BucketId> c2 = {1, -2, 3};
  const std::vector<BucketId> c3 = {1, -2, 4};
  EXPECT_EQ(g->KeyFromComponents(c1), g->KeyFromComponents(c2));
  EXPECT_NE(g->KeyFromComponents(c1), g->KeyFromComponents(c3));
}

TEST(CompoundTest, KeyAtRadiusWidensCollisions) {
  // Two nearby points that disagree at radius 1 in some component agree once
  // the radius is large enough: their floored component vectors converge
  // (floor(b/R) merges buckets; sign-aligned values collapse to 0 or -1).
  auto g = CompoundHash::Sample(4, 8, 1.0, 13);
  ASSERT_TRUE(g.ok());
  auto data = GenerateUniform(2, 8, 3);
  ASSERT_TRUE(data.ok());
  const float* a = data->row(0);
  const float* b = data->row(1);
  std::vector<BucketId> ca, cb;
  g->Components(a, &ca);
  g->Components(b, &cb);
  const long long R = 1LL << 40;
  bool floored_equal = true;
  for (size_t i = 0; i < ca.size(); ++i) {
    floored_equal &= (FloorDiv(ca[i], R) == FloorDiv(cb[i], R));
  }
  EXPECT_EQ(floored_equal, g->KeyAtRadius(a, R) == g->KeyAtRadius(b, R));
  // And a radius-1 key equals the key of the raw components (salted by R=1).
  std::vector<BucketId> ca1 = ca;
  for (BucketId& v : ca1) v = FloorDiv(v, 1);
  EXPECT_EQ(ca1, ca);
}

TEST(CompoundTest, KeyAtRadiusDistinctAcrossRadii) {
  auto g = CompoundHash::Sample(4, 8, 1.0, 17);
  ASSERT_TRUE(g.ok());
  auto data = GenerateUniform(1, 8, 5);
  ASSERT_TRUE(data.ok());
  // Same point, different radii -> different table keys (R is salted in).
  EXPECT_NE(g->KeyAtRadius(data->row(0), 1), g->KeyAtRadius(data->row(0), 2));
}

TEST(CompoundTest, NearbyPointsShareKeyMoreOftenThanFarOnes) {
  const size_t dim = 16;
  auto data = GenerateGaussianMixture({.n = 200,
                                       .dim = dim,
                                       .num_clusters = 10,
                                       .center_spread = 5.0,
                                       .cluster_stddev = 0.05,
                                       .seed = 7});
  ASSERT_TRUE(data.ok());
  int near_coll = 0;
  int far_coll = 0;
  int trials = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    auto g = CompoundHash::Sample(2, dim, 4.0, seed);
    ASSERT_TRUE(g.ok());
    // Rows i and i+10 share a cluster (round robin, 10 clusters); i and i+1
    // do not.
    if (g->Key(data->row(0)) == g->Key(data->row(10))) ++near_coll;
    if (g->Key(data->row(0)) == g->Key(data->row(1))) ++far_coll;
    ++trials;
  }
  EXPECT_GT(near_coll, far_coll);
  EXPECT_GT(near_coll, trials / 4);  // tight cluster, wide buckets
}

}  // namespace
}  // namespace c2lsh
