// RetryStats read-while-retrying: a monitoring thread reads the atomic
// counters while another thread is inside RetryTransient. Deterministic —
// the observer/worker handshake forces the read to land mid-operation, and
// every final assertion is exact — so it runs in the default lane; the TSan
// lane re-runs it under `ctest -L race` to prove the counters are race-free.

#include "src/util/retry.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/storage/page_file.h"
#include "src/util/fault_env.h"
#include "src/util/thread_annotations.h"

namespace c2lsh {
namespace {

TEST(RetryConcurrencyTest, StatsReadableWhileOperationRetries) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_us = 0;
  RetryStats stats;

  std::atomic<bool> observer_saw_retry{false};
  int calls = 0;  // worker-local; read after join
  std::thread worker([&]() {
    const Status s = RetryTransient(policy, &stats, [&]() {
      ++calls;
      if (calls == 1) {
        return Status::Unavailable("first attempt fails");
      }
      // Hold the operation open until the observer has read the counters
      // mid-retry, so the concurrent read provably overlaps the operation.
      while (!observer_saw_retry.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
  });

  // Observer: spin until the retry counter ticks — at that point the worker
  // is still inside RetryTransient (its second attempt blocks on our flag).
  while (stats.retries.load(std::memory_order_relaxed) < 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(stats.operations.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(stats.exhausted.load(std::memory_order_relaxed), 0u);
  observer_saw_retry.store(true, std::memory_order_release);
  worker.join();

  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stats.operations.load(), 1u);
  EXPECT_EQ(stats.retries.load(), 1u);
  EXPECT_EQ(stats.exhausted.load(), 0u);
}

TEST(RetryConcurrencyTest, CopyTakesAPlainSnapshot) {
  RetryStats stats;
  stats.operations.store(7);
  stats.retries.store(3);
  stats.exhausted.store(1);
  const RetryStats snapshot = stats;
  stats.retries.fetch_add(10);
  EXPECT_EQ(snapshot.operations.load(), 7u);
  EXPECT_EQ(snapshot.retries.load(), 3u);
  EXPECT_EQ(snapshot.exhausted.load(), 1u);
}

// Integration shape of the same property: PageFile retries transient env
// faults on one thread while this thread watches retry_stats() move. Also
// exercises the FaultInjectionEnv mutex (faults armed here, consumed by the
// worker's I/O).
TEST(RetryConcurrencyTest, PageFileRetryStatsObservableAcrossThreads) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("c2lsh_retry_conc_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "retry.pf").string();

  FaultInjectionEnv env(Env::Default());
  auto file = PageFile::Create(path, 512, &env);
  ASSERT_TRUE(file.ok());
  auto id = file->AllocatePage();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(512, 0xAB);
  ASSERT_TRUE(file->WritePage(*id, buf.data()).ok());
  ASSERT_TRUE(file->Sync().ok());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_us = 200;  // keeps the retry window observable
  file->SetRetryPolicy(policy);
  const uint64_t retries_before = file->retry_stats().retries.load();
  env.SetTransientReadFaults(2);

  std::thread worker([&]() {
    std::vector<uint8_t> out(512);
    const Status s = file->ReadPage(*id, out.data());
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(out[0], 0xAB);
  });
  // Read the counters while the worker retries; values are monotone and
  // bounded by the armed fault count.
  uint64_t observed = retries_before;
  while (observed < retries_before + 2) {
    const uint64_t now = file->retry_stats().retries.load(std::memory_order_relaxed);
    EXPECT_GE(now, observed);
    observed = now;
    std::this_thread::yield();
  }
  worker.join();

  EXPECT_EQ(file->retry_stats().retries.load(), retries_before + 2);
  EXPECT_EQ(file->retry_stats().exhausted.load(), 0u);
  EXPECT_EQ(env.stats().transient_faults, 2u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace c2lsh
