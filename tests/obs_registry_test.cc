// Metrics registry, histogram, trace, and exporter tests.
//
// The registry is process-global, so every test uses metric names prefixed
// with the test name — no test depends on another's state.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/build_info.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace c2lsh {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterRegistersOnceAndAccumulates) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("regtest_counter_total", "a test counter");
  ASSERT_NE(c, nullptr);
  const uint64_t before = c->value();
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), before + 42);
  // Same name -> same pointer; the help of a later call is ignored.
  EXPECT_EQ(reg.GetCounter("regtest_counter_total", "other help"), c);
}

TEST(MetricsRegistryTest, InvalidNamesAndTypeConflictsReturnNull) {
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("Bad-Name", "h"), nullptr);
  EXPECT_EQ(reg.GetCounter("9starts_with_digit", "h"), nullptr);
  EXPECT_EQ(reg.GetCounter("", "h"), nullptr);
  EXPECT_EQ(reg.GetCounter("has space", "h"), nullptr);
  ASSERT_NE(reg.GetGauge("regtest_typed_metric", "h"), nullptr);
  EXPECT_EQ(reg.GetCounter("regtest_typed_metric", "h"), nullptr);
  EXPECT_EQ(reg.GetHistogram("regtest_typed_metric", "h"), nullptr);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.FindCounter("regtest_never_registered"), nullptr);
  Counter* c = reg.GetCounter("regtest_find_total", "h");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.FindCounter("regtest_find_total"), c);
  EXPECT_EQ(reg.FindGauge("regtest_find_total"), nullptr);  // wrong type
}

TEST(MetricsRegistryTest, GaugeHoldsLastValue) {
  auto& reg = MetricsRegistry::Global();
  Gauge* g = reg.GetGauge("regtest_gauge", "h");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value(), 0.0);
  g->Set(2.5);
  EXPECT_EQ(g->value(), 2.5);
  g->Set(-1.0);
  EXPECT_EQ(g->value(), -1.0);
}

TEST(HistogramTest, CountSumAndPercentilesTrackObservations) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i) / 100.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 5005.0, 1e-9);
  // Log buckets are <= 1/8 wide, so percentiles are within ~13% of exact.
  EXPECT_NEAR(h.Percentile(0.50), 5.0, 5.0 * 0.15);
  EXPECT_NEAR(h.Percentile(0.95), 9.5, 9.5 * 0.15);
  EXPECT_NEAR(h.Percentile(0.99), 9.9, 9.9 * 0.15);
}

TEST(HistogramTest, OutOfRangeValuesStillCount) {
  Histogram h;
  h.Observe(0.0);          // underflow bucket
  h.Observe(-3.0);         // negative -> underflow bucket
  h.Observe(std::nan(""));  // NaN -> underflow bucket, sum stays finite? (NaN
                            // poisons sum; count is what matters here)
  h.Observe(1e30);         // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.BucketCount(0), 3u);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, BucketBoundsAreMonotonic) {
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::BucketUpperBound(i - 1), Histogram::BucketUpperBound(i))
        << "bucket " << i;
  }
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  auto& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.GetCounter("regtest_snap_a_total", "first"), nullptr);
  ASSERT_NE(reg.GetHistogram("regtest_snap_b_millis", "second"), nullptr);
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_GE(snap.size(), 2u);
  bool saw_a = false, saw_b = false;
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  for (const MetricSnapshot& m : snap) {
    if (m.name == "regtest_snap_a_total") {
      saw_a = true;
      EXPECT_EQ(m.type, MetricType::kCounter);
      EXPECT_EQ(m.help, "first");
    }
    if (m.name == "regtest_snap_b_millis") {
      saw_b = true;
      EXPECT_EQ(m.type, MetricType::kHistogram);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(MetricsRegistryTest, HistogramSnapshotCumulativeEndsAtTotalCount) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("regtest_cumulative_millis", "h");
  ASSERT_NE(h, nullptr);
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(250.0);
  for (const MetricSnapshot& m : reg.Snapshot()) {
    if (m.name != "regtest_cumulative_millis") continue;
    ASSERT_FALSE(m.histogram.cumulative.empty());
    // Cumulative counts are non-decreasing and the +Inf entry equals count.
    uint64_t prev = 0;
    for (const auto& [bound, cum] : m.histogram.cumulative) {
      EXPECT_GE(cum, prev);
      prev = cum;
    }
    EXPECT_TRUE(std::isinf(m.histogram.cumulative.back().first));
    EXPECT_EQ(m.histogram.cumulative.back().second, m.histogram.count);
    EXPECT_EQ(m.histogram.count, h->count());
    return;
  }
  FAIL() << "snapshot did not include regtest_cumulative_millis";
}

TEST(ExportTest, PrometheusOutputValidatesAndContainsSeries) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("regtest_prom_total", "events");
  Histogram* h = reg.GetHistogram("regtest_prom_millis", "latency");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  c->Increment(7);
  h->Observe(1.0);
  h->Observe(32.0);
  const std::string text = FormatPrometheus(reg.Snapshot());
  const Status s = ValidatePrometheusText(text);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << text;
  EXPECT_NE(text.find("# TYPE regtest_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE regtest_prom_millis histogram"), std::string::npos);
  EXPECT_NE(text.find("regtest_prom_millis_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("regtest_prom_millis_count"), std::string::npos);
  EXPECT_NE(text.find("regtest_prom_millis_sum"), std::string::npos);
}

TEST(ExportTest, ValidatorRejectsMalformedText) {
  EXPECT_FALSE(ValidatePrometheusText("9bad_name 1\n").ok());
  EXPECT_FALSE(ValidatePrometheusText("metric{le=\"1\" 2\n").ok());        // unterminated
  EXPECT_FALSE(ValidatePrometheusText("metric{a=\"1\"b=\"2\"} 3\n").ok());  // missing comma
  EXPECT_FALSE(ValidatePrometheusText("metric not_a_number\n").ok());
  // Histogram series must end with a +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText("m_bucket{le=\"1\"} 2\nm_count 2\nm_sum 2\n").ok());
  EXPECT_TRUE(ValidatePrometheusText("").ok());
  EXPECT_TRUE(ValidatePrometheusText("# just a comment\n\nplain_value 1 1234\n").ok());
}

TEST(ExportTest, JsonAndTableMentionEveryMetric) {
  auto& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.GetCounter("regtest_fmt_total", "h"), nullptr);
  const auto snap = reg.Snapshot();
  const std::string json = FormatJson(snap);
  const std::string table = FormatTable(snap);
  for (const MetricSnapshot& m : snap) {
    EXPECT_NE(json.find("\"" + m.name + "\""), std::string::npos) << m.name;
    EXPECT_NE(table.find(m.name), std::string::npos) << m.name;
  }
}

TEST(TraceTest, TerminationNamesAreStable) {
  EXPECT_EQ(TerminationName(Termination::kNone), "none");
  EXPECT_EQ(TerminationName(Termination::kT1), "t1");
  EXPECT_EQ(TerminationName(Termination::kT2), "t2");
  EXPECT_EQ(TerminationName(Termination::kExhausted), "exhausted");
}

TEST(TraceTest, ToJsonRendersSpansAndClearKeepsCapacity) {
  QueryTrace trace;
  QueryRoundSpan span;
  span.radius = 4;
  span.buckets_scanned = 10;
  span.collision_increments = 20;
  span.candidates_verified = 3;
  span.t1_fired = true;
  span.millis = 0.25;
  trace.rounds.push_back(span);
  trace.termination = Termination::kT1;
  trace.total_millis = 0.3;
  trace.pool_hits = 5;
  trace.pool_misses = 2;

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"termination\": \"t1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"radius\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets_scanned\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool_hits\": 5"), std::string::npos) << json;

  const size_t cap = trace.rounds.capacity();
  trace.Clear();
  EXPECT_TRUE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds.capacity(), cap);
  EXPECT_EQ(trace.termination, Termination::kNone);
  EXPECT_EQ(trace.pool_hits, 0u);
}

TEST(HistogramTest, ExemplarRoundTripAndRendering) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("regtest_exemplar_millis", "latency");
  ASSERT_NE(h, nullptr);
  h->Observe(1.0);  // no exemplar id — must not clobber anything later
  h->Observe(3.5, /*exemplar_id=*/77);
  const auto [value, id] = h->Exemplar();
  EXPECT_EQ(id, 77u);
  EXPECT_DOUBLE_EQ(value, 3.5);

  const auto snap = reg.Snapshot();
  const std::string json = FormatJson(snap);
  const std::string table = FormatTable(snap);
  // The exemplar links the scrape to a trace id in both renderings.
  const size_t jpos = json.find("\"regtest_exemplar_millis\"");
  ASSERT_NE(jpos, std::string::npos);
  EXPECT_NE(json.find("\"exemplar\"", jpos), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 77", jpos), std::string::npos);
  EXPECT_NE(table.find("exemplar=3.5@77"), std::string::npos) << table;
}

TEST(ExportTest, EmptyHistogramRendersWithoutFabricatedPercentiles) {
  auto& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.GetHistogram("regtest_empty_millis", "never observed"),
            nullptr);
  const auto snap = reg.Snapshot();

  // Table: the metric's line must not invent p50/p95/p99 from zero samples.
  const std::string table = FormatTable(snap);
  const size_t tpos = table.find("regtest_empty_millis");
  ASSERT_NE(tpos, std::string::npos);
  const std::string line = table.substr(tpos, table.find('\n', tpos) - tpos);
  EXPECT_EQ(line.find("p50"), std::string::npos) << line;
  EXPECT_NE(line.find("count=0"), std::string::npos) << line;

  // JSON: the metric's object carries count/sum but no percentile members.
  const std::string json = FormatJson(snap);
  const size_t jpos = json.find("\"regtest_empty_millis\"");
  ASSERT_NE(jpos, std::string::npos);
  const std::string obj = json.substr(jpos, json.find('}', jpos) - jpos);
  EXPECT_EQ(obj.find("\"p50\""), std::string::npos) << obj;
  EXPECT_NE(obj.find("\"count\": 0"), std::string::npos) << obj;

  // Prometheus: a count=0 histogram is still a complete, valid series.
  const std::string text = FormatPrometheus(snap);
  const Status s = ValidatePrometheusText(text);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(text.find("regtest_empty_millis_count 0"), std::string::npos);
  EXPECT_NE(text.find("regtest_empty_millis_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
}

TEST(ExportTest, BuildInfoGaugeCarriesAttributionLabels) {
  RegisterBuildMetrics("regtest-isa");
  const auto snap = MetricsRegistry::Global().Snapshot();
  const MetricSnapshot* info = nullptr;
  const MetricSnapshot* start = nullptr;
  for (const MetricSnapshot& m : snap) {
    if (m.name == "c2lsh_build_info") info = &m;
    if (m.name == "process_start_time_seconds") start = &m;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->gauge_value, 1.0);
  EXPECT_NE(info->labels.find("git=\""), std::string::npos) << info->labels;
  EXPECT_NE(info->labels.find("isa=\"regtest-isa\""), std::string::npos)
      << info->labels;
  EXPECT_NE(info->labels.find("sanitizer=\""), std::string::npos)
      << info->labels;
  ASSERT_NE(start, nullptr);
  EXPECT_GT(start->gauge_value, 0.0);

  const std::string text = FormatPrometheus(snap);
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
  EXPECT_NE(text.find("c2lsh_build_info{"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsPointers) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("regtest_reset_total", "h");
  Histogram* h = reg.GetHistogram("regtest_reset_millis", "h");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  c->Increment(5);
  h->Observe(1.0);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("regtest_reset_total", "h"), c);
}

}  // namespace
}  // namespace obs
}  // namespace c2lsh
