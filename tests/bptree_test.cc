#include "src/baselines/lsb/bptree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/lsb/zorder.h"
#include "src/util/random.h"

namespace c2lsh {
namespace {

ZOrderBPlusTree::BuildEntry Entry(uint64_t key, ObjectId id) {
  ZOrderBPlusTree::BuildEntry e;
  e.key = {key};
  e.id = id;
  return e;
}

TEST(BPlusTreeTest, BuildValidation) {
  EXPECT_TRUE(ZOrderBPlusTree::Build(1, {}).status().IsInvalidArgument());
  EXPECT_TRUE(ZOrderBPlusTree::Build(0, {Entry(1, 0)}).status().IsInvalidArgument());
  std::vector<ZOrderBPlusTree::BuildEntry> mixed = {Entry(1, 0)};
  ZOrderBPlusTree::BuildEntry wide;
  wide.key = {1, 2};
  wide.id = 1;
  mixed.push_back(wide);
  EXPECT_TRUE(ZOrderBPlusTree::Build(1, mixed).status().IsInvalidArgument());
}

TEST(BPlusTreeTest, SortsOnBuild) {
  auto t = ZOrderBPlusTree::Build(1, {Entry(30, 2), Entry(10, 0), Entry(20, 1)});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 3u);
  EXPECT_EQ(t->key(0)[0], 10u);
  EXPECT_EQ(t->key(1)[0], 20u);
  EXPECT_EQ(t->key(2)[0], 30u);
  EXPECT_EQ(t->id(0), 0u);
  EXPECT_EQ(t->id(2), 2u);
}

TEST(BPlusTreeTest, TiesSortById) {
  auto t = ZOrderBPlusTree::Build(1, {Entry(5, 9), Entry(5, 1), Entry(5, 4)});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->id(0), 1u);
  EXPECT_EQ(t->id(1), 4u);
  EXPECT_EQ(t->id(2), 9u);
}

TEST(BPlusTreeTest, LowerBoundMatchesStdLowerBound) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  std::vector<ZOrderBPlusTree::BuildEntry> entries;
  for (ObjectId i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next64() % 5000;
    keys.push_back(k);
    entries.push_back(Entry(k, i));
  }
  auto t = ZOrderBPlusTree::Build(1, entries);
  ASSERT_TRUE(t.ok());
  std::sort(keys.begin(), keys.end());
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t probe = rng.Next64() % 6000;
    const size_t expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    EXPECT_EQ(t->LowerBound(&probe), expected) << "probe=" << probe;
  }
  // Probe beyond the max lands at size().
  const uint64_t huge = ~0ULL;
  EXPECT_EQ(t->LowerBound(&huge), t->size());
}

TEST(BPlusTreeTest, HeightGeometry) {
  // 1-word keys + 4-byte id = 12 bytes; with 4096-byte pages that's 341
  // entries per leaf. Small trees are height 1.
  auto small = ZOrderBPlusTree::Build(1, {Entry(1, 0), Entry(2, 1)});
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->height(), 1u);
  EXPECT_GT(small->leaf_capacity(), 100u);

  std::vector<ZOrderBPlusTree::BuildEntry> many;
  for (ObjectId i = 0; i < 10000; ++i) many.push_back(Entry(i, i));
  auto big = ZOrderBPlusTree::Build(1, many);
  ASSERT_TRUE(big.ok());
  EXPECT_GE(big->height(), 2u);
  EXPECT_LE(big->height(), 4u);
}

TEST(BPlusTreeTest, LowerBoundChargesDescent) {
  std::vector<ZOrderBPlusTree::BuildEntry> many;
  for (ObjectId i = 0; i < 5000; ++i) many.push_back(Entry(i, i));
  auto t = ZOrderBPlusTree::Build(1, many);
  ASSERT_TRUE(t.ok());
  IoCounter io;
  const uint64_t probe = 2500;
  t->LowerBound(&probe, &io);
  EXPECT_EQ(io.index_pages(), t->height());
}

TEST(BPlusTreeTest, ChargeStepOnlyAcrossPages) {
  std::vector<ZOrderBPlusTree::BuildEntry> many;
  for (ObjectId i = 0; i < 1000; ++i) many.push_back(Entry(i, i));
  auto t = ZOrderBPlusTree::Build(1, many);
  ASSERT_TRUE(t.ok());
  const size_t cap = t->leaf_capacity();
  IoCounter io;
  t->ChargeStep(0, 1, &io);  // same page
  EXPECT_EQ(io.index_pages(), 0u);
  t->ChargeStep(cap - 1, cap, &io);  // crosses a page boundary
  EXPECT_EQ(io.index_pages(), 1u);
  t->ChargeStep(cap, cap - 1, &io);  // crossing back also costs
  EXPECT_EQ(io.index_pages(), 2u);
}

TEST(BPlusTreeTest, MultiWordKeysOrdered) {
  Rng rng(9);
  std::vector<ZOrderBPlusTree::BuildEntry> entries;
  for (ObjectId i = 0; i < 300; ++i) {
    ZOrderBPlusTree::BuildEntry e;
    e.key = {rng.Next64() % 8, rng.Next64()};
    e.id = i;
    entries.push_back(e);
  }
  auto t = ZOrderBPlusTree::Build(2, entries);
  ASSERT_TRUE(t.ok());
  for (size_t i = 1; i < t->size(); ++i) {
    EXPECT_LE(ZOrderEncoder::Compare(t->key(i - 1), t->key(i), 2), 0);
  }
}

TEST(BPlusTreeTest, MemoryBytesPositive) {
  auto t = ZOrderBPlusTree::Build(1, {Entry(1, 0)});
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace c2lsh
