// Property-based tests of C2LSH's probabilistic guarantees: the measured
// collision-count statistics must match the paper's P1/P2 properties and the
// analytic predictions in core/theory.h.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/core/theory.h"
#include "src/util/random.h"
#include "src/vector/distance.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

// A controlled world: points planted at known distances from a set of query
// anchors, so P1/P2 can be checked at exact distances.
struct PlantedWorld {
  Dataset data;
  FloatMatrix queries;  // the anchors
  // Rows [0, n_close) of data are at distance exactly `close_dist` from
  // query 0; the rest are at distance >= far_dist from every anchor.
};

PlantedWorld MakePlantedWorld(size_t dim, size_t n_close, double close_dist,
                              size_t n_far, double far_min_dist, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> anchor;
  rng.GaussianVector(dim, &anchor);

  auto m = FloatMatrix::Create(n_close + n_far, dim);
  EXPECT_TRUE(m.ok());
  // Close points: anchor + close_dist * random unit direction.
  for (size_t i = 0; i < n_close; ++i) {
    std::vector<float> dir;
    rng.GaussianVector(dim, &dir);
    const double norm = std::sqrt(SquaredNorm(dir.data(), dim));
    float* row = m->mutable_row(i);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = anchor[j] + static_cast<float>(close_dist * dir[j] / norm);
    }
  }
  // Far points: anchor + (far_min_dist * (1 + u)) * unit direction.
  for (size_t i = 0; i < n_far; ++i) {
    std::vector<float> dir;
    rng.GaussianVector(dim, &dir);
    const double norm = std::sqrt(SquaredNorm(dir.data(), dim));
    const double dist = far_min_dist * (1.0 + rng.Uniform(0.0, 2.0));
    float* row = m->mutable_row(n_close + i);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = anchor[j] + static_cast<float>(dist * dir[j] / norm);
    }
  }
  auto data = Dataset::Create("planted", std::move(m.value()));
  EXPECT_TRUE(data.ok());
  auto q = FloatMatrix::FromVector(1, dim, std::vector<float>(anchor));
  EXPECT_TRUE(q.ok());
  return PlantedWorld{std::move(data.value()), std::move(q.value())};
}

C2lshOptions Options(uint64_t seed) {
  C2lshOptions o;
  o.w = 1.0;
  o.c = 2.0;
  o.delta = 0.1;
  o.seed = seed;
  return o;
}

// P1: objects within distance R reach the collision threshold at radius R
// with frequency >= 1 - delta.
TEST(C2lshPropertyTest, P1FrequencyAtLeastOneMinusDelta) {
  const size_t n_close = 400;
  PlantedWorld world =
      MakePlantedWorld(32, n_close, /*close_dist=*/1.0, /*n_far=*/400,
                       /*far_min_dist=*/64.0, /*seed=*/101);
  auto index = C2lshIndex::Build(world.data, Options(31));
  ASSERT_TRUE(index.ok());
  const size_t l = index->derived().l;

  const auto counts = index->CollisionCountsAtRadius(world.queries.row(0), 1);
  size_t frequent = 0;
  for (size_t i = 0; i < n_close; ++i) {
    if (counts[i] >= l) ++frequent;
  }
  const double freq = static_cast<double>(frequent) / n_close;
  // Guarantee: >= 1 - delta = 0.9 per object. Allow binomial noise downward.
  EXPECT_GT(freq, 0.85) << "P1 frequency " << freq;
}

// P2: the number of far objects (distance > cR) reaching the threshold stays
// within the beta*n budget (in expectation over hash draws; we average over
// several independently-seeded indexes).
TEST(C2lshPropertyTest, P2FalsePositivesWithinBudget) {
  const size_t n_far = 2000;
  PlantedWorld world = MakePlantedWorld(32, /*n_close=*/10, 1.0, n_far,
                                        /*far_min_dist=*/64.0, /*seed=*/202);
  double total_fp = 0.0;
  const int num_indexes = 5;
  double beta = 0.0;
  for (int t = 0; t < num_indexes; ++t) {
    auto index = C2lshIndex::Build(world.data, Options(1000 + t));
    ASSERT_TRUE(index.ok());
    beta = index->derived().beta;
    const size_t l = index->derived().l;
    const auto counts = index->CollisionCountsAtRadius(world.queries.row(0), 1);
    size_t fp = 0;
    for (size_t i = 10; i < 10 + n_far; ++i) {
      if (counts[i] >= l) ++fp;
    }
    total_fp += static_cast<double>(fp);
  }
  const double mean_fp = total_fp / num_indexes;
  const double budget = beta * static_cast<double>(world.data.size());
  EXPECT_LE(mean_fp, budget) << "mean FP " << mean_fp << " vs budget " << budget;
}

// Collision counts follow Binomial(m, p(dist; w*R)): mean check at several
// distances.
TEST(C2lshPropertyTest, CollisionCountMeanMatchesBinomial) {
  const size_t per_ring = 300;
  // Rings at distances 1, 2, 4 from the anchor.
  Rng rng(303);
  const size_t dim = 24;
  std::vector<float> anchor;
  rng.GaussianVector(dim, &anchor);
  auto m = FloatMatrix::Create(3 * per_ring, dim);
  ASSERT_TRUE(m.ok());
  const double dists[3] = {1.0, 2.0, 4.0};
  for (size_t ring = 0; ring < 3; ++ring) {
    for (size_t i = 0; i < per_ring; ++i) {
      std::vector<float> dir;
      rng.GaussianVector(dim, &dir);
      const double norm = std::sqrt(SquaredNorm(dir.data(), dim));
      float* row = m->mutable_row(ring * per_ring + i);
      for (size_t j = 0; j < dim; ++j) {
        row[j] = anchor[j] + static_cast<float>(dists[ring] * dir[j] / norm);
      }
    }
  }
  auto data = Dataset::Create("rings", std::move(m.value()));
  ASSERT_TRUE(data.ok());
  auto index = C2lshIndex::Build(data.value(), Options(47));
  ASSERT_TRUE(index.ok());
  const double mm = static_cast<double>(index->derived().m);
  const double w = index->options().w;

  const long long R = 2;
  const auto counts = index->CollisionCountsAtRadius(anchor.data(), R);
  for (size_t ring = 0; ring < 3; ++ring) {
    double sum = 0.0;
    for (size_t i = 0; i < per_ring; ++i) {
      sum += counts[ring * per_ring + i];
    }
    const double mean_count = sum / per_ring;
    const double p = PStableCollisionProbability(dists[ring], w * static_cast<double>(R));
    // Mean of Binomial(m, p) is m*p; the sampled mean over per_ring objects
    // (sharing hash functions, so correlated) gets a generous 15% tolerance.
    EXPECT_NEAR(mean_count, mm * p, 0.15 * mm * p + 2.0) << "ring dist " << dists[ring];
  }
}

// Frequency of being "frequent" matches the exact binomial tail prediction.
TEST(C2lshPropertyTest, FrequentFrequencyMatchesBinomialTail) {
  const size_t per_ring = 500;
  PlantedWorld world = MakePlantedWorld(24, per_ring, /*close_dist=*/2.0,
                                        /*n_far=*/1, 1000.0, /*seed=*/404);
  auto index = C2lshIndex::Build(world.data, Options(53));
  ASSERT_TRUE(index.ok());

  const long long R = 2;
  const auto counts = index->CollisionCountsAtRadius(world.queries.row(0), R);
  size_t frequent = 0;
  for (size_t i = 0; i < per_ring; ++i) {
    if (counts[i] >= index->derived().l) ++frequent;
  }
  const double measured = static_cast<double>(frequent) / per_ring;
  const double predicted = ProbFrequent(index->derived(), 2.0, static_cast<double>(R));
  EXPECT_NEAR(measured, predicted, 0.08) << "measured " << measured << " predicted "
                                         << predicted;
}

// Monotonicity: collision counts never decrease as the radius grows
// (interval nesting), for every object.
TEST(C2lshPropertyTest, CountsMonotoneInRadius) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 55);
  ASSERT_TRUE(pd.ok());
  auto index = C2lshIndex::Build(pd->data, Options(59));
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> prev(pd->data.size(), 0);
  for (long long R = 1; R <= 64; R *= 2) {
    const auto counts = index->CollisionCountsAtRadius(pd->queries.row(0), R);
    for (size_t i = 0; i < counts.size(); ++i) {
      EXPECT_GE(counts[i], prev[i]) << "object " << i << " R=" << R;
    }
    prev = counts;
  }
}

// At enormous radius every object collides in every table.
TEST(C2lshPropertyTest, FullCoverageAtHugeRadius) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 1, 66);
  ASSERT_TRUE(pd.ok());
  auto index = C2lshIndex::Build(pd->data, Options(61));
  ASSERT_TRUE(index.ok());
  const auto counts = index->CollisionCountsAtRadius(pd->queries.row(0), 1LL << 40);
  for (uint32_t c : counts) {
    EXPECT_EQ(c, index->derived().m);
  }
}

// The (R, c)-NNS decision contract's negative branch: when every object is
// far beyond c*R, the decision query returns nothing (NotFound) with high
// probability — returning any object would be within its rights only if it
// were inside c*R, which none are.
TEST(C2lshPropertyTest, DecisionQueryReturnsNothingWhenAllFar) {
  PlantedWorld world = MakePlantedWorld(24, /*n_close=*/1, /*close_dist=*/500.0,
                                        /*n_far=*/800, /*far_min_dist=*/500.0,
                                        /*seed=*/909);
  auto index = C2lshIndex::Build(world.data, Options(83));
  ASSERT_TRUE(index.ok());
  // At R = 1 (c*R = 2) every object is ~500 away.
  size_t spurious = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto r = index->DecisionQuery(world.data, world.queries.row(0), 1);
    if (r.ok()) {
      ++spurious;
    } else {
      EXPECT_TRUE(r.status().IsNotFound());
    }
  }
  EXPECT_EQ(spurious, 0u);
}

// Recall improves (weakly) as delta tightens, at higher index cost.
TEST(C2lshPropertyTest, TighterDeltaNeverCostsRecall) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 16, 77);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());

  auto run = [&](double delta) {
    C2lshOptions o = Options(71);
    o.delta = delta;
    auto index = C2lshIndex::Build(pd->data, o);
    EXPECT_TRUE(index.ok());
    double recall = 0.0;
    for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
      auto r = index->Query(pd->data, pd->queries.row(q), 10);
      EXPECT_TRUE(r.ok());
      std::vector<ObjectId> truth;
      for (size_t i = 0; i < 10; ++i) truth.push_back((*gt)[q][i].id);
      for (const Neighbor& nb : *r) {
        if (std::find(truth.begin(), truth.end(), nb.id) != truth.end()) {
          recall += 1.0;
        }
      }
    }
    return recall / (10.0 * pd->queries.num_rows());
  };

  const double loose = run(0.3);
  const double tight = run(0.05);
  EXPECT_GE(tight, loose - 0.1);  // statistical slack
}

}  // namespace
}  // namespace c2lsh
