// Wire-protocol tests: encode/decode round trips for every message type,
// decoder rejection of malformed input (the peer is never trusted), and the
// framing layer over an InprocTransport — including short reads, clean EOF
// on a frame boundary, mid-frame close as Corruption, and forged oversized
// length prefixes rejected before allocation.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/inproc_transport.h"
#include "src/serve/protocol.h"
#include "src/util/socket.h"

namespace c2lsh {
namespace serve {
namespace {

Status Decode(const std::string& body, Request* out) {
  return DecodeRequest(reinterpret_cast<const uint8_t*>(body.data()),
                       body.size(), out);
}

Status Decode(const std::string& body, Response* out) {
  return DecodeResponse(reinterpret_cast<const uint8_t*>(body.data()),
                        body.size(), out);
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  Request req;
  req.type = MsgType::kQuery;
  req.tenant = "tenant-a";
  req.index = "main";
  req.deadline_micros = 123456;
  req.page_budget = 77;
  req.k = 9;
  req.vector = {1.5f, -2.25f, 0.0f, 3.75f};

  Request back;
  ASSERT_TRUE(Decode(EncodeRequest(req), &back).ok());
  EXPECT_EQ(back.type, MsgType::kQuery);
  EXPECT_EQ(back.tenant, "tenant-a");
  EXPECT_EQ(back.index, "main");
  EXPECT_EQ(back.deadline_micros, 123456u);
  EXPECT_EQ(back.page_budget, 77u);
  EXPECT_EQ(back.k, 9u);
  EXPECT_EQ(back.vector, req.vector);
}

TEST(ProtocolTest, InsertDeleteHealthReadyRoundTrip) {
  Request ins;
  ins.type = MsgType::kInsert;
  ins.tenant = "t";
  ins.index = "i";
  ins.id = 4242;
  ins.vector = {0.5f, 0.25f};
  Request back;
  ASSERT_TRUE(Decode(EncodeRequest(ins), &back).ok());
  EXPECT_EQ(back.type, MsgType::kInsert);
  EXPECT_EQ(back.id, 4242u);
  EXPECT_EQ(back.vector, ins.vector);

  Request del;
  del.type = MsgType::kDelete;
  del.index = "i";
  del.id = 7;
  ASSERT_TRUE(Decode(EncodeRequest(del), &back).ok());
  EXPECT_EQ(back.type, MsgType::kDelete);
  EXPECT_EQ(back.id, 7u);
  EXPECT_TRUE(back.vector.empty());

  for (MsgType t : {MsgType::kHealth, MsgType::kReady}) {
    Request probe;
    probe.type = t;
    ASSERT_TRUE(Decode(EncodeRequest(probe), &back).ok());
    EXPECT_EQ(back.type, t);
  }
}

TEST(ProtocolTest, ResponseRoundTripCarriesTermination) {
  Response resp;
  resp.type = MsgType::kQuery;
  resp.code = StatusCode::kOk;
  resp.termination = Termination::kDeadline;  // partial, and says so
  resp.neighbors = {{1, 0.5f}, {9, 1.25f}, {3, 2.0f}};

  Response back;
  ASSERT_TRUE(Decode(EncodeResponse(resp), &back).ok());
  EXPECT_EQ(back.code, StatusCode::kOk);
  EXPECT_EQ(back.termination, Termination::kDeadline);
  EXPECT_TRUE(IsEarlyStop(back.termination));
  ASSERT_EQ(back.neighbors.size(), 3u);
  EXPECT_EQ(back.neighbors[1].id, 9u);
  EXPECT_FLOAT_EQ(back.neighbors[1].dist, 1.25f);
}

TEST(ProtocolTest, ErrorResponseCarriesMessageNoPayload) {
  Response resp;
  resp.type = MsgType::kQuery;
  resp.code = StatusCode::kUnavailable;
  resp.message = "shed: back off and retry";

  Response back;
  ASSERT_TRUE(Decode(EncodeResponse(resp), &back).ok());
  EXPECT_EQ(back.code, StatusCode::kUnavailable);
  EXPECT_EQ(back.message, "shed: back off and retry");
  EXPECT_TRUE(back.neighbors.empty());
}

TEST(ProtocolTest, DecoderRejectsMalformedRequests) {
  Request out;
  // Empty body.
  EXPECT_FALSE(Decode(std::string(), &out).ok());
  // Unknown message type.
  Request req;
  req.type = MsgType::kQuery;
  req.index = "i";
  req.k = 1;
  req.vector = {1.0f};
  std::string body = EncodeRequest(req);
  std::string bad = body;
  bad[0] = '\x09';
  EXPECT_FALSE(Decode(bad, &out).ok());
  bad[0] = '\x00';
  EXPECT_FALSE(Decode(bad, &out).ok());
  // Trailing garbage.
  EXPECT_FALSE(Decode(body + "x", &out).ok());
  // Truncation at every prefix length must fail, never crash or accept.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(Decode(body.substr(0, cut), &out).ok()) << "cut=" << cut;
  }
  // Over-cap tenant length on the wire (the encoder clamps, so a peer
  // sending this is hand-forging the frame).
  std::string forged;
  forged.push_back('\x04');  // kHealth
  forged.push_back(static_cast<char>(kMaxTenantBytes + 1));
  forged.append(kMaxTenantBytes + 1, 'a');
  forged.push_back('\x00');        // index length
  forged.append(16, '\x00');       // deadline + page budget
  EXPECT_FALSE(Decode(forged, &out).ok());
}

TEST(ProtocolTest, DecoderRejectsMalformedResponses) {
  Response out;
  EXPECT_FALSE(Decode(std::string(), &out).ok());
  Response resp;
  resp.type = MsgType::kQuery;
  resp.neighbors = {{1, 1.0f}};
  std::string body = EncodeResponse(resp);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(Decode(body.substr(0, cut), &out).ok()) << "cut=" << cut;
  }
  EXPECT_FALSE(Decode(body + "x", &out).ok());
}

// --- framing over a real (in-process) connection --------------------------

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto listener = transport_.Listen("frame");
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener).value();
    auto client = transport_.Connect("frame", Deadline::AfterMillis(1000));
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
    auto served = listener_->Accept();
    ASSERT_TRUE(served.ok());
    served_ = std::move(served).value();
  }

  InprocTransport transport_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<Connection> client_;
  std::unique_ptr<Connection> served_;
};

TEST_F(FramingTest, RoundTripAndShortReads) {
  const std::string body(1000, 'z');
  ASSERT_TRUE(WriteFrame(*client_, body, Deadline::AfterMillis(1000)).ok());
  // Short reads on the receiving side: the framing layer must loop, not
  // treat a half-delivered prefix or body as truncation.
  transport_.SetShortReads(16);
  std::string got;
  bool eof = true;
  ASSERT_TRUE(
      ReadFrame(*served_, &got, &eof, Deadline::AfterMillis(2000)).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(got, body);
}

TEST_F(FramingTest, CleanEofOnFrameBoundary) {
  client_->Shutdown();
  client_.reset();
  std::string got;
  bool eof = false;
  Status s = ReadFrame(*served_, &got, &eof, Deadline::AfterMillis(1000));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(eof);
}

TEST_F(FramingTest, MidFrameCloseIsCorruption) {
  // A length prefix promising 100 bytes, then only 3, then close.
  const uint8_t prefix[4] = {100, 0, 0, 0};
  ASSERT_TRUE(
      client_->Write(prefix, sizeof(prefix), Deadline::AfterMillis(1000)).ok());
  ASSERT_TRUE(client_->Write("abc", 3, Deadline::AfterMillis(1000)).ok());
  client_->Shutdown();
  client_.reset();
  std::string got;
  bool eof = false;
  Status s = ReadFrame(*served_, &got, &eof, Deadline::AfterMillis(1000));
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(FramingTest, ForgedOversizedLengthRejectedBeforeAllocation) {
  // 0xFFFFFFFF bytes claimed; the reader must reject after the 4-byte
  // prefix without ever trying to allocate or read the body.
  const uint8_t prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(
      client_->Write(prefix, sizeof(prefix), Deadline::AfterMillis(1000)).ok());
  std::string got;
  bool eof = false;
  Status s = ReadFrame(*served_, &got, &eof, Deadline::AfterMillis(1000));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(FramingTest, ReadFrameHonorsDeadlineWhenPeerStalls) {
  std::string got;
  bool eof = false;
  // Nothing ever arrives: the read must give up with Unavailable at the
  // deadline instead of blocking forever.
  Status s = ReadFrame(*served_, &got, &eof, Deadline::AfterMillis(50));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

}  // namespace
}  // namespace serve
}  // namespace c2lsh
