// WriteAheadLog framing, replay, and torn-tail truncation.
//
// The contract under test: a record is durable once Append+Sync return OK;
// Replay applies surviving records exactly once (records at or below the
// caller's applied-LSN watermark are skipped), truncates a torn or corrupt
// tail instead of surfacing garbage, and enforces LSN monotonicity so a
// resurrected stale frame can never reappear past the logical tail.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/storage/wal.h"
#include "src/util/fault_env.h"

namespace c2lsh {
namespace {

using Record = WriteAheadLog::Record;
using RecordType = WriteAheadLog::RecordType;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_wal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  static Record Insert(uint64_t lsn, ObjectId id, std::vector<float> vec) {
    Record r;
    r.lsn = lsn;
    r.type = RecordType::kInsert;
    r.id = id;
    r.vec = std::move(vec);
    return r;
  }
  static Record Delete(uint64_t lsn, ObjectId id) {
    Record r;
    r.lsn = lsn;
    r.type = RecordType::kDelete;
    r.id = id;
    return r;
  }

  std::filesystem::path dir_;
};

TEST_F(WalTest, AppendReplayRoundtrip) {
  const std::string path = Path("roundtrip.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal->Append(Insert(1, 7, {1.0f, 2.0f, 3.0f})).ok());
    ASSERT_TRUE(wal->Append(Delete(2, 4)).ok());
    ASSERT_TRUE(wal->Append(Insert(3, 9, {-0.5f, 0.25f})).ok());
    ASSERT_TRUE(wal->Sync().ok());
    EXPECT_EQ(wal->last_lsn(), 3u);
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  std::vector<Record> seen;
  auto replayed = wal->Replay(0, [&](const Record& rec) {
    seen.push_back(rec);
    return Status::OK();
  });
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->applied, 3u);
  EXPECT_EQ(replayed->skipped, 0u);
  EXPECT_EQ(replayed->truncated, 0u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].lsn, 1u);
  EXPECT_EQ(seen[0].type, RecordType::kInsert);
  EXPECT_EQ(seen[0].id, 7u);
  EXPECT_EQ(seen[0].vec, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(seen[1].type, RecordType::kDelete);
  EXPECT_EQ(seen[1].id, 4u);
  EXPECT_EQ(seen[2].vec, (std::vector<float>{-0.5f, 0.25f}));
  EXPECT_EQ(wal->last_lsn(), 3u);
}

TEST_F(WalTest, ReplaySkipsRecordsAtOrBelowWatermark) {
  const std::string path = Path("watermark.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
      ASSERT_TRUE(wal->Append(Delete(lsn, static_cast<ObjectId>(lsn))).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  std::vector<uint64_t> applied;
  auto stats = wal->Replay(3, [&](const Record& rec) {
    applied.push_back(rec.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->skipped, 3u);
  EXPECT_EQ(stats->applied, 2u);
  EXPECT_EQ(applied, (std::vector<uint64_t>{4, 5}));
  // The cursor still advanced past everything: the next append must not
  // collide with a skipped record's LSN.
  EXPECT_EQ(wal->last_lsn(), 5u);
}

TEST_F(WalTest, AppendRejectsNonAdvancingLsn) {
  auto wal = WriteAheadLog::Open(Path("monotone.wal"));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Delete(5, 1)).ok());
  Status st = wal->Append(Delete(5, 2));
  EXPECT_TRUE(st.IsInvalidArgument());
  st = wal->Append(Delete(4, 3));
  EXPECT_TRUE(st.IsInvalidArgument());
  ASSERT_TRUE(wal->Append(Delete(6, 4)).ok());
}

// Crash sweep over the append path: for every possible torn write, replay
// recovers exactly the records whose Append+Sync completed, and reports the
// torn tail via `truncated` without applying any partial frame.
TEST_F(WalTest, TornTailCrashSweepRecoversAckedPrefix) {
  FaultInjectionEnv env(Env::Default());

  // Dry run to count writes: header + one write per record.
  const std::string probe = Path("probe.wal");
  uint64_t total_writes = 0;
  {
    auto wal = WriteAheadLog::Open(probe, &env);
    ASSERT_TRUE(wal.ok());
    for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
      ASSERT_TRUE(wal->Append(Insert(lsn, static_cast<ObjectId>(lsn),
                                     {static_cast<float>(lsn), 0.5f}))
                      .ok());
      ASSERT_TRUE(wal->Sync().ok());
    }
    total_writes = env.stats().writes;
  }
  ASSERT_GE(total_writes, 5u);

  for (uint64_t crash_at = 1; crash_at <= total_writes; ++crash_at) {
    SCOPED_TRACE("crash at write " + std::to_string(crash_at));
    const std::string path = Path("sweep_" + std::to_string(crash_at) + ".wal");
    env.ClearCrash();
    env.SetCrashAfterWrites(static_cast<int64_t>(crash_at));
    uint64_t acked = 0;
    {
      auto wal = WriteAheadLog::Open(path, &env);
      if (wal.ok()) {
        for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
          if (!wal->Append(Insert(lsn, static_cast<ObjectId>(lsn),
                                  {static_cast<float>(lsn), 0.5f}))
                   .ok()) {
            break;
          }
          if (!wal->Sync().ok()) break;
          acked = lsn;
        }
      }
    }
    ASSERT_TRUE(env.crashed());
    env.ClearCrash();

    auto wal = WriteAheadLog::Open(path, &env);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    std::vector<uint64_t> seen;
    auto stats = wal->Replay(0, [&](const Record& rec) {
      EXPECT_EQ(rec.vec.size(), 2u);  // never a partial body
      seen.push_back(rec.lsn);
      return Status::OK();
    });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // Every acknowledged record must replay; the one in-flight at the crash
    // may have reached disk completely (acked + 1) or not at all.
    ASSERT_GE(seen.size(), acked);
    ASSERT_LE(seen.size(), acked + 1);
    for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);

    // And the recovered log accepts new appends exactly after its tail.
    ASSERT_TRUE(wal->Append(Delete(wal->last_lsn() + 1, 99)).ok());
  }
}

// A flipped byte in the middle of the file cuts replay at the damaged frame:
// everything before it is applied, nothing after it (suffix truncation, the
// same policy as a torn tail — a hole in the LSN sequence would be worse
// than losing the tail).
TEST_F(WalTest, MidFileCorruptionTruncatesSuffix) {
  const std::string path = Path("midflip.wal");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (uint64_t lsn = 1; lsn <= 6; ++lsn) {
      ASSERT_TRUE(wal->Append(Insert(lsn, static_cast<ObjectId>(lsn), {1.0f})).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Flip one byte in the middle of the file body (past the 16-byte header).
  const auto size = std::filesystem::file_size(path);
  const uint64_t offset = 16 + (size - 16) / 2;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(offset));
    char flipped = static_cast<char>(static_cast<uint8_t>(b) ^ 0x40);
    f.write(&flipped, 1);
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  std::vector<uint64_t> seen;
  auto stats = wal->Replay(0, [&](const Record& rec) {
    seen.push_back(rec.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->truncated, 1u);
  EXPECT_LT(seen.size(), 6u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST_F(WalTest, ResetTruncatesButKeepsLsnCursor) {
  const std::string path = Path("reset.wal");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Insert(1, 1, {1.0f})).ok());
  ASSERT_TRUE(wal->Append(Delete(2, 1)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Reset().ok());
  // Physically empty...
  size_t replayed_count = 0;
  auto stats = wal->Replay(0, [&](const Record&) {
    ++replayed_count;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(replayed_count, 0u);
  // ...but the cursor survives, so old LSNs can never be reused.
  EXPECT_EQ(wal->last_lsn(), 2u);
  EXPECT_TRUE(wal->Append(Delete(2, 9)).IsInvalidArgument());
  ASSERT_TRUE(wal->Append(Delete(3, 9)).ok());
}

TEST_F(WalTest, OversizedRecordIsRejectedNeverAcknowledged) {
  // Replay treats a frame length beyond kMaxBodyBytes as a torn tail, so a
  // record that encodes past the bound must be refused at Append — writing
  // it would silently drop the acked mutation (and everything after it) at
  // the next recovery.
  const std::string path = Path("oversize.wal");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  // Largest vector that still fits: body = lsn(8) + type(1) + id(4) +
  // dim(4) + 4 bytes per float.
  const size_t fixed = sizeof(uint64_t) + 1 + sizeof(ObjectId) + sizeof(uint32_t);
  const size_t max_floats = (WriteAheadLog::kMaxBodyBytes - fixed) / sizeof(float);

  Record too_big = Insert(1, 0, std::vector<float>(max_floats + 1, 1.0f));
  EXPECT_TRUE(wal->Append(too_big).IsInvalidArgument());
  EXPECT_EQ(wal->last_lsn(), 0u);  // nothing advanced, nothing written

  // The log is still usable, the boundary record still fits, and a reopen
  // replays exactly the records that were acknowledged.
  Record at_limit = Insert(1, 0, std::vector<float>(max_floats, 1.0f));
  ASSERT_TRUE(wal->Append(at_limit).ok());
  ASSERT_TRUE(wal->Append(Delete(2, 3)).ok());
  ASSERT_TRUE(wal->Sync().ok());

  auto reopened = WriteAheadLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  std::vector<Record> seen;
  auto stats = reopened->Replay(0, [&](const Record& rec) {
    seen.push_back(rec);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->applied, 2u);
  EXPECT_EQ(stats->truncated, 0u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].vec.size(), max_floats);
  EXPECT_EQ(seen[1].type, RecordType::kDelete);
}

TEST_F(WalTest, GarbageFileIsTruncatedNotParsed) {
  const std::string path = Path("garbage.wal");
  {
    std::ofstream f(path, std::ios::binary);
    const char junk[] = "this was never a WAL, not even close, but is long enough";
    f.write(junk, sizeof(junk));
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  size_t replayed_count = 0;
  auto stats = wal->Replay(0, [&](const Record&) {
    ++replayed_count;
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(replayed_count, 0u);
  EXPECT_EQ(stats->truncated, 1u);
  // The rewritten header makes the file a usable log again.
  ASSERT_TRUE(wal->Append(Delete(1, 5)).ok());
  ASSERT_TRUE(wal->Sync().ok());
}

}  // namespace
}  // namespace c2lsh
