// Coverage for the annotated c2lsh::Mutex / MutexLock wrapper (util/mutex.h).
// Deterministic: every test asserts an exact final state, so the suite runs
// in the default lane and is re-run unchanged under TSan via `ctest -L race`
// (where the mutual-exclusion tests double as data-race probes).

#include "src/util/mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_annotations.h"

namespace c2lsh {
namespace {

TEST(MutexTest, LockUnlockSequential) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  // Re-lockable after Unlock (i.e. Unlock really released it).
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, MutexLockIsScoped) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    mu.AssertHeld();
  }
  // The scope above released the mutex; acquiring again must not deadlock.
  MutexLock lock(&mu);
}

// A counter guarded the way production code guards state. With the mutex,
// num_threads * increments_per_thread increments survive exactly; a lost
// update (the classic torn read-modify-write) would change the total, and
// under TSan the guarded access pattern must produce zero reports.
class GuardedCounter {
 public:
  void Increment() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++value_;
  }
  int value() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, GuardedCounterExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  GuardedCounter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MutexTest, ReadersObserveConsistentValueWhileWritersRun) {
  GuardedCounter counter;
  constexpr int kWrites = 20000;
  std::thread writer([&counter]() {
    for (int i = 0; i < kWrites; ++i) counter.Increment();
  });
  // Concurrent reads through the same mutex: every observed value must be a
  // real intermediate count, monotonically non-decreasing.
  int last = 0;
  while (last < kWrites) {
    const int v = counter.value();
    EXPECT_GE(v, last);
    EXPECT_LE(v, kWrites);
    last = v;
  }
  writer.join();
  EXPECT_EQ(counter.value(), kWrites);
}

}  // namespace
}  // namespace c2lsh
