#include "src/core/disk_index.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/storage/disk_bucket_table.h"
#include "src/util/random.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

class DiskIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_disk_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DiskIndexTest, DiskBucketTableMatchesMemoryTable) {
  auto file = PageFile::Create(Path("tbl.pf"), 4096);
  ASSERT_TRUE(file.ok());
  auto pool = BufferPool::Create(&file.value(), 64);
  ASSERT_TRUE(pool.ok());

  Rng rng(3);
  std::vector<std::pair<BucketId, ObjectId>> pairs;
  for (ObjectId i = 0; i < 5000; ++i) {
    pairs.emplace_back(rng.UniformInt(-200, 200), i);
  }
  BucketTable mem = BucketTable::Build(pairs);
  auto disk = DiskBucketTable::Build(&pool.value(), pairs);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk->num_entries(), mem.num_entries());
  EXPECT_EQ(disk->num_buckets(), mem.num_buckets());

  for (int trial = 0; trial < 100; ++trial) {
    BucketId a = rng.UniformInt(-250, 250);
    BucketId b = a + rng.UniformInt(0, 100);
    std::vector<ObjectId> mem_ids, disk_ids;
    mem.ForEachInRange(a, b, [&](ObjectId id) { mem_ids.push_back(id); });
    auto visited = disk->ForEachInRange(a, b, [&](ObjectId id) { disk_ids.push_back(id); });
    ASSERT_TRUE(visited.ok());
    std::sort(mem_ids.begin(), mem_ids.end());
    std::sort(disk_ids.begin(), disk_ids.end());
    EXPECT_EQ(disk_ids, mem_ids) << "range [" << a << "," << b << "]";
    EXPECT_EQ(disk->EntriesInRange(a, b), mem.EntriesInRange(a, b));
  }
}

TEST_F(DiskIndexTest, DiskBucketTableSurvivesReload) {
  auto file = PageFile::Create(Path("tbl2.pf"), 512);
  ASSERT_TRUE(file.ok());
  auto pool = BufferPool::Create(&file.value(), 16);
  ASSERT_TRUE(pool.ok());

  std::vector<std::pair<BucketId, ObjectId>> pairs;
  for (ObjectId i = 0; i < 1000; ++i) pairs.emplace_back(i % 37, i);
  auto disk = DiskBucketTable::Build(&pool.value(), pairs);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(pool->FlushAll().ok());

  auto loaded = DiskBucketTable::Load(&pool.value(), disk->root());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entries(), 1000u);
  size_t count = 0;
  auto visited = loaded->ForEachInRange(0, 36, [&](ObjectId) { ++count; });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(count, 1000u);
}

TEST_F(DiskIndexTest, DiskIndexMatchesMemoryIndexExactly) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 12, 7);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 13;

  auto mem = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(mem.ok());
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("idx.pf"), 512);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  for (size_t q = 0; q < 12; ++q) {
    auto rm = mem->Query(pd->data, pd->queries.row(q), 10);
    auto rd = disk->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(rm.ok() && rd.ok());
    ASSERT_EQ(rd->size(), rm->size()) << "q=" << q;
    for (size_t i = 0; i < rm->size(); ++i) {
      EXPECT_EQ((*rd)[i].id, (*rm)[i].id) << "q=" << q << " i=" << i;
      EXPECT_EQ((*rd)[i].dist, (*rm)[i].dist);
    }
  }
}

TEST_F(DiskIndexTest, ReopenedIndexMatches) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 6, 9);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 17;
  const std::string path = Path("reopen.pf");

  std::vector<NeighborList> before;
  {
    auto disk = DiskC2lshIndex::Build(pd->data, o, path, 256);
    ASSERT_TRUE(disk.ok());
    for (size_t q = 0; q < 6; ++q) {
      auto r = disk->Query(pd->data, pd->queries.row(q), 5);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(r).value());
    }
  }
  auto disk = DiskC2lshIndex::Open(path, 256);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->num_objects(), 1000u);
  for (size_t q = 0; q < 6; ++q) {
    auto r = disk->Query(pd->data, pd->queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), before[q].size());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].id, before[q][i].id);
    }
  }
}

TEST_F(DiskIndexTest, PoolStatsMeasureIo) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 4, 11);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 19;
  // Build, then REOPEN so the pool is genuinely cold (building leaves pages
  // resident). The pool is sized above the per-query working set so the
  // repeat pass can hit (an LRU pool smaller than the working set correctly
  // thrashes to zero hits — SmallerPoolMoreMisses covers that regime).
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, Path("io.pf"), 8192);
    ASSERT_TRUE(built.ok());
  }
  auto disk = DiskC2lshIndex::Open(Path("io.pf"), 8192);
  ASSERT_TRUE(disk.ok());

  DiskQueryStats stats;
  auto r = disk->Query(pd->data, pd->queries.row(0), 10, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.pool_misses, 0u);  // cold pool: everything is a miss
  EXPECT_EQ(stats.base.index_pages, stats.pool_misses);
  EXPECT_GT(stats.base.candidates_verified, 0u);

  // A repeated identical query on a warm pool must hit much more.
  DiskQueryStats warm;
  auto r2 = disk->Query(pd->data, pd->queries.row(0), 10, &warm);
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(warm.pool_misses, stats.pool_misses / 2 + 1);
  EXPECT_GT(warm.pool_hits, 0u);
}

TEST_F(DiskIndexTest, SmallerPoolMoreMisses) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 8, 23);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 29;

  auto run = [&](size_t pool_pages) -> uint64_t {
    auto disk = DiskC2lshIndex::Build(pd->data, o, Path("pool_sweep.pf"), pool_pages);
    EXPECT_TRUE(disk.ok());
    disk->ResetPoolStats();
    uint64_t misses = 0;
    for (size_t q = 0; q < 8; ++q) {
      DiskQueryStats stats;
      auto r = disk->Query(pd->data, pd->queries.row(q), 10, &stats);
      EXPECT_TRUE(r.ok());
      misses += stats.pool_misses;
    }
    return misses;
  };

  const uint64_t small_pool = run(64);
  const uint64_t big_pool = run(4096);
  EXPECT_GE(small_pool, big_pool);
}

TEST_F(DiskIndexTest, SelfContainedQueryMatchesDatasetQuery) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 8, 41);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 43;
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("selfc.pf"), 4096,
                                    /*store_vectors=*/true);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk->has_stored_vectors());
  for (size_t q = 0; q < 8; ++q) {
    auto with_data = disk->Query(pd->data, pd->queries.row(q), 10);
    auto self_contained = disk->Query(pd->queries.row(q), 10);
    ASSERT_TRUE(with_data.ok() && self_contained.ok());
    ASSERT_EQ(self_contained->size(), with_data->size());
    for (size_t i = 0; i < with_data->size(); ++i) {
      EXPECT_EQ((*self_contained)[i].id, (*with_data)[i].id);
      EXPECT_EQ((*self_contained)[i].dist, (*with_data)[i].dist);
    }
  }
}

TEST_F(DiskIndexTest, SelfContainedSurvivesReopenWithoutDataset) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 4, 47);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 53;
  const std::string path = Path("selfc2.pf");
  std::vector<NeighborList> before;
  {
    auto disk = DiskC2lshIndex::Build(pd->data, o, path, 2048);
    ASSERT_TRUE(disk.ok());
    for (size_t q = 0; q < 4; ++q) {
      auto r = disk->Query(pd->queries.row(q), 5);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(r).value());
    }
  }
  // Reopen: the dataset object is gone; the file alone answers queries.
  auto disk = DiskC2lshIndex::Open(path, 2048);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk->has_stored_vectors());
  for (size_t q = 0; q < 4; ++q) {
    auto r = disk->Query(pd->queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), before[q].size());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].id, before[q][i].id);
      EXPECT_EQ((*r)[i].dist, before[q][i].dist);
    }
  }
}

TEST_F(DiskIndexTest, SelfContainedMeasuresDataIo) {
  auto pd = MakeProfileDataset(DatasetProfile::kAudio, 1000, 2, 59);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 61;
  const std::string path = Path("dataio.pf");
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 4096);
    ASSERT_TRUE(built.ok());
  }
  auto disk = DiskC2lshIndex::Open(path, 4096);
  ASSERT_TRUE(disk.ok());
  DiskQueryStats stats;
  auto r = disk->Query(pd->queries.row(0), 10, &stats);
  ASSERT_TRUE(r.ok());
  // Verification reads come from the data segment: measured data pages > 0
  // and the split is consistent with the pool totals.
  EXPECT_GT(stats.base.data_pages, 0u);
  EXPECT_EQ(stats.base.index_pages + stats.base.data_pages, stats.pool_misses);
}

TEST_F(DiskIndexTest, WithoutStoredVectorsSelfQueryRejected) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 400, 1, 67);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 71;
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("novec.pf"), 2048,
                                    /*store_vectors=*/false);
  ASSERT_TRUE(disk.ok());
  EXPECT_FALSE(disk->has_stored_vectors());
  EXPECT_TRUE(disk->Query(pd->queries.row(0), 5).status().IsNotSupported());
  // The dataset-backed path still works.
  auto r = disk->Query(pd->data, pd->queries.row(0), 5);
  EXPECT_TRUE(r.ok());
}

TEST_F(DiskIndexTest, OpenMissingAndGarbage) {
  EXPECT_TRUE(DiskC2lshIndex::Open(Path("nope.pf")).status().IsIOError());
  std::ofstream(Path("junk.pf")) << "garbage";
  EXPECT_TRUE(DiskC2lshIndex::Open(Path("junk.pf")).status().IsCorruption());
}

TEST_F(DiskIndexTest, QueryValidation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 500, 2, 31);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 37;
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("val.pf"), 128);
  ASSERT_TRUE(disk.ok());
  EXPECT_TRUE(disk->Query(pd->data, pd->queries.row(0), 0).status().IsInvalidArgument());
  auto other = MakeProfileDataset(DatasetProfile::kMnist, 500, 1, 39);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(disk->Query(other->data, pd->queries.row(0), 1)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
