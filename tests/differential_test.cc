// Randomized differential testing: across randomly drawn datasets,
// parameters and seeds, every index must uphold the result-contract
// invariants (sorted, unique, exact distances, valid ids), agree with the
// exact scan when exhaustive, and stay within the statistical envelope of
// its guarantee. Sweeps are deterministic per TEST_P instantiation.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/baselines/e2lsh.h"
#include "src/baselines/linear_scan.h"
#include "src/baselines/lsb/lsb_forest.h"
#include "src/baselines/multiprobe.h"
#include "src/baselines/srs/srs.h"
#include "src/core/index.h"
#include "src/extensions/qalsh/qalsh.h"
#include "src/util/random.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct FuzzCase {
  uint64_t seed;
};

void PrintTo(const FuzzCase& f, std::ostream* os) { *os << "seed=" << f.seed; }

class DifferentialTest : public ::testing::TestWithParam<FuzzCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    // Random dataset shape.
    const size_t n = 300 + rng.Index(1200);
    const size_t dim = 4 + rng.Index(48);
    const size_t clusters = 2 + rng.Index(20);
    MixtureConfig cfg;
    cfg.n = n;
    cfg.dim = dim;
    cfg.num_clusters = clusters;
    cfg.center_spread = 0.5 + rng.Uniform(0.0, 2.0);
    cfg.cluster_stddev = 0.05 + rng.Uniform(0.0, 0.4);
    cfg.seed = rng.Next64();
    auto m = GenerateGaussianMixture(cfg);
    ASSERT_TRUE(m.ok());
    RescaleToTargetNN(&m.value(), 4.0 + rng.Uniform(0.0, 12.0), rng.Next64());
    auto q = GenerateQueriesNearData(m.value(), 6, 0.5, rng.Next64());
    ASSERT_TRUE(q.ok());
    auto data = Dataset::Create("fuzz", std::move(m.value()));
    ASSERT_TRUE(data.ok());
    data_ = std::make_unique<Dataset>(std::move(data.value()));
    queries_ = std::make_unique<FloatMatrix>(std::move(q.value()));
    k_ = 1 + rng.Index(15);
    rng_seed_ = rng.Next64();
  }

  void CheckContract(const NeighborList& result, const float* query) {
    std::set<ObjectId> ids;
    for (size_t i = 0; i < result.size(); ++i) {
      ASSERT_LT(result[i].id, data_->size());
      ids.insert(result[i].id);
      if (i > 0) { EXPECT_LE(result[i - 1].dist, result[i].dist); }
      const double exact = L2(query, data_->object(result[i].id), data_->dim());
      EXPECT_NEAR(result[i].dist, exact, 1e-3 * (1.0 + exact));
    }
    EXPECT_EQ(ids.size(), result.size());
    EXPECT_LE(result.size(), k_);
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<FloatMatrix> queries_;
  size_t k_ = 1;
  uint64_t rng_seed_ = 0;
};

TEST_P(DifferentialTest, C2lshContract) {
  C2lshOptions o;
  o.seed = rng_seed_;
  Rng rng(rng_seed_);
  o.c = (rng.Index(2) == 0) ? 2.0 : 3.0;
  o.delta = 0.05 + rng.Uniform(0.0, 0.3);
  auto index = C2lshIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());  // queries are planted near data
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, C2lshExhaustiveEqualsScan) {
  C2lshOptions o;
  o.seed = rng_seed_ + 1;
  auto index = C2lshIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  LinearScan scan;
  // k = n forces exhaustion: answers must be identical to the exact scan.
  auto approx = index->Query(*data_, queries_->row(0), data_->size());
  auto exact = scan.Search(*data_, queries_->row(0), data_->size());
  ASSERT_TRUE(approx.ok() && exact.ok());
  ASSERT_EQ(approx->size(), exact->size());
  for (size_t i = 0; i < exact->size(); ++i) {
    EXPECT_EQ((*approx)[i].id, (*exact)[i].id) << "i=" << i;
  }
}

TEST_P(DifferentialTest, E2lshContract) {
  Rng rng(rng_seed_ + 2);
  E2lshOptions o;
  o.K = 2 + rng.Index(6);
  o.L = 4 + rng.Index(28);
  o.seed = rng.Next64();
  auto index = E2lshIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, LsbForestContract) {
  Rng rng(rng_seed_ + 3);
  LsbForestOptions o;
  o.tree.u = 3 + rng.Index(6);
  o.tree.v = 0;
  o.tree.w = 2.0 + rng.Uniform(0.0, 6.0);
  o.L = 3 + rng.Index(10);
  o.seed = rng.Next64();
  auto index = LsbForest::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, QalshContract) {
  Rng rng(rng_seed_ + 4);
  QalshOptions o;
  o.w = 1.0 + rng.Uniform(0.0, 3.0);
  o.c = 1.5 + rng.Uniform(0.0, 2.0);
  o.seed = rng.Next64();
  auto index = QalshIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, MultiProbeContract) {
  Rng rng(rng_seed_ + 7);
  MultiProbeOptions o;
  o.K = 3 + rng.Index(5);
  o.L = 3 + rng.Index(8);
  o.w = 4.0 + rng.Uniform(0.0, 20.0);
  o.num_probes = rng.Index(32);
  o.seed = rng.Next64();
  auto index = MultiProbeIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, SrsContract) {
  Rng rng(rng_seed_ + 8);
  SrsOptions o;
  o.projected_dim = 3 + rng.Index(6);
  o.c = 1.1 + rng.Uniform(0.0, 1.5);
  o.threshold = 0.5 + rng.Uniform(0.0, 0.49);
  o.budget_fraction = 0.01 + rng.Uniform(0.0, 0.3);
  o.seed = rng.Next64();
  auto index = SrsIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
  }
}

TEST_P(DifferentialTest, DynamicChurnPreservesContract) {
  C2lshOptions o;
  o.seed = rng_seed_ + 5;
  auto index = C2lshIndex::Build(*data_, o);
  ASSERT_TRUE(index.ok());
  Rng rng(rng_seed_ + 6);
  // Random delete/re-insert churn over existing rows.
  std::set<ObjectId> deleted;
  for (int step = 0; step < 60; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.Index(data_->size()));
    if (deleted.count(id) != 0) {
      ASSERT_TRUE(index->Insert(id, data_->object(id)).ok());
      deleted.erase(id);
    } else {
      ASSERT_TRUE(index->Delete(id).ok());
      deleted.insert(id);
    }
    if (step % 25 == 24) index->Compact();
  }
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index->Query(*data_, queries_->row(q), k_);
    ASSERT_TRUE(r.ok());
    CheckContract(*r, queries_->row(q));
    for (const Neighbor& nb : *r) {
      EXPECT_EQ(deleted.count(nb.id), 0u) << "deleted id surfaced";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(FuzzCase{11}, FuzzCase{22}, FuzzCase{33},
                                           FuzzCase{44}, FuzzCase{55}, FuzzCase{66},
                                           FuzzCase{77}, FuzzCase{88}));

}  // namespace
}  // namespace c2lsh
