#include "src/core/index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/baselines/linear_scan.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct TestWorld {
  Dataset data;
  FloatMatrix queries;
  std::vector<NeighborList> gt;
};

TestWorld MakeWorld(size_t n, size_t num_queries, size_t k, uint64_t seed,
                    DatasetProfile profile = DatasetProfile::kColor) {
  auto pd = MakeProfileDataset(profile, n, num_queries, seed);
  EXPECT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, k);
  EXPECT_TRUE(gt.ok());
  return TestWorld{std::move(pd->data), std::move(pd->queries), std::move(gt.value())};
}

C2lshOptions SmallOptions() {
  C2lshOptions o;
  o.w = 1.0;
  o.c = 2.0;
  o.delta = 0.1;
  o.seed = 7;
  return o;
}

TEST(C2lshIndexTest, BuildReportsDerivedParams) {
  TestWorld world = MakeWorld(2000, 4, 10, 1);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_tables(), index->derived().m);
  EXPECT_EQ(index->num_objects(), 2000u);
  EXPECT_GT(index->MemoryBytes(), 0u);
}

TEST(C2lshIndexTest, QueryValidation) {
  TestWorld world = MakeWorld(500, 2, 5, 2);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(
      index->Query(world.data, world.queries.row(0), 0).status().IsInvalidArgument());
}

TEST(C2lshIndexTest, FindsPlantedNearDuplicate) {
  TestWorld world = MakeWorld(3000, 16, 1, 3);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // Query with data points themselves: the exact NN at distance 0 must be
  // found (a distance-0 point collides in every table at every radius).
  for (size_t i = 0; i < 16; ++i) {
    const ObjectId target = static_cast<ObjectId>(i * 37);
    auto r = index->Query(world.data, world.data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1u);
    EXPECT_EQ((*r)[0].id, target);
    EXPECT_EQ((*r)[0].dist, 0.0f);
  }
}

TEST(C2lshIndexTest, ResultsSortedAndUnique) {
  TestWorld world = MakeWorld(3000, 8, 10, 4);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> ids;
    for (size_t i = 0; i < r->size(); ++i) {
      ids.insert((*r)[i].id);
      if (i > 0) { EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist); }
    }
    EXPECT_EQ(ids.size(), r->size());  // no duplicates
  }
}

TEST(C2lshIndexTest, ReportedDistancesAreExact) {
  TestWorld world = MakeWorld(1500, 6, 5, 5);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    for (const Neighbor& nb : *r) {
      const double exact =
          L2(world.queries.row(q), world.data.object(nb.id), world.data.dim());
      EXPECT_NEAR(nb.dist, exact, 1e-4);
    }
  }
}

TEST(C2lshIndexTest, HighRecallAtPaperParameters) {
  TestWorld world = MakeWorld(5000, 24, 10, 6);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  double recall_sum = 0.0;
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert(world.gt[q][i].id);
    size_t hits = 0;
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
    recall_sum += static_cast<double>(hits) / 10.0;
  }
  EXPECT_GT(recall_sum / 24.0, 0.6);  // typically ~0.9+; bound is conservative
}

TEST(C2lshIndexTest, C2ApproximationGuaranteeHolds) {
  // The paper's guarantee: returned NN is within c^2 of the exact NN with
  // constant probability. Averaged over queries the ratio must be far below
  // c^2 = 4 and the per-query ratio essentially always below it.
  TestWorld world = MakeWorld(4000, 32, 1, 7);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  size_t violations = 0;
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    const double exact = world.gt[q][0].dist;
    if (exact > 0 && (*r)[0].dist > 4.0 * exact) ++violations;
  }
  EXPECT_LE(violations, 32u / 4);  // failure prob is ~delta, not 25%
}

TEST(C2lshIndexTest, StatsPopulated) {
  TestWorld world = MakeWorld(2000, 2, 5, 8);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  C2lshQueryStats stats;
  auto r = index->Query(world.data, world.queries.row(0), 5, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.final_radius, 0);
  EXPECT_GT(stats.collision_increments, 0u);
  EXPECT_GT(stats.candidates_verified, 0u);
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_GT(stats.data_pages, 0u);
  EXPECT_TRUE(stats.termination == Termination::kT1 ||
              stats.termination == Termination::kT2);
  EXPECT_GE(stats.candidates_verified, r->size());
}

TEST(C2lshIndexTest, T2CapsVerifications) {
  // With the default beta = 100/n budget, candidate verifications must stay
  // around k + beta*n + per-round overshoot, far below n.
  TestWorld world = MakeWorld(6000, 8, 10, 9);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    C2lshQueryStats stats;
    auto r = index->Query(world.data, world.queries.row(q), 10, &stats);
    ASSERT_TRUE(r.ok());
    // Budget 10 + 100 plus one round of slack; candidates within a round can
    // overshoot because T2 is checked at round end.
    EXPECT_LT(stats.candidates_verified, 6000u / 2);
  }
}

TEST(C2lshIndexTest, DeterministicAcrossRebuilds) {
  TestWorld world = MakeWorld(1000, 4, 5, 10);
  auto a = C2lshIndex::Build(world.data, SmallOptions());
  auto b = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t q = 0; q < 4; ++q) {
    auto ra = a->Query(world.data, world.queries.row(q), 5);
    auto rb = b->Query(world.data, world.queries.row(q), 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
    }
  }
}

TEST(C2lshIndexTest, RepeatedQueriesGiveSameAnswer) {
  TestWorld world = MakeWorld(1000, 1, 5, 11);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto first = index->Query(world.data, world.queries.row(0), 5);
  ASSERT_TRUE(first.ok());
  for (int rep = 0; rep < 5; ++rep) {
    auto again = index->Query(world.data, world.queries.row(0), 5);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->size(), first->size());
    for (size_t i = 0; i < first->size(); ++i) {
      EXPECT_EQ((*again)[i].id, (*first)[i].id);
    }
  }
}

TEST(C2lshIndexTest, DecisionQueryFindsCloseObject) {
  TestWorld world = MakeWorld(2000, 8, 1, 12);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // At a radius comfortably above the NN distance the decision query must
  // return an object within c*R.
  size_t found = 0;
  for (size_t q = 0; q < 8; ++q) {
    const double nn = world.gt[q][0].dist;
    long long R = 1;
    while (static_cast<double>(R) < nn) R *= 2;
    auto r = index->DecisionQuery(world.data, world.queries.row(q), R);
    if (r.ok()) {
      EXPECT_LE(r->dist, 2.0 * static_cast<double>(R) + 1e-3);
      ++found;
    }
  }
  EXPECT_GE(found, 6u);  // success probability is high, not certain
}

TEST(C2lshIndexTest, DecisionQueryValidation) {
  TestWorld world = MakeWorld(500, 1, 1, 13);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->DecisionQuery(world.data, world.queries.row(0), 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(C2lshIndexTest, KLargerThanNReturnsEverythingEventually) {
  TestWorld world = MakeWorld(200, 1, 1, 14);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto r = index->Query(world.data, world.queries.row(0), 500);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 200u);  // full coverage verifies every object
}

TEST(C2lshIndexTest, MatchesLinearScanWhenExhaustive) {
  // Force exhaustion (k = n): C2LSH must equal the exact scan.
  TestWorld world = MakeWorld(300, 4, 1, 15);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  LinearScan scan;
  for (size_t q = 0; q < 4; ++q) {
    auto approx = index->Query(world.data, world.queries.row(q), 300);
    auto exact = scan.Search(world.data, world.queries.row(q), 300);
    ASSERT_TRUE(approx.ok() && exact.ok());
    ASSERT_EQ(approx->size(), exact->size());
    for (size_t i = 0; i < approx->size(); ++i) {
      EXPECT_EQ((*approx)[i].id, (*exact)[i].id) << "q=" << q << " i=" << i;
    }
  }
}

TEST(C2lshIndexTest, IndexStatsConsistent) {
  TestWorld world = MakeWorld(1500, 1, 1, 47);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  const auto stats = index->ComputeStats();
  EXPECT_EQ(stats.num_tables, index->derived().m);
  EXPECT_EQ(stats.entries_per_table, 1500u);
  EXPECT_GE(stats.max_buckets, stats.min_buckets);
  EXPECT_GT(stats.mean_buckets_per_table, 1.0);
  EXPECT_GE(static_cast<double>(stats.max_bucket_size), stats.mean_bucket_size);
  EXPECT_EQ(stats.overlay_entries, 0u);

  // Dynamic inserts show up as overlay pressure until compaction.
  ASSERT_TRUE(index->Insert(1500, world.data.object(0)).ok());
  EXPECT_EQ(index->ComputeStats().overlay_entries, index->derived().m);
  index->Compact();
  EXPECT_EQ(index->ComputeStats().overlay_entries, 0u);
}

TEST(C2lshIndexTest, FilteredQueryExcludesRejectedIds) {
  TestWorld world = MakeWorld(2000, 8, 10, 44);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // Tenant filter: only even ids are visible.
  auto even_only = [](ObjectId id) { return id % 2 == 0; };
  for (size_t q = 0; q < 8; ++q) {
    auto r = index->FilteredQuery(world.data, world.queries.row(q), 10, even_only);
    ASSERT_TRUE(r.ok());
    for (const Neighbor& nb : *r) {
      EXPECT_EQ(nb.id % 2, 0u);
    }
  }
}

TEST(C2lshIndexTest, FilteredQueryMatchesUnfilteredWhenAllPass) {
  TestWorld world = MakeWorld(1500, 4, 5, 45);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto accept_all = [](ObjectId) { return true; };
  for (size_t q = 0; q < 4; ++q) {
    auto plain = index->Query(world.data, world.queries.row(q), 5);
    auto filtered = index->FilteredQuery(world.data, world.queries.row(q), 5, accept_all);
    ASSERT_TRUE(plain.ok() && filtered.ok());
    ASSERT_EQ(filtered->size(), plain->size());
    for (size_t i = 0; i < plain->size(); ++i) {
      EXPECT_EQ((*filtered)[i].id, (*plain)[i].id);
    }
  }
}

TEST(C2lshIndexTest, FilteredQuerySkipsDistanceWorkForRejected) {
  TestWorld world = MakeWorld(2000, 2, 10, 46);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto reject_all = [](ObjectId) { return false; };
  C2lshQueryStats stats;
  auto r = index->FilteredQuery(world.data, world.queries.row(0), 10, reject_all, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(stats.candidates_verified, 0u);  // no distances computed
  EXPECT_EQ(stats.data_pages, 0u);
}

TEST(C2lshIndexTest, RangeQueryValidation) {
  TestWorld world = MakeWorld(300, 1, 1, 40);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->RangeQuery(world.data, world.queries.row(0), 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(index->RangeQuery(world.data, world.queries.row(0), -1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(C2lshIndexTest, RangeQueryPrecisionExactAndSorted) {
  TestWorld world = MakeWorld(2000, 8, 1, 41);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 8; ++q) {
    const double radius = 10.0;
    auto r = index->RangeQuery(world.data, world.queries.row(q), radius);
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_LE((*r)[i].dist, radius);
      if (i > 0) {
        EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist);
      }
    }
  }
}

TEST(C2lshIndexTest, RangeQueryHighRecallAgainstScan) {
  TestWorld world = MakeWorld(3000, 8, 1, 42);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  size_t truth_total = 0;
  size_t hits = 0;
  for (size_t q = 0; q < 8; ++q) {
    const double radius = 12.0;
    auto r = index->RangeQuery(world.data, world.queries.row(q), radius);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> returned;
    for (const Neighbor& nb : *r) returned.insert(nb.id);
    for (size_t i = 0; i < world.data.size(); ++i) {
      const double d = L2(world.queries.row(q), world.data.object(static_cast<ObjectId>(i)),
                          world.data.dim());
      if (d <= radius) {
        ++truth_total;
        hits += returned.count(static_cast<ObjectId>(i));
      }
    }
  }
  ASSERT_GT(truth_total, 0u);
  // P1 gives per-object recall >= 1 - delta = 0.9.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(truth_total), 0.8);
}

TEST(C2lshIndexTest, RangeQueryEmptyWhenNothingInRange) {
  TestWorld world = MakeWorld(500, 4, 1, 43);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // Radius far below the normalized NN distance (~8).
  size_t nonempty = 0;
  for (size_t q = 0; q < 4; ++q) {
    auto r = index->RangeQuery(world.data, world.queries.row(q), 1e-4);
    ASSERT_TRUE(r.ok());
    nonempty += r->empty() ? 0 : 1;
  }
  EXPECT_EQ(nonempty, 0u);
}

TEST(C2lshIndexTest, InsertedObjectBecomesFindable) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 16);
  ASSERT_TRUE(pd.ok());
  // Build over the first 900 rows by creating a prefix dataset.
  auto prefix_m = FloatMatrix::Create(900, pd->data.dim());
  ASSERT_TRUE(prefix_m.ok());
  for (size_t i = 0; i < 900; ++i) {
    std::copy(pd->data.object(static_cast<ObjectId>(i)),
              pd->data.object(static_cast<ObjectId>(i)) + pd->data.dim(),
              prefix_m->mutable_row(i));
  }
  auto prefix = Dataset::Create("prefix", std::move(prefix_m.value()));
  ASSERT_TRUE(prefix.ok());

  auto index = C2lshIndex::Build(prefix.value(), SmallOptions());
  ASSERT_TRUE(index.ok());
  // Insert rows 900..999.
  for (ObjectId id = 900; id < 1000; ++id) {
    ASSERT_TRUE(index->Insert(id, pd->data.object(id)).ok());
  }
  EXPECT_EQ(index->num_objects(), 1000u);
  // Query with an inserted vector: it must come back at distance 0.
  auto r = index->Query(pd->data, pd->data.object(950), 1);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].id, 950u);
  EXPECT_EQ((*r)[0].dist, 0.0f);
}

TEST(C2lshIndexTest, DeletedObjectDisappears) {
  TestWorld world = MakeWorld(800, 1, 1, 17);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  const ObjectId victim = 123;
  // Before: querying the victim's own vector returns it.
  auto before = index->Query(world.data, world.data.object(victim), 1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)[0].id, victim);

  ASSERT_TRUE(index->Delete(victim).ok());
  auto after = index->Query(world.data, world.data.object(victim), 1);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->empty());
  EXPECT_NE((*after)[0].id, victim);
}

TEST(C2lshIndexTest, DeleteUnknownIdRejected) {
  TestWorld world = MakeWorld(100, 1, 1, 18);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Delete(5000).IsNotFound());
}

TEST(C2lshIndexTest, CompactPreservesAnswers) {
  TestWorld world = MakeWorld(800, 4, 5, 19);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Delete(7).ok());
  ASSERT_TRUE(index->Delete(11).ok());

  std::vector<NeighborList> before;
  for (size_t q = 0; q < 4; ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    before.push_back(std::move(r).value());
  }
  index->Compact();
  for (size_t q = 0; q < 4; ++q) {
    auto r = index->Query(world.data, world.queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), before[q].size());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].id, before[q][i].id);
    }
  }
}

TEST(C2lshIndexTest, MismatchedDatasetRejected) {
  TestWorld world = MakeWorld(500, 1, 1, 20);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto other = MakeProfileDataset(DatasetProfile::kMnist, 500, 1, 21);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(index->Query(other->data, world.queries.row(0), 1)
                  .status()
                  .IsInvalidArgument());  // dim mismatch
}

TEST(C2lshIndexTest, SmallerDatasetThanIndexRejected) {
  TestWorld world = MakeWorld(500, 1, 1, 22);
  auto index = C2lshIndex::Build(world.data, SmallOptions());
  ASSERT_TRUE(index.ok());
  auto tiny = MakeProfileDataset(DatasetProfile::kColor, 100, 1, 23);
  ASSERT_TRUE(tiny.ok());
  EXPECT_TRUE(index->Query(tiny->data, world.queries.row(0), 1)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
