#include "src/core/theory.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(BinomialTest, LogCoeffKnownValues) {
  EXPECT_NEAR(std::exp(LogBinomialCoeff(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoeff(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoeff(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(LogBinomialCoeff(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(LogBinomialCoeff(5, -1), -std::numeric_limits<double>::infinity());
}

TEST(BinomialTest, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialTailGE(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailGE(10, -3, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailGE(10, 11, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailGE(10, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailGE(10, 5, 1.0), 1.0);
}

TEST(BinomialTest, HandComputedFairCoin) {
  // P[Bin(3, 0.5) >= 2] = (3 + 1)/8 = 0.5.
  EXPECT_NEAR(BinomialTailGE(3, 2, 0.5), 0.5, 1e-12);
  // P[Bin(2, 0.5) >= 1] = 3/4.
  EXPECT_NEAR(BinomialTailGE(2, 1, 0.5), 0.75, 1e-12);
  // P[Bin(4, 0.25) >= 4] = 0.25^4.
  EXPECT_NEAR(BinomialTailGE(4, 4, 0.25), std::pow(0.25, 4), 1e-12);
}

TEST(BinomialTest, MonotoneInP) {
  double prev = 0.0;
  for (double p = 0.1; p < 1.0; p += 0.1) {
    const double tail = BinomialTailGE(50, 20, p);
    EXPECT_GE(tail, prev);
    prev = tail;
  }
}

TEST(BinomialTest, MonotoneInThreshold) {
  double prev = 1.0;
  for (int l = 0; l <= 50; l += 5) {
    const double tail = BinomialTailGE(50, l, 0.4);
    EXPECT_LE(tail, prev + 1e-15);
    prev = tail;
  }
}

TEST(BinomialTest, ComplementsSumToOne) {
  // P[X >= l] + P[X <= l-1] = 1; the lower tail equals the upper tail of the
  // complement variable: P[X <= l-1] = P[Bin(m, 1-p) >= m-l+1].
  const int m = 30;
  const int l = 12;
  const double p = 0.37;
  const double upper = BinomialTailGE(m, l, p);
  const double lower = BinomialTailGE(m, m - l + 1, 1.0 - p);
  EXPECT_NEAR(upper + lower, 1.0, 1e-10);
}

class TheoryWithParams : public ::testing::Test {
 protected:
  void SetUp() override {
    C2lshOptions o;
    o.w = 1.0;
    o.c = 2.0;
    o.delta = 0.1;
    auto d = ComputeDerivedParams(o, 20000);
    ASSERT_TRUE(d.ok());
    derived_ = d.value();
  }
  C2lshDerived derived_;
};

TEST_F(TheoryWithParams, P1GuaranteeViaExactBinomial) {
  // An object at exactly distance R collides per table w.p. p1; its chance
  // of being frequent must be at least 1 - delta (the Hoeffding bound is
  // looser than the exact binomial, so this must hold a fortiori).
  const double p_frequent = ProbFrequent(derived_, 1.0, 1.0);
  EXPECT_GE(p_frequent, 1.0 - 0.1);
  // Closer objects do even better.
  EXPECT_GE(ProbFrequent(derived_, 0.5, 1.0), p_frequent);
}

TEST_F(TheoryWithParams, P2GuaranteeViaExactBinomial) {
  // Expected false positives among n far objects stays within beta*n/2.
  const double n = 20000;
  const double expected_fp = ExpectedFalsePositives(derived_, n);
  EXPECT_LE(expected_fp, derived_.beta * n / 2.0 + 1e-9);
}

TEST_F(TheoryWithParams, HoeffdingBoundDominatesExact) {
  // exp(-2m(p1-alpha)^2) >= exact miss probability of a distance-R object.
  const double exact_miss = 1.0 - ProbFrequent(derived_, 1.0, 1.0);
  EXPECT_LE(exact_miss, P1FailureBound(derived_) + 1e-12);
  EXPECT_LE(P1FailureBound(derived_), 0.1 + 1e-9);  // <= delta by construction
}

TEST_F(TheoryWithParams, FrequentProbMonotoneInDistance) {
  double prev = 1.0;
  for (double s : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double p = ProbFrequent(derived_, s, 1.0);
    EXPECT_LE(p, prev + 1e-12) << "s=" << s;
    prev = p;
  }
}

TEST_F(TheoryWithParams, RadiusScaleFree) {
  // ProbFrequent(s, R) == ProbFrequent(s*g, R*g): the guarantee is the same
  // at every round.
  for (double g : {2.0, 4.0, 16.0}) {
    EXPECT_NEAR(ProbFrequent(derived_, 1.0, 1.0), ProbFrequent(derived_, g, g), 1e-9);
    EXPECT_NEAR(ProbFrequent(derived_, 2.0, 1.0), ProbFrequent(derived_, 2.0 * g, g), 1e-9);
  }
}

}  // namespace
}  // namespace c2lsh
