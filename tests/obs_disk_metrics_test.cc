// Disk-path observability: the degraded-query skip paths, the BufferPool
// and PageFile traffic, and the RetryTransient attempts must all surface in
// the process-wide metrics registry, and the per-query trace must carry the
// measured pool counts.
//
// The registry is global, so every assertion is delta-based: read the
// counters, run the workload, read again.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/storage/page_file.h"
#include "src/util/fault_env.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

uint64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::MetricsRegistry::Global().FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

class ObsDiskMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_obs_disk_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ObsDiskMetricsTest, QueryAndPoolCountersTrackMeasuredStats) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 2, 11);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 13;
  o.page_bytes = 1024;
  const std::string path = Path("metrics_idx.pf");
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64);
    ASSERT_TRUE(built.ok());
  }
  auto disk = DiskC2lshIndex::Open(path, 8);  // tiny pool: real misses
  ASSERT_TRUE(disk.ok());

  const uint64_t queries_before = CounterValue("disk_c2lsh_queries_total");
  const uint64_t rounds_before = CounterValue("disk_c2lsh_rounds_total");
  const uint64_t hits_before = CounterValue("buffer_pool_hits_total");
  const uint64_t misses_before = CounterValue("buffer_pool_misses_total");
  const uint64_t reads_before = CounterValue("page_file_reads_total");
  disk->ResetPoolStats();

  DiskQueryStats stats;
  obs::QueryTrace trace;
  auto r = disk->Query(pd->queries.row(0), 5, &stats, &trace);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(CounterValue("disk_c2lsh_queries_total"), queries_before + 1);
  EXPECT_EQ(CounterValue("disk_c2lsh_rounds_total"), rounds_before + stats.base.rounds);
  // The registry's pool counters moved in lockstep with the pool's own
  // measured statistics (this is the only pool active in this window).
  const BufferPoolStats pool = disk->pool_stats();
  EXPECT_EQ(CounterValue("buffer_pool_hits_total"), hits_before + pool.hits);
  EXPECT_EQ(CounterValue("buffer_pool_misses_total"), misses_before + pool.misses);
  // Every pool miss is a page read, and reads only happen on misses here.
  EXPECT_EQ(CounterValue("page_file_reads_total"), reads_before + pool.misses);

  // The trace carries the same measured I/O and a genuine termination.
  ASSERT_FALSE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds.size(), stats.base.rounds);
  EXPECT_EQ(trace.termination, stats.base.termination);
  EXPECT_NE(trace.termination, Termination::kNone);
  EXPECT_EQ(trace.pool_hits, stats.pool_hits);
  EXPECT_EQ(trace.pool_misses, stats.pool_misses);
  EXPECT_FALSE(trace.degraded);
  EXPECT_GT(trace.total_millis, 0.0);
  uint64_t span_increments = 0;
  for (const obs::QueryRoundSpan& span : trace.rounds) {
    span_increments += span.collision_increments;
  }
  EXPECT_EQ(span_increments, stats.base.collision_increments);
}

TEST_F(ObsDiskMetricsTest, DegradedQueriesSurfaceInMetrics) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 91);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 97;
  o.page_bytes = 1024;
  const std::string path = Path("degraded_idx.pf");
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64);
    ASSERT_TRUE(built.ok());
  }

  // Corrupt each page in turn through the fault env until a query survives
  // in degraded mode (same sweep as fault_injection_test, but here the
  // subject is the metrics the degradation leaves behind).
  FaultInjectionEnv env(Env::Default());
  constexpr uint64_t kHeaderRegion = 512;
  const uint64_t physical_page = o.page_bytes + 8;  // payload + crc footer
  const uint64_t file_bytes = std::filesystem::file_size(path);
  const uint64_t num_pages = (file_bytes - kHeaderRegion) / physical_page;

  const uint64_t degraded_before = CounterValue("disk_c2lsh_degraded_queries_total");
  const uint64_t skipped_before = CounterValue("disk_c2lsh_tables_skipped_total") +
                                  CounterValue("disk_c2lsh_candidates_skipped_total");
  const uint64_t crc_before = CounterValue("page_file_crc_failures_total");

  bool saw_degraded = false;
  for (uint64_t page = 1; page <= num_pages && !saw_degraded; ++page) {
    SCOPED_TRACE("corrupting page " + std::to_string(page));
    env.SetReadCorruption(kHeaderRegion + (page - 1) * physical_page +
                              o.page_bytes / 2,
                          0xFF);
    auto disk = DiskC2lshIndex::Open(path, 8, &env);
    if (!disk.ok()) {
      env.ClearReadCorruption();
      continue;
    }
    DiskQueryStats stats;
    obs::QueryTrace trace;
    auto r = disk->Query(pd->data, pd->queries.row(0), 5, &stats, &trace);
    env.ClearReadCorruption();
    if (r.ok() && stats.degraded) {
      saw_degraded = true;
      EXPECT_TRUE(trace.degraded);
    }
  }
  ASSERT_TRUE(saw_degraded) << "no page corruption produced a degraded query";

  EXPECT_GE(CounterValue("disk_c2lsh_degraded_queries_total"), degraded_before + 1);
  EXPECT_GE(CounterValue("disk_c2lsh_tables_skipped_total") +
                CounterValue("disk_c2lsh_candidates_skipped_total"),
            skipped_before + 1);
  // The skip was triggered by a checksum rejection, which PageFile counted.
  EXPECT_GE(CounterValue("page_file_crc_failures_total"), crc_before + 1);
}

TEST_F(ObsDiskMetricsTest, RetryAttemptsSurfaceInMetrics) {
  FaultInjectionEnv env(Env::Default());
  auto f = PageFile::Create(Path("retry.pf"), 256, &env);
  ASSERT_TRUE(f.ok());
  RetryPolicy fast;
  fast.backoff_initial_us = 0;
  f->SetRetryPolicy(fast);
  auto id = f->AllocatePage();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(256, 0x2F);

  const uint64_t ops_before = CounterValue("retry_operations_total");
  const uint64_t retries_before = CounterValue("retry_retries_total");
  const uint64_t exhausted_before = CounterValue("retry_exhausted_total");

  env.SetTransientWriteFaults(2);  // < max_attempts: recovers after 2 retries
  ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
  EXPECT_EQ(CounterValue("retry_operations_total"), ops_before + 1);
  EXPECT_EQ(CounterValue("retry_retries_total"), retries_before + 2);
  EXPECT_EQ(CounterValue("retry_exhausted_total"), exhausted_before);

  // Persistent unavailability: the operation exhausts and says so.
  RetryPolicy tight;
  tight.max_attempts = 3;
  tight.backoff_initial_us = 0;
  f->SetRetryPolicy(tight);
  env.SetTransientWriteFaults(1000);
  EXPECT_TRUE(f->WritePage(id.value(), buf.data()).IsIOError());
  EXPECT_EQ(CounterValue("retry_exhausted_total"), exhausted_before + 1);
  env.SetTransientWriteFaults(0);
}

}  // namespace
}  // namespace c2lsh
