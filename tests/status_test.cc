#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/result.h"

namespace c2lsh {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, UnavailableIsDistinctFromIOError) {
  // The retry layer (util/retry.h) depends on this distinction: only
  // Unavailable is transient and retryable.
  Status s = Status::Unavailable("EINTR-ish");
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(s.ToString(), "Unavailable: EINTR-ish");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::NotFound("missing");
  Status b = a;  // copy
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
  EXPECT_TRUE(a.IsNotFound());  // source unchanged
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsNotFound());
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::IOError("disk");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsIOError());
  EXPECT_TRUE(a.ok());  // NOLINT(bugprone-use-after-move): documented contract
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  C2LSH_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Status Identity(const Status& s) { return s; }

// Regression for the macro-hygiene bug: the original C2LSH_RETURN_IF_ERROR
// expanded to `Status _c2lsh_status = (expr);`, so an `expr` that mentioned a
// caller-scope variable of that exact name read the macro's own
// just-declared (uninitialized) temporary instead — shadowing, caught only
// at runtime if at all. The macro now pastes __LINE__ into the temporary's
// name, so caller identifiers can never collide with it.
Status CallerOwnsTheOldTemporaryName() {
  Status _c2lsh_status = Status::NotFound("caller's variable");
  C2LSH_RETURN_IF_ERROR(Identity(_c2lsh_status));  // must see the caller's value
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroDoesNotShadowCallerVariables) {
  EXPECT_TRUE(CallerOwnsTheOldTemporaryName().IsNotFound());
}

Status TwoChecksShareAFunction(int x) {
  C2LSH_RETURN_IF_ERROR(FailIfNegative(x));
  C2LSH_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroComposesWithinOneFunction) {
  EXPECT_TRUE(TwoChecksShareAFunction(20).ok());
  EXPECT_TRUE(TwoChecksShareAFunction(5).IsInvalidArgument());   // second check
  EXPECT_TRUE(TwoChecksShareAFunction(-1).IsInvalidArgument());  // first check
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, OkStatusMisuseBecomesInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  C2LSH_ASSIGN_OR_RETURN(int h, Half(x));
  C2LSH_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2 = 3, odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace c2lsh
