// AdmissionController::Drain and Ticket move-semantics tests, plus the
// TenantAdmission layer (per-tenant partitions + shared overflow pool):
// drain racing concurrent Admit calls, queued waiters shed fast everywhere
// before any slow tenant is waited on, and the Ticket edge cases that make
// handler code safe to refactor — cross-controller move-assignment release
// ordering, self-move, and double-Release idempotence.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/admission.h"
#include "src/util/mutex.h"
#include "src/serve/tenant_admission.h"
#include "src/util/query_context.h"
#include "src/util/timer.h"

namespace c2lsh {
namespace {

using serve::TenantAdmission;
using serve::TenantAdmissionOptions;
using serve::TenantStats;

AdmissionOptions Tiny(size_t in_flight, size_t queue,
                      double timeout_ms = 10'000.0) {
  AdmissionOptions o;
  o.max_in_flight = in_flight;
  o.max_queue = queue;
  o.queue_timeout_millis = timeout_ms;
  return o;
}

// --- Ticket move semantics (the slot must be released exactly once, on the
// controller that granted it, no matter how the ticket is shuffled) --------

TEST(TicketMoveTest, MoveAssignReleasesTargetsOldSlotFirst) {
  AdmissionController a(Tiny(1, 0));
  AdmissionController b(Tiny(1, 0));

  auto ta = a.Admit();
  auto tb = b.Admit();
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ(a.stats().in_flight, 1u);
  EXPECT_EQ(b.stats().in_flight, 1u);

  // Moving A's ticket over B's must release B's slot (the overwritten one)
  // and leave A's slot held by the moved-to ticket.
  tb.value() = std::move(ta).value();
  EXPECT_EQ(b.stats().in_flight, 0u);
  EXPECT_EQ(a.stats().in_flight, 1u);
  EXPECT_TRUE(tb->valid());

  // B's slot is genuinely free again.
  auto b2 = b.Admit();
  EXPECT_TRUE(b2.ok());

  // Releasing the moved-to ticket frees A, not B.
  tb->Release();
  EXPECT_EQ(a.stats().in_flight, 0u);
  EXPECT_EQ(b.stats().in_flight, 1u);
}

TEST(TicketMoveTest, SelfMoveAssignKeepsTheSlot) {
  AdmissionController a(Tiny(1, 0));
  auto t = a.Admit();
  ASSERT_TRUE(t.ok());
  AdmissionController::Ticket& ticket = t.value();
  AdmissionController::Ticket& alias = ticket;  // defeat trivial self-move
                                                // diagnostics; same object
  ticket = std::move(alias);
  EXPECT_TRUE(ticket.valid());
  EXPECT_EQ(a.stats().in_flight, 1u);
  ticket.Release();
  EXPECT_EQ(a.stats().in_flight, 0u);
}

TEST(TicketMoveTest, DoubleReleaseIsIdempotentIncludingDestructor) {
  AdmissionController a(Tiny(2, 0));
  {
    auto t = a.Admit();
    ASSERT_TRUE(t.ok());
    t->Release();
    EXPECT_FALSE(t->valid());
    EXPECT_EQ(a.stats().in_flight, 0u);
    t->Release();  // explicit double release
    EXPECT_EQ(a.stats().in_flight, 0u);
  }  // destructor after manual release must not release again
  EXPECT_EQ(a.stats().in_flight, 0u);

  // A moved-from ticket's destructor must be a no-op too.
  auto t1 = a.Admit();
  ASSERT_TRUE(t1.ok());
  {
    AdmissionController::Ticket moved = std::move(t1).value();
    EXPECT_TRUE(moved.valid());
  }
  EXPECT_EQ(a.stats().in_flight, 0u);
}

// --- Drain ----------------------------------------------------------------

TEST(AdmissionDrainTest, DrainShedsQueuedWaitersFast) {
  AdmissionController ac(Tiny(1, 4, /*timeout_ms=*/60'000.0));
  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());

  constexpr int kWaiters = 3;
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      auto r = ac.Admit();  // parks: slot held, timeout is a minute
      if (!r.ok() && r.status().IsUnavailable()) shed.fetch_add(1);
    });
  }
  while (ac.stats().queued < kWaiters) {
    std::this_thread::yield();
  }

  // The in-flight ticket is still out, so this drain times out — but the
  // queued waiters must be woken and shed long before their own timeouts.
  Timer timer;
  Status s = ac.Drain(Deadline::AfterMillis(100));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  for (auto& t : threads) t.join();
  EXPECT_EQ(shed.load(), kWaiters);
  EXPECT_LT(timer.ElapsedMillis(), 10'000.0);
  EXPECT_EQ(ac.stats().queued, 0u);
  EXPECT_GE(ac.stats().shed_draining, static_cast<uint64_t>(kWaiters));

  // New arrivals shed immediately while draining.
  EXPECT_TRUE(ac.Admit().status().IsUnavailable());

  // Once the straggler releases, a second drain succeeds...
  held->Release();
  EXPECT_TRUE(ac.Drain(Deadline::AfterMillis(1000)).ok());
  EXPECT_TRUE(ac.draining());

  // ...and Resume restores service.
  ac.Resume();
  EXPECT_FALSE(ac.draining());
  EXPECT_TRUE(ac.Admit().ok());
}

TEST(AdmissionDrainTest, DrainWaitsForInFlightUntilRelease) {
  AdmissionController ac(Tiny(1, 0));
  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    Status s = ac.Drain(Deadline::AfterMillis(30'000));
    EXPECT_TRUE(s.ok()) << s.ToString();
    drained.store(true);
  });
  while (!ac.draining()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(drained.load());  // ticket still held
  held->Release();
  drainer.join();
  EXPECT_TRUE(drained.load());
  EXPECT_EQ(ac.stats().in_flight, 0u);
}

TEST(AdmissionDrainTest, DrainRacingConcurrentAdmitsNeverLosesASlot) {
  // Hammer Admit/Release from several threads while the main thread flips
  // drain/resume. Whatever interleaving happens, the final state must be
  // zero in-flight and zero queued — no slot leaks through the race between
  // an Admit that passed the draining check and a Drain that flipped it.
  AdmissionController ac(Tiny(4, 8, /*timeout_ms=*/5.0));
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = ac.Admit();
        if (r.ok()) r->Release();
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    (void)ac.Drain(Deadline::AfterMillis(20));
    ac.Resume();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  // Final drain: everything must empty out.
  EXPECT_TRUE(ac.Drain(Deadline::AfterMillis(5000)).ok());
  EXPECT_EQ(ac.stats().in_flight, 0u);
  EXPECT_EQ(ac.stats().queued, 0u);
}

TEST(AdmissionDrainTest, QueuedWaiterWithContextShedsOnDrainNotDeadline) {
  AdmissionController ac(Tiny(1, 2, /*timeout_ms=*/0.0));  // no queue timeout
  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());

  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(60'000);  // far away
  std::atomic<bool> waiter_shed{false};
  std::thread waiter([&] {
    auto r = ac.Admit(&ctx);
    if (!r.ok()) waiter_shed.store(true);
  });
  while (ac.stats().queued < 1) {
    std::this_thread::yield();
  }
  (void)ac.Drain(Deadline::AfterMillis(50));  // times out (held ticket)
  waiter.join();
  EXPECT_TRUE(waiter_shed.load());  // drain shed it, not its own deadline
  held->Release();
}

// --- TenantAdmission ------------------------------------------------------

TenantAdmissionOptions TenantTiny() {
  TenantAdmissionOptions o;
  o.per_tenant = Tiny(1, 0);
  o.overflow = Tiny(1, 0);
  return o;
}

TEST(TenantAdmissionTest, PartitionThenOverflowThenShed) {
  TenantAdmission ta(TenantTiny());

  auto t1 = ta.Admit("alice");  // partition slot
  ASSERT_TRUE(t1.ok());
  auto t2 = ta.Admit("alice");  // borrows the overflow pool
  ASSERT_TRUE(t2.ok());
  auto t3 = ta.Admit("alice");  // both saturated: final shed
  EXPECT_TRUE(t3.status().IsUnavailable()) << t3.status().ToString();

  TenantStats stats = ta.StatsFor("alice");
  EXPECT_EQ(stats.partition.admitted, 1u);
  EXPECT_EQ(stats.overflow_admits, 1u);
  EXPECT_EQ(stats.shed_final, 1u);
  EXPECT_EQ(ta.total_in_flight(), 2u);

  // A quota-exhausted tenant must not block an idle one: bob's own
  // partition still has its slot even with the overflow pool pinned.
  auto bob = ta.Admit("bob");
  EXPECT_TRUE(bob.ok());
  EXPECT_EQ(ta.tenant_count(), 2u);

  t1->Release();
  t2->Release();
  bob->Release();
  EXPECT_EQ(ta.total_in_flight(), 0u);
}

TEST(TenantAdmissionTest, TenantsBeyondCapShareOverflowOnly) {
  TenantAdmissionOptions o = TenantTiny();
  o.max_tenants = 1;
  TenantAdmission ta(o);

  auto a = ta.Admit("a");  // takes the only partition
  ASSERT_TRUE(a.ok());
  auto b = ta.Admit("b");  // over the cap: overflow only
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ta.tenant_count(), 1u);
  EXPECT_EQ(ta.overflow_stats().in_flight, 1u);
  auto c = ta.Admit("c");  // overflow pinned, no partition: shed
  EXPECT_TRUE(c.status().IsUnavailable());
  // Unseen/over-cap tenants report zeros rather than growing the map.
  EXPECT_EQ(ta.StatsFor("c").partition.admitted, 0u);
}

TEST(TenantAdmissionTest, DrainFlipsEveryPartitionBeforeWaitingOnAny) {
  // Tenant "slow" holds an in-flight ticket; tenant "fast" has a waiter
  // parked in its queue with a one-minute timeout. A sequential
  // drain-with-deadline per partition would only reach "fast" after burning
  // the whole deadline on "slow" — the two-pass drain must shed fast's
  // waiter almost immediately.
  TenantAdmissionOptions o;
  o.per_tenant = Tiny(1, 2, /*timeout_ms=*/60'000.0);
  o.overflow = Tiny(1, 0);  // overflow pinned too, so waiters actually park
  TenantAdmission ta(o);

  auto slow = ta.Admit("slow");
  ASSERT_TRUE(slow.ok());
  auto overflow_pin = ta.Admit("slow");  // occupies the overflow pool
  ASSERT_TRUE(overflow_pin.ok());
  auto fast_holder = ta.Admit("fast");  // fast's partition slot
  ASSERT_TRUE(fast_holder.ok());

  Timer shed_timer;
  std::atomic<double> shed_after_ms{-1.0};
  std::thread waiter([&] {
    auto r = ta.Admit("fast");  // parks in fast's queue
    if (!r.ok()) shed_after_ms.store(shed_timer.ElapsedMillis());
  });
  while (ta.StatsFor("fast").partition.queued < 1) {
    std::this_thread::yield();
  }

  Status s = ta.Drain(Deadline::AfterMillis(400));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();  // three tickets held
  waiter.join();
  EXPECT_GE(shed_after_ms.load(), 0.0);
  EXPECT_LT(shed_after_ms.load(), 60'000.0 / 2);  // not its queue timeout

  slow->Release();
  overflow_pin->Release();
  fast_holder->Release();
  EXPECT_EQ(ta.total_in_flight(), 0u);
  EXPECT_TRUE(ta.Drain(Deadline::AfterMillis(1000)).ok());
  ta.Resume();
  EXPECT_TRUE(ta.Admit("slow").ok());
}

}  // namespace
}  // namespace c2lsh
