#include "src/storage/bucket_table.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace c2lsh {
namespace {

BucketTable MakeTable(std::vector<std::pair<BucketId, ObjectId>> entries) {
  return BucketTable::Build(std::move(entries));
}

std::vector<ObjectId> Collect(const BucketTable& t, BucketId lo, BucketId hi) {
  std::vector<ObjectId> out;
  t.ForEachInRange(lo, hi, [&](ObjectId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BucketTableTest, EmptyTable) {
  BucketTable t = MakeTable({});
  EXPECT_EQ(t.num_buckets(), 0u);
  EXPECT_EQ(t.num_entries(), 0u);
  EXPECT_TRUE(Collect(t, -10, 10).empty());
}

TEST(BucketTableTest, SingleBucketLookup) {
  BucketTable t = MakeTable({{5, 1}, {5, 2}, {7, 3}});
  EXPECT_EQ(t.num_buckets(), 2u);
  EXPECT_EQ(t.num_entries(), 3u);
  EXPECT_EQ(Collect(t, 5, 5), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(Collect(t, 7, 7), (std::vector<ObjectId>{3}));
  EXPECT_TRUE(Collect(t, 6, 6).empty());
}

TEST(BucketTableTest, RangeSpansBuckets) {
  BucketTable t = MakeTable({{-3, 0}, {-1, 1}, {0, 2}, {2, 3}, {9, 4}});
  EXPECT_EQ(Collect(t, -3, 2), (std::vector<ObjectId>{0, 1, 2, 3}));
  EXPECT_EQ(Collect(t, -100, 100), (std::vector<ObjectId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(Collect(t, 3, 8), (std::vector<ObjectId>{}));
  EXPECT_EQ(Collect(t, 0, 0), (std::vector<ObjectId>{2}));
}

TEST(BucketTableTest, NegativeBucketIds) {
  BucketTable t = MakeTable({{-5, 10}, {-4, 11}, {-2, 12}});
  EXPECT_EQ(Collect(t, -5, -4), (std::vector<ObjectId>{10, 11}));
  EXPECT_EQ(Collect(t, -3, -1), (std::vector<ObjectId>{12}));
}

TEST(BucketTableTest, InvertedRangeIsEmpty) {
  BucketTable t = MakeTable({{1, 1}});
  EXPECT_TRUE(Collect(t, 5, 2).empty());
  EXPECT_EQ(t.EntriesInRange(5, 2), 0u);
}

TEST(BucketTableTest, EntriesInRangeMatchesForEach) {
  Rng rng(42);
  std::vector<std::pair<BucketId, ObjectId>> entries;
  for (ObjectId i = 0; i < 500; ++i) {
    entries.emplace_back(rng.UniformInt(-50, 50), i);
  }
  BucketTable t = MakeTable(entries);
  for (int trial = 0; trial < 100; ++trial) {
    BucketId a = rng.UniformInt(-60, 60);
    BucketId b = rng.UniformInt(-60, 60);
    if (a > b) std::swap(a, b);
    EXPECT_EQ(t.EntriesInRange(a, b), Collect(t, a, b).size());
  }
}

TEST(BucketTableTest, ForEachMatchesBruteForce) {
  Rng rng(7);
  std::vector<std::pair<BucketId, ObjectId>> entries;
  for (ObjectId i = 0; i < 300; ++i) {
    entries.emplace_back(rng.UniformInt(-20, 20), i);
  }
  BucketTable t = MakeTable(entries);
  for (int trial = 0; trial < 50; ++trial) {
    BucketId a = rng.UniformInt(-25, 25);
    BucketId b = a + rng.UniformInt(0, 15);
    std::vector<ObjectId> expected;
    for (const auto& [bucket, id] : entries) {
      if (bucket >= a && bucket <= b) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Collect(t, a, b), expected) << "range [" << a << "," << b << "]";
  }
}

TEST(BucketTableTest, OverlayInsertVisible) {
  BucketTable t = MakeTable({{1, 0}});
  t.Insert(1, 5);
  t.Insert(3, 6);
  EXPECT_EQ(Collect(t, 1, 3), (std::vector<ObjectId>{0, 5, 6}));
  EXPECT_EQ(t.num_entries(), 3u);
  EXPECT_EQ(t.EntriesInRange(1, 3), 3u);
}

TEST(BucketTableTest, DeleteHidesEverywhere) {
  BucketTable t = MakeTable({{1, 0}, {2, 1}});
  t.Insert(3, 2);
  t.Delete(0);
  t.Delete(2);
  EXPECT_EQ(Collect(t, 0, 5), (std::vector<ObjectId>{1}));
}

TEST(BucketTableTest, DeleteIsIdempotent) {
  BucketTable t = MakeTable({{1, 0}, {1, 1}});
  t.Delete(0);
  t.Delete(0);
  EXPECT_EQ(Collect(t, 1, 1), (std::vector<ObjectId>{1}));
}

TEST(BucketTableTest, CompactPreservesLiveEntries) {
  BucketTable t = MakeTable({{1, 0}, {2, 1}, {2, 2}});
  t.Insert(0, 3);
  t.Insert(5, 4);
  t.Delete(1);
  const auto before = Collect(t, -10, 10);
  t.Compact();
  EXPECT_EQ(Collect(t, -10, 10), before);
  EXPECT_EQ(t.num_entries(), 4u);  // 3 original + 2 inserted - 1 deleted
  // After compaction the deleted id is physically gone.
  EXPECT_EQ(Collect(t, 2, 2), (std::vector<ObjectId>{2}));
}

TEST(BucketTableTest, PagesForRangeScalesWithEntries) {
  std::vector<std::pair<BucketId, ObjectId>> entries;
  for (ObjectId i = 0; i < 5000; ++i) entries.emplace_back(0, i);
  for (ObjectId i = 0; i < 3; ++i) entries.emplace_back(10, 5000 + i);
  BucketTable t = MakeTable(entries);
  PageModel model(4096);  // 1024 ObjectIds per page
  const size_t big = t.PagesForRange(0, 0, model);
  const size_t small = t.PagesForRange(10, 10, model);
  EXPECT_EQ(big, 1 + (5000 + 1023) / 1024);
  EXPECT_EQ(small, 1 + 1);
  // Empty range: just the directory probe.
  EXPECT_EQ(t.PagesForRange(100, 200, model), 1u);
}

TEST(BucketTableTest, MemoryBytesGrowsWithEntries) {
  std::vector<std::pair<BucketId, ObjectId>> small_e, large_e;
  for (ObjectId i = 0; i < 10; ++i) small_e.emplace_back(i, i);
  for (ObjectId i = 0; i < 1000; ++i) large_e.emplace_back(i, i);
  BucketTable small = MakeTable(small_e);
  BucketTable large = MakeTable(large_e);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(BucketTableTest, DuplicateEntriesPreserved) {
  BucketTable t = MakeTable({{1, 7}, {1, 7}});
  EXPECT_EQ(t.num_entries(), 2u);
  size_t count = 0;
  t.ForEachInRange(1, 1, [&](ObjectId) { ++count; });
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace c2lsh
