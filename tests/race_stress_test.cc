// Concurrent stress suite for the TSan race lane (`ctest -L race`, built
// with -DC2LSH_SANITIZE=thread). Three contracts are hammered:
//
//   1. C2lshIndex::Build's parallel table construction is disjoint by
//      construction — the multi-threaded build must equal the serial one
//      bit-for-bit in query behavior, with zero TSan reports.
//   2. Read-only queries through per-thread Searchers share one index with
//      no mutable shared state.
//   3. The mutex-guarded BufferPool survives a multi-threaded
//      fetch/pin/writeback hammer with every byte intact.
//
// Every test also runs (fast) in the default lane: the assertions are
// deterministic; TSan adds the race detection on top.

#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page_file.h"
#include "src/util/mutex.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

C2lshOptions SmallOptions() {
  C2lshOptions o;
  o.w = 1.0;
  o.c = 2.0;
  o.delta = 0.1;
  o.seed = 7;
  return o;
}

void ExpectSameNeighbors(const NeighborList& a, const NeighborList& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].dist, b[i].dist);
  }
}

TEST(RaceStressTest, ParallelBuildMatchesSerialReference) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1200, 8, 11);
  ASSERT_TRUE(pd.ok());

  auto serial = C2lshIndex::Build(pd->data, SmallOptions(), /*num_threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = C2lshIndex::Build(pd->data, SmallOptions(), /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->num_tables(), parallel->num_tables());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto rs = serial->Query(pd->data, pd->queries.row(q), 10);
    auto rp = parallel->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rp.ok());
    ExpectSameNeighbors(*rs, *rp);
  }
}

TEST(RaceStressTest, ConcurrentReadOnlyQueriesAgreeWithSerial) {
  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 3;  // each thread re-runs all queries
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 10, 23);
  ASSERT_TRUE(pd.ok());
  auto index = C2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());

  // Serial reference answers first.
  const size_t nq = pd->queries.num_rows();
  std::vector<NeighborList> expected(nq);
  for (size_t q = 0; q < nq; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    expected[q] = std::move(r).value();
  }

  // N threads share the index read-only; each owns a Searcher (private
  // collision-count scratch) and writes only its own results slot.
  std::vector<std::vector<NeighborList>> results(
      kThreads, std::vector<NeighborList>(nq * kRounds));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      C2lshIndex::Searcher searcher(&index.value());
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < nq; ++q) {
          auto r = searcher.Query(pd->data, pd->queries.row(q), 10);
          ASSERT_TRUE(r.ok());
          results[t][round * nq + q] = std::move(r).value();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t round = 0; round < kRounds; ++round) {
      for (size_t q = 0; q < nq; ++q) {
        ExpectSameNeighbors(results[t][round * nq + q], expected[q]);
      }
    }
  }
}

TEST(RaceStressTest, BatchQueryMatchesSerial) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 12, 31);
  ASSERT_TRUE(pd.ok());
  auto index = C2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());

  auto batch = index->BatchQuery(pd->data, pd->queries, 8, /*num_threads=*/4);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), pd->queries.num_rows());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 8);
    ASSERT_TRUE(r.ok());
    ExpectSameNeighbors((*batch)[q], *r);
  }
}

class BufferPoolHammerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_race_bp_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto f = PageFile::Create((dir_ / "hammer.pf").string(), 256);
    ASSERT_TRUE(f.ok());
    file_ = std::make_unique<PageFile>(std::move(f).value());
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<PageFile> file_;
};

// Deterministic page content so any thread can verify any page.
void FillPattern(uint8_t* data, size_t n, PageId id) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>((id * 131 + i * 7) & 0xFF);
  }
}

void ExpectPattern(const uint8_t* data, size_t n, PageId id) {
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], static_cast<uint8_t>((id * 131 + i * 7) & 0xFF))
        << "page " << id << " byte " << i;
  }
}

// The hammer: T threads share a pool far smaller than the working set, so
// fetches constantly evict and write back dirty frames created by *other*
// threads. Per the pool's contract, page *bytes* are only written by their
// owning thread (a pin plus external ownership); all metadata — frame table,
// LRU, pins, dirty bits, stats, the PageFile underneath — is pounded from
// every thread at once.
TEST_F(BufferPoolHammerTest, ConcurrentFetchPinWriteback) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPagesPerThread = 24;
  constexpr size_t kRounds = 12;

  auto pool = BufferPool::Create(file_.get(), /*capacity_pages=*/6);
  ASSERT_TRUE(pool.ok());
  const size_t page_bytes = pool->page_bytes();

  std::vector<std::vector<PageId>> owned(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Create this thread's pages (allocation contends on pool + file).
      for (size_t i = 0; i < kPagesPerThread; ++i) {
        PageId id = 0;
        auto page = pool->NewPage(&id);
        ASSERT_TRUE(page.ok()) << page.status().ToString();
        FillPattern(page->mutable_data(), page_bytes, id);
        owned[t].push_back(id);
      }
      // Re-fetch own pages in shifting order: hits, misses, evictions and
      // writebacks of everyone's frames interleave across threads.
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < owned[t].size(); ++i) {
          const PageId id = owned[t][(i + round) % owned[t].size()];
          auto page = pool->Fetch(id);
          ASSERT_TRUE(page.ok()) << page.status().ToString();
          ExpectPattern(page->data(), page_bytes, id);
          if ((round + i) % 3 == 0) {
            // Rewrite the same pattern: keeps the page dirty so eviction
            // writeback stays hot without changing the expected bytes.
            FillPattern(page->mutable_data(), page_bytes, id);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Quiesce, then verify every byte of every page from this thread.
  ASSERT_TRUE(pool->FlushAll().ok());
  for (size_t t = 0; t < kThreads; ++t) {
    for (const PageId id : owned[t]) {
      auto page = pool->Fetch(id);
      ASSERT_TRUE(page.ok());
      ExpectPattern(page->data(), page_bytes, id);
    }
  }
  const BufferPoolStats stats = pool->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.writebacks, 0u);
  EXPECT_EQ(file_->num_pages(), kThreads * kPagesPerThread);
}

// Many threads fetching one hot page read-only: pin counts and LRU state
// contend on the hottest possible path.
TEST_F(BufferPoolHammerTest, SharedHotPageReadOnly) {
  auto pool = BufferPool::Create(file_.get(), 4);
  ASSERT_TRUE(pool.ok());
  PageId hot = 0;
  {
    auto page = pool->NewPage(&hot);
    ASSERT_TRUE(page.ok());
    FillPattern(page->mutable_data(), pool->page_bytes(), hot);
  }
  ASSERT_TRUE(pool->FlushAll().ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kFetches = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (size_t i = 0; i < kFetches; ++i) {
        auto page = pool->Fetch(hot);
        ASSERT_TRUE(page.ok());
        ASSERT_EQ(page->data()[0], static_cast<uint8_t>((hot * 131) & 0xFF));
      }
    });
  }
  for (auto& th : threads) th.join();
  const BufferPoolStats stats = pool->stats();
  EXPECT_GE(stats.hits, kThreads * kFetches - 1);
}

}  // namespace
}  // namespace c2lsh
