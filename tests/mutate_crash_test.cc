// Crash matrix for online mutation of DiskC2lshIndex.
//
// The invariant (docs/ARCHITECTURE.md, "Mutability & recovery invariants"):
// once Insert/Delete returns OK the mutation is durable — after a crash at
// ANY write of a mutation workload (WAL appends, compaction page writes,
// publish), reopening the index shows every acknowledged mutation exactly
// once. The single mutation in flight at the crash may land in either state
// (it was never acknowledged); nothing else may change.
//
// Visibility is probed by self-query: an object's own vector collides with
// it in all m tables at R = 1, so a live id must come back at distance 0
// and a deleted id must never come back at all.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/storage/page_file.h"
#include "src/util/fault_env.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct Mutation {
  WriteAheadLog::RecordType type;
  ObjectId id;
};

class MutateCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_mutate_crash_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  /// True iff a self-query for `v` returns `id` (necessarily at distance 0).
  static bool SelfVisible(const DiskC2lshIndex& idx, ObjectId id, const float* v) {
    auto r = idx.Query(v, 3);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return false;
    for (const Neighbor& nb : *r) {
      if (nb.id == id) {
        EXPECT_EQ(nb.dist, 0.0f);
        return true;
      }
    }
    return false;
  }

  std::filesystem::path dir_;
};

/// The deterministic mutation workload the sweep tears at every write:
/// opens the prebuilt index at `path`, inserts, deletes, compacts, and
/// inserts again (the post-compaction inserts exercise the LSN watermark
/// across a truncated log). Every mutation acknowledged with OK is appended
/// to `acked`; the one that failed mid-flight (if any) lands in `limbo`.
Status RunMutationWorkload(const std::string& path, Env* env, size_t base_n,
                           const FloatMatrix& extra, std::vector<Mutation>* acked,
                           std::optional<Mutation>* limbo) {
  acked->clear();
  limbo->reset();
  auto idx = DiskC2lshIndex::Open(path, 64, env);
  C2LSH_RETURN_IF_ERROR(idx.status());

  auto mutate = [&](Mutation m, Status st) {
    if (st.ok()) {
      acked->push_back(m);
    } else {
      *limbo = m;
    }
    return st;
  };

  // Phase 1: grow the id space past the built dataset.
  for (size_t i = 0; i < 4; ++i) {
    const ObjectId id = static_cast<ObjectId>(base_n + i);
    C2LSH_RETURN_IF_ERROR(mutate({WriteAheadLog::RecordType::kInsert, id},
                                 idx->Insert(id, extra.row(i))));
  }
  // Phase 2: delete two built objects and one dynamic insert.
  for (const ObjectId id : {static_cast<ObjectId>(3), static_cast<ObjectId>(17),
                            static_cast<ObjectId>(base_n + 1)}) {
    C2LSH_RETURN_IF_ERROR(
        mutate({WriteAheadLog::RecordType::kDelete, id}, idx->Delete(id)));
  }
  // Phase 3: fold everything. Compaction changes no visibility, so it is
  // not an acked mutation — but every crash inside it is a sweep point.
  C2LSH_RETURN_IF_ERROR(idx->Compact());
  // Phase 4: mutate again on top of the truncated log.
  for (size_t i = 4; i < 6; ++i) {
    const ObjectId id = static_cast<ObjectId>(base_n + i);
    C2LSH_RETURN_IF_ERROR(mutate({WriteAheadLog::RecordType::kInsert, id},
                                 idx->Insert(id, extra.row(i))));
  }
  return mutate({WriteAheadLog::RecordType::kDelete, 9}, idx->Delete(9));
}

TEST_F(MutateCrashTest, MutationCrashSweepKeepsEveryAckedMutationExactlyOnce) {
  constexpr size_t kBaseN = 100;
  auto pd = MakeProfileDataset(DatasetProfile::kColor, kBaseN + 8, 2, 101);
  ASSERT_TRUE(pd.ok());
  const size_t dim = pd->data.dim();

  // Base dataset = first kBaseN rows; the tail feeds dynamic inserts.
  std::vector<float> base_rows, extra_rows;
  for (size_t i = 0; i < pd->data.size(); ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i));
    auto& target = i < kBaseN ? base_rows : extra_rows;
    target.insert(target.end(), v, v + dim);
  }
  auto base_m = FloatMatrix::FromVector(kBaseN, dim, std::move(base_rows));
  ASSERT_TRUE(base_m.ok());
  auto extra = FloatMatrix::FromVector(pd->data.size() - kBaseN, dim,
                                       std::move(extra_rows));
  ASSERT_TRUE(extra.ok());
  auto base = Dataset::Create("base", std::move(base_m).value());
  ASSERT_TRUE(base.ok());

  C2lshOptions o;
  o.seed = 103;
  o.page_bytes = 1024;

  // Build once, cleanly; the sweep restarts from a copy of this image so
  // only mutation writes are crash points (Build's own sweep lives in
  // fault_injection_test.cc).
  FaultInjectionEnv env(Env::Default());
  const std::string golden = Path("golden.pf");
  {
    auto built = DiskC2lshIndex::Build(*base, o, golden, 64,
                                       /*store_vectors=*/true, &env);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  const std::string work = Path("work.pf");
  auto fresh_work = [&] {
    std::filesystem::copy_file(golden, work,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::remove(work + ".wal");
  };

  // Dry run measures the workload's write count (the sweep range) and
  // proves the workload itself is sound.
  std::vector<Mutation> acked;
  std::optional<Mutation> limbo;
  fresh_work();
  const uint64_t writes_before = env.stats().writes;
  ASSERT_TRUE(
      RunMutationWorkload(work, &env, kBaseN, *extra, &acked, &limbo).ok());
  const uint64_t total_writes = env.stats().writes - writes_before;
  ASSERT_GT(total_writes, 10u);
  ASSERT_EQ(acked.size(), 10u);
  ASSERT_FALSE(limbo.has_value());

  for (uint64_t n = 1; n <= total_writes; ++n) {
    SCOPED_TRACE("crash at mutation write " + std::to_string(n) + " of " +
                 std::to_string(total_writes));
    fresh_work();
    env.ClearCrash();
    env.SetCrashAfterWrites(static_cast<int64_t>(n));
    Status st = RunMutationWorkload(work, &env, kBaseN, *extra, &acked, &limbo);
    ASSERT_FALSE(st.ok());  // deterministic workload: the crash must hit
    ASSERT_TRUE(env.crashed());
    env.ClearCrash();  // "restart the process"

    // The base image was fully published before the mutations began, so
    // recovery must ALWAYS succeed here — a failed Open would mean a torn
    // mutation damaged the published image.
    auto idx = DiskC2lshIndex::Open(work, 64, &env);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();

    // Fold the acked history into expected visibility.
    std::set<ObjectId> expect_live, expect_dead;
    for (const Mutation& m : acked) {
      if (m.type == WriteAheadLog::RecordType::kInsert) {
        expect_live.insert(m.id);
        expect_dead.erase(m.id);
      } else {
        expect_dead.insert(m.id);
        expect_live.erase(m.id);
      }
    }

    auto vector_of = [&](ObjectId id) -> const float* {
      return id < kBaseN ? pd->data.object(id) : extra->row(id - kBaseN);
    };
    for (const ObjectId id : expect_live) {
      if (limbo.has_value() && limbo->id == id) continue;  // either state ok
      EXPECT_TRUE(SelfVisible(*idx, id, vector_of(id))) << "lost insert " << id;
    }
    for (const ObjectId id : expect_dead) {
      if (limbo.has_value() && limbo->id == id) continue;
      EXPECT_FALSE(SelfVisible(*idx, id, vector_of(id)))
          << "resurrected delete " << id;
    }
    // A base object untouched by the workload must always survive.
    EXPECT_TRUE(SelfVisible(*idx, 42, pd->data.object(42)));

    // Exactly once: a second recovery replays nothing extra — same overlay
    // and tombstone footprint, same WAL tail, same answers.
    auto again = DiskC2lshIndex::Open(work, 64, &env);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->num_objects(), idx->num_objects());
    EXPECT_EQ(again->OverlayEntries(), idx->OverlayEntries());
    EXPECT_EQ(again->NumTombstones(), idx->NumTombstones());
    EXPECT_EQ(again->applied_lsn(), idx->applied_lsn());
    EXPECT_EQ(again->wal_last_lsn(), idx->wal_last_lsn());
  }
}

// Regression for the legacy-superblock publish hazard: on a file whose
// durable header carries user_root == 0, Open falls back to the superblock
// (page 1). Compact must therefore never rewrite page 1 — if it did, a
// crash after page 1's writeback but before the header publish would leave
// the fallback pointing at pages beyond the durable num_pages, destroying
// the only pointer to the old image and making the index permanently
// unopenable. The sweep crashes at every write of an
// open → insert → delete → compact workload on such a file and requires
// recovery to succeed each time.
TEST_F(MutateCrashTest, CompactCrashSweepOnLegacyRootFileStaysOpenable) {
  constexpr size_t kBaseN = 60;
  auto pd = MakeProfileDataset(DatasetProfile::kColor, kBaseN + 1, 1, 113);
  ASSERT_TRUE(pd.ok());
  const size_t dim = pd->data.dim();
  std::vector<float> base_rows;
  for (size_t i = 0; i < kBaseN; ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i));
    base_rows.insert(base_rows.end(), v, v + dim);
  }
  auto base_m = FloatMatrix::FromVector(kBaseN, dim, std::move(base_rows));
  ASSERT_TRUE(base_m.ok());
  auto base = Dataset::Create("base", std::move(base_m).value());
  ASSERT_TRUE(base.ok());
  const float* extra = pd->data.object(static_cast<ObjectId>(kBaseN));

  C2lshOptions o;
  o.seed = 127;
  o.page_bytes = 1024;

  FaultInjectionEnv env(Env::Default());
  const std::string golden = Path("legacy_golden.pf");
  {
    auto built = DiskC2lshIndex::Build(*base, o, golden, 64,
                                       /*store_vectors=*/true, &env);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  const std::string work = Path("legacy_work.pf");
  // Demote `work` to a legacy-root file: publish a header whose user_root is
  // 0, exactly what a pre-user_root index looks like to Open — the
  // superblock becomes the only durable pointer to the meta blob.
  auto fresh_legacy_work = [&] {
    std::filesystem::copy_file(golden, work,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::remove(work + ".wal");
    auto pf = PageFile::Open(work, &env);
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    pf->SetUserRoot(0);
    ASSERT_TRUE(pf->Sync().ok());
  };

  std::vector<Mutation> acked;
  std::optional<Mutation> limbo;
  auto workload = [&]() -> Status {
    acked.clear();
    limbo.reset();
    auto idx = DiskC2lshIndex::Open(work, 64, &env);
    C2LSH_RETURN_IF_ERROR(idx.status());
    auto mutate = [&](Mutation m, Status st) {
      if (st.ok()) {
        acked.push_back(m);
      } else {
        limbo = m;
      }
      return st;
    };
    C2LSH_RETURN_IF_ERROR(
        mutate({WriteAheadLog::RecordType::kInsert, static_cast<ObjectId>(kBaseN)},
               idx->Insert(static_cast<ObjectId>(kBaseN), extra)));
    C2LSH_RETURN_IF_ERROR(
        mutate({WriteAheadLog::RecordType::kDelete, 7}, idx->Delete(7)));
    return idx->Compact();
  };

  // Dry run: prove the workload is sound on a legacy-root file and measure
  // the sweep range.
  fresh_legacy_work();
  const uint64_t writes_before = env.stats().writes;
  ASSERT_TRUE(workload().ok());
  const uint64_t total_writes = env.stats().writes - writes_before;
  ASSERT_GT(total_writes, 5u);

  for (uint64_t n = 1; n <= total_writes; ++n) {
    SCOPED_TRACE("crash at write " + std::to_string(n) + " of " +
                 std::to_string(total_writes));
    env.ClearCrash();
    fresh_legacy_work();
    env.SetCrashAfterWrites(static_cast<int64_t>(n));
    Status st = workload();
    ASSERT_FALSE(st.ok());  // deterministic workload: the crash must hit
    ASSERT_TRUE(env.crashed());
    env.ClearCrash();

    // The published image (old or new) must ALWAYS be recoverable; before
    // the fix, crashes between page 1's writeback and the header publish
    // failed here with Corruption.
    auto idx = DiskC2lshIndex::Open(work, 64, &env);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    // An object untouched by the workload must always survive.
    EXPECT_TRUE(SelfVisible(*idx, 42, pd->data.object(42)));
    // Acked mutations stay exactly-once across recovery; the one in limbo
    // (torn mid-write) may land in either state.
    for (const Mutation& m : acked) {
      if (limbo.has_value() && limbo->id == m.id) continue;
      if (m.type == WriteAheadLog::RecordType::kInsert) {
        EXPECT_TRUE(SelfVisible(*idx, m.id, extra)) << "lost insert " << m.id;
      } else {
        EXPECT_FALSE(SelfVisible(*idx, m.id, pd->data.object(m.id)))
            << "resurrected delete " << m.id;
      }
    }
  }
  env.ClearCrash();
}

// Direct regression for the LSN watermark across compaction + reopen: the
// log is truncated by Compact while applied_lsn stays high; a fresh insert
// in a new process must stamp an LSN past the watermark or the next replay
// silently drops it.
TEST_F(MutateCrashTest, InsertAfterCompactAndReopenSurvivesNextReplay) {
  constexpr size_t kBaseN = 60;
  auto pd = MakeProfileDataset(DatasetProfile::kColor, kBaseN + 2, 1, 107);
  ASSERT_TRUE(pd.ok());
  const size_t dim = pd->data.dim();
  std::vector<float> base_rows;
  for (size_t i = 0; i < kBaseN; ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i));
    base_rows.insert(base_rows.end(), v, v + dim);
  }
  auto base_m = FloatMatrix::FromVector(kBaseN, dim, std::move(base_rows));
  ASSERT_TRUE(base_m.ok());
  auto base = Dataset::Create("base", std::move(base_m).value());
  ASSERT_TRUE(base.ok());
  const float* va = pd->data.object(static_cast<ObjectId>(kBaseN));
  const float* vb = pd->data.object(static_cast<ObjectId>(kBaseN + 1));

  C2lshOptions o;
  o.seed = 109;
  o.page_bytes = 1024;
  const std::string path = Path("lsn.pf");
  {
    auto idx = DiskC2lshIndex::Build(*base, o, path, 64, true);
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE(idx->Insert(static_cast<ObjectId>(kBaseN), va).ok());
    ASSERT_TRUE(idx->Compact().ok());
    EXPECT_GT(idx->applied_lsn(), 0u);  // watermark advanced past the fold
  }
  {
    // New process: WAL is empty, watermark is high. Insert B.
    auto idx = DiskC2lshIndex::Open(path, 64);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    ASSERT_TRUE(idx->Insert(static_cast<ObjectId>(kBaseN + 1), vb).ok());
    EXPECT_GT(idx->wal_last_lsn(), idx->applied_lsn());
  }
  // Third process: B's record must replay (not be skipped under the
  // watermark) and A must still be folded in the base image.
  auto idx = DiskC2lshIndex::Open(path, 64);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(idx->num_objects(), kBaseN + 2);
  EXPECT_TRUE(SelfVisible(*idx, static_cast<ObjectId>(kBaseN), va));
  EXPECT_TRUE(SelfVisible(*idx, static_cast<ObjectId>(kBaseN + 1), vb));
  EXPECT_EQ(idx->OverlayEntries(), idx->num_tables());  // B once per table
}

}  // namespace
}  // namespace c2lsh
