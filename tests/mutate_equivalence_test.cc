// Differential tests for online mutation: an index grown by Insert (and
// pruned by Delete) then compacted must be indistinguishable from one built
// fresh over the final dataset — same derived parameters, same collision
// counts, same answers with same distances. This is the strongest statement
// that the mutation path implements the paper's structure and not an
// approximation of it.
//
// The options pin beta explicitly: with beta given, every derived parameter
// (z, alpha, m, l) is independent of n, so build(A) and build(A ∪ B) draw
// the same hash family from the same seed — the precondition for
// equivalence.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

constexpr size_t kA = 120;     // built dataset
constexpr size_t kFull = 160;  // after inserts
constexpr size_t kQueries = 4;
constexpr size_t kK = 10;

class MutateEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pd = MakeProfileDataset(DatasetProfile::kColor, kFull, kQueries, 211);
    ASSERT_TRUE(pd.ok());
    pd_ = std::make_unique<ProfileData>(std::move(pd).value());
    const size_t dim = pd_->data.dim();
    std::vector<float> head;
    for (size_t i = 0; i < kA; ++i) {
      const float* v = pd_->data.object(static_cast<ObjectId>(i));
      head.insert(head.end(), v, v + dim);
    }
    auto m = FloatMatrix::FromVector(kA, dim, std::move(head));
    ASSERT_TRUE(m.ok());
    auto a = Dataset::Create("A", std::move(m).value());
    ASSERT_TRUE(a.ok());
    a_ = std::make_unique<Dataset>(std::move(a).value());

    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_mutate_equiv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  static C2lshOptions Options() {
    C2lshOptions o;
    o.seed = 223;
    o.beta = 0.1;  // n-independent derived params — see file comment
    o.page_bytes = 1024;
    return o;
  }

  static void ExpectSameAnswers(const NeighborList& got, const NeighborList& want,
                                const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
      EXPECT_EQ(got[i].dist, want[i].dist) << what << " rank " << i;
    }
  }

  std::unique_ptr<ProfileData> pd_;
  std::unique_ptr<Dataset> a_;
  std::filesystem::path dir_;
};

TEST_F(MutateEquivalenceTest, MemoryInsertCompactMatchesFreshBuild) {
  const C2lshOptions o = Options();
  auto grown = C2lshIndex::Build(*a_, o);
  ASSERT_TRUE(grown.ok());
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(
        grown->Insert(static_cast<ObjectId>(i), pd_->data.object(static_cast<ObjectId>(i)))
            .ok());
  }
  grown->Compact();

  auto fresh = C2lshIndex::Build(pd_->data, o);
  ASSERT_TRUE(fresh.ok());

  EXPECT_EQ(grown->num_objects(), fresh->num_objects());
  EXPECT_EQ(grown->derived().m, fresh->derived().m);
  EXPECT_EQ(grown->derived().l, fresh->derived().l);

  // The paper's core quantity first: identical collision counts at the
  // first rehashing radii mean the folded tables hold exactly the entries a
  // fresh build produces.
  const long long c = static_cast<long long>(o.c);
  for (size_t q = 0; q < kQueries; ++q) {
    for (const long long radius : {1ll, c, c * c}) {
      EXPECT_EQ(grown->CollisionCountsAtRadius(pd_->queries.row(q), radius),
                fresh->CollisionCountsAtRadius(pd_->queries.row(q), radius))
          << "q=" << q << " R=" << radius;
    }
  }
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = grown->Query(pd_->data, pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->data, pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "insert-equiv q=" + std::to_string(q));
  }
}

TEST_F(MutateEquivalenceTest, MemoryDeleteCompactMatchesBuildWithoutDeleted) {
  const C2lshOptions o = Options();
  auto pruned = C2lshIndex::Build(pd_->data, o);
  ASSERT_TRUE(pruned.ok());
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(pruned->Delete(static_cast<ObjectId>(i)).ok());
  }
  pruned->Compact();

  auto fresh = C2lshIndex::Build(*a_, o);
  ASSERT_TRUE(fresh.ok());

  // Trailing deletes shrink the high-water back to |A|.
  EXPECT_EQ(pruned->num_objects(), kA);
  EXPECT_EQ(pruned->num_objects(), fresh->num_objects());
  for (size_t q = 0; q < kQueries; ++q) {
    EXPECT_EQ(pruned->CollisionCountsAtRadius(pd_->queries.row(q), 1),
              fresh->CollisionCountsAtRadius(pd_->queries.row(q), 1))
        << "q=" << q;
    auto got = pruned->Query(pd_->data, pd_->queries.row(q), kK);
    auto want = fresh->Query(*a_, pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "delete-equiv q=" + std::to_string(q));
    for (const Neighbor& nb : *got) ASSERT_LT(nb.id, kA);
  }
}

TEST_F(MutateEquivalenceTest, DiskInsertDeleteCompactMatchesFreshBuild) {
  const C2lshOptions o = Options();
  const std::string grown_path = Path("grown.pf");
  const std::string fresh_path = Path("fresh.pf");

  auto grown = DiskC2lshIndex::Build(*a_, o, grown_path, 64, /*store_vectors=*/true);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(
        grown->Insert(static_cast<ObjectId>(i), pd_->data.object(static_cast<ObjectId>(i)))
            .ok());
  }
  // Answers must already match BEFORE compaction (overlay path)...
  auto fresh = DiskC2lshIndex::Build(pd_->data, o, fresh_path, 64, true);
  ASSERT_TRUE(fresh.ok());
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = grown->Query(pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk overlay q=" + std::to_string(q));
  }
  // ...and after (folded into rewritten runs + data segment).
  ASSERT_TRUE(grown->Compact().ok());
  EXPECT_EQ(grown->OverlayEntries(), 0u);
  EXPECT_EQ(grown->NumTombstones(), 0u);
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = grown->Query(pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk compacted q=" + std::to_string(q));
  }
  // ...and across a reopen of the compacted image.
  auto reopened = DiskC2lshIndex::Open(grown_path, 64);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_objects(), kFull);
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = reopened->Query(pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk reopened q=" + std::to_string(q));
  }

  // Delete the inserted tail again: back to answers over A.
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(reopened->Delete(static_cast<ObjectId>(i)).ok());
  }
  ASSERT_TRUE(reopened->Compact().ok());
  const std::string a_path = Path("a.pf");
  auto fresh_a = DiskC2lshIndex::Build(*a_, o, a_path, 64, true);
  ASSERT_TRUE(fresh_a.ok());
  EXPECT_EQ(reopened->num_objects(), fresh_a->num_objects());
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = reopened->Query(pd_->queries.row(q), kK);
    auto want = fresh_a->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk delete-equiv q=" + std::to_string(q));
  }
}

// Delete-then-reinsert is the churn pattern that exercises the upsert
// semantics of Insert: the tombstone must lift, the stale flat-run entries
// must stay dead (no double counting), and the reinserted object must be
// visible exactly once — before and after compaction.
TEST_F(MutateEquivalenceTest, MemoryDeleteReinsertCompactMatchesFreshBuild) {
  const C2lshOptions o = Options();
  auto churned = C2lshIndex::Build(pd_->data, o);
  ASSERT_TRUE(churned.ok());
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(churned->Delete(static_cast<ObjectId>(i)).ok());
  }
  for (size_t i = kA; i < kFull; ++i) {
    ASSERT_TRUE(
        churned
            ->Insert(static_cast<ObjectId>(i), pd_->data.object(static_cast<ObjectId>(i)))
            .ok());
  }

  auto fresh = C2lshIndex::Build(pd_->data, o);
  ASSERT_TRUE(fresh.ok());

  // Identical collision counts BEFORE compaction: the reinserted ids are
  // counted once (overlay), not zero times (lost to the tombstone) and not
  // twice (resurrected flat entries plus overlay).
  const long long c = static_cast<long long>(o.c);
  for (size_t q = 0; q < kQueries; ++q) {
    for (const long long radius : {1ll, c}) {
      EXPECT_EQ(churned->CollisionCountsAtRadius(pd_->queries.row(q), radius),
                fresh->CollisionCountsAtRadius(pd_->queries.row(q), radius))
          << "pre-compact q=" << q << " R=" << radius;
    }
  }
  churned->Compact();
  EXPECT_EQ(churned->num_objects(), fresh->num_objects());
  for (size_t q = 0; q < kQueries; ++q) {
    EXPECT_EQ(churned->CollisionCountsAtRadius(pd_->queries.row(q), 1),
              fresh->CollisionCountsAtRadius(pd_->queries.row(q), 1))
        << "post-compact q=" << q;
    auto got = churned->Query(pd_->data, pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->data, pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "reinsert-equiv q=" + std::to_string(q));
  }
}

// The disk-mode twin, additionally crossing a reopen so the delete and
// reinsert records flow through WAL replay (ApplyRecord) rather than only
// the live mutation path.
TEST_F(MutateEquivalenceTest, DiskDeleteReinsertSurvivesReplayAndCompact) {
  const C2lshOptions o = Options();
  const std::string path = Path("churn.pf");
  const std::string fresh_path = Path("churn_fresh.pf");
  auto fresh = DiskC2lshIndex::Build(pd_->data, o, fresh_path, 64, true);
  ASSERT_TRUE(fresh.ok());

  {
    auto idx = DiskC2lshIndex::Build(pd_->data, o, path, 64, /*store_vectors=*/true);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    for (size_t i = kA; i < kFull; ++i) {
      ASSERT_TRUE(idx->Delete(static_cast<ObjectId>(i)).ok());
    }
    for (size_t i = kA; i < kFull; ++i) {
      ASSERT_TRUE(
          idx->Insert(static_cast<ObjectId>(i), pd_->data.object(static_cast<ObjectId>(i)))
              .ok());
    }
    // The reinserts lift the tombstones immediately (live mutation path).
    EXPECT_EQ(idx->NumTombstones(), 0u);
    for (size_t q = 0; q < kQueries; ++q) {
      auto got = idx->Query(pd_->queries.row(q), kK);
      auto want = fresh->Query(pd_->queries.row(q), kK);
      ASSERT_TRUE(got.ok() && want.ok());
      ExpectSameAnswers(*got, *want, "disk reinsert overlay q=" + std::to_string(q));
    }
  }

  // Reopen: the whole churn replays from the WAL. A replayed reinsert must
  // be visible exactly once too.
  auto reopened = DiskC2lshIndex::Open(path, 64);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->NumTombstones(), 0u);
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = reopened->Query(pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk reinsert replayed q=" + std::to_string(q));
  }

  // Compact folds the churn; the reinserted ids survive (they are live, not
  // tombstoned) and appear exactly once in the rewritten runs.
  ASSERT_TRUE(reopened->Compact().ok());
  EXPECT_EQ(reopened->OverlayEntries(), 0u);
  EXPECT_EQ(reopened->NumTombstones(), 0u);
  EXPECT_EQ(reopened->num_objects(), kFull);
  for (size_t q = 0; q < kQueries; ++q) {
    auto got = reopened->Query(pd_->queries.row(q), kK);
    auto want = fresh->Query(pd_->queries.row(q), kK);
    ASSERT_TRUE(got.ok() && want.ok());
    ExpectSameAnswers(*got, *want, "disk reinsert compacted q=" + std::to_string(q));
  }
}

// The mutability gauges and counters surface through the registry and both
// exporters (the ISSUE's observability satellite).
TEST_F(MutateEquivalenceTest, MutationMetricsSurfaceInExporters) {
  const C2lshOptions o = Options();
  auto idx = C2lshIndex::Build(*a_, o);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(
      idx->Insert(static_cast<ObjectId>(kA), pd_->data.object(static_cast<ObjectId>(kA)))
          .ok());
  ASSERT_TRUE(idx->Delete(0).ok());
  idx->Compact();

  const std::string disk_path = Path("metrics.pf");
  auto disk = DiskC2lshIndex::Build(*a_, o, disk_path, 64, true);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(
      disk->Insert(static_cast<ObjectId>(kA), pd_->data.object(static_cast<ObjectId>(kA)))
          .ok());
  ASSERT_TRUE(disk->Compact().ok());

  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  const std::string prom = obs::FormatPrometheus(snap);
  ASSERT_TRUE(obs::ValidatePrometheusText(prom).ok());
  const std::string json = obs::FormatJson(snap);
  for (const char* name :
       {"wal_records_appended_total", "wal_replay_applied_total",
        "wal_replay_truncated_total", "c2lsh_overlay_entries", "c2lsh_tombstones",
        "c2lsh_compaction_runs_total", "c2lsh_compaction_millis",
        "disk_c2lsh_overlay_entries", "disk_c2lsh_tombstones",
        "disk_c2lsh_compaction_runs_total", "disk_c2lsh_compaction_millis"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace c2lsh
