#include "src/util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, PdfSymmetricAndPeaked) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.5), NormalPdf(-1.5), 1e-15);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(0.5));
}

TEST(CollisionProbTest, Limits) {
  EXPECT_DOUBLE_EQ(PStableCollisionProbability(0.0, 1.0), 1.0);
  // Very close points: probability near 1.
  EXPECT_GT(PStableCollisionProbability(1e-9, 1.0), 0.999);
  // Very far points: probability near 0.
  EXPECT_LT(PStableCollisionProbability(1e9, 1.0), 1e-6);
}

TEST(CollisionProbTest, MonotoneDecreasingInDistance) {
  double prev = 1.0;
  for (double s = 0.1; s < 50.0; s *= 1.5) {
    const double p = PStableCollisionProbability(s, 4.0);
    EXPECT_LT(p, prev) << "s=" << s;
    prev = p;
  }
}

TEST(CollisionProbTest, MonotoneIncreasingInWidth) {
  double prev = 0.0;
  for (double w = 0.5; w < 100.0; w *= 2.0) {
    const double p = PStableCollisionProbability(2.0, w);
    EXPECT_GT(p, prev) << "w=" << w;
    prev = p;
  }
}

TEST(CollisionProbTest, ScaleInvariance) {
  // p depends only on the ratio w/s: p(s, w) == p(ks, kw).
  for (double k : {2.0, 7.0, 0.25}) {
    EXPECT_NEAR(PStableCollisionProbability(1.0, 3.0),
                PStableCollisionProbability(k, 3.0 * k), 1e-12);
  }
}

TEST(CollisionProbTest, KnownValueW1) {
  // p(1; 1) for the Gaussian family: 2*Phi(1) - 1 - 2/sqrt(2*pi)*(1 - e^-0.5)
  const double expected =
      1.0 - 2.0 * NormalCdf(-1.0) - 2.0 / std::sqrt(2.0 * M_PI) * (1.0 - std::exp(-0.5));
  EXPECT_NEAR(PStableCollisionProbability(1.0, 1.0), expected, 1e-12);
}

TEST(InverseDistanceTest, RoundTrips) {
  for (double w : {1.0, 4.0, 10.0}) {
    for (double s : {0.5, 1.0, 2.0, 8.0}) {
      const double p = PStableCollisionProbability(s, w);
      ASSERT_GT(p, 0.0);
      ASSERT_LT(p, 1.0);
      const double s_back = PStableInverseDistance(p, w);
      EXPECT_NEAR(s_back, s, 1e-6 * s) << "w=" << w << " s=" << s;
    }
  }
}

TEST(HoeffdingTest, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(HoeffdingLowerTailBound(0.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(HoeffdingLowerTailBound(-1.0, 100), 1.0);
  // Larger deviation or more samples -> smaller bound.
  EXPECT_LT(HoeffdingLowerTailBound(0.2, 100), HoeffdingLowerTailBound(0.1, 100));
  EXPECT_LT(HoeffdingLowerTailBound(0.1, 200), HoeffdingLowerTailBound(0.1, 100));
  // Exact value: exp(-2 * 100 * 0.1^2) = exp(-2).
  EXPECT_NEAR(HoeffdingLowerTailBound(0.1, 100), std::exp(-2.0), 1e-15);
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(SampleStddev({5.0}), 0.0);
  EXPECT_NEAR(SampleStddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138089935299395,
              1e-12);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 90), 7.0);
}

TEST(IntDivTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(5, 5), 1);
  EXPECT_EQ(CeilDiv(6, 5), 2);
}

TEST(IntDivTest, FloorDivMatchesMathematicalFloor) {
  EXPECT_EQ(FloorDiv(7, 2), 3);
  EXPECT_EQ(FloorDiv(-7, 2), -4);
  EXPECT_EQ(FloorDiv(-8, 2), -4);
  EXPECT_EQ(FloorDiv(-1, 4), -1);
  EXPECT_EQ(FloorDiv(0, 4), 0);
  EXPECT_EQ(FloorDiv(3, 4), 0);
}

TEST(IntDivTest, FloorDivNestedFloorIdentity) {
  // floor(floor(x / a) / b) == floor(x / (a*b)) — the identity virtual
  // rehashing rests on.
  for (long long x = -100; x <= 100; ++x) {
    for (long long a : {2LL, 3LL, 4LL}) {
      for (long long b : {2LL, 3LL, 5LL}) {
        EXPECT_EQ(FloorDiv(FloorDiv(x, a), b), FloorDiv(x, a * b))
            << "x=" << x << " a=" << a << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace c2lsh
