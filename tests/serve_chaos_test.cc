// The serve-lane acceptance test: runs the deterministic chaos soak
// (src/serve/chaos.h) in its short configuration and asserts every
// invariant held — acked mutations durable across drain/restart and
// crash-restart, results correct-or-tagged-partial, drain within its
// deadline with zero leaked tickets/connections, and the forced
// drain-overrun recorded by the flight recorder. tools/check.sh runs this
// under TSan in both ISA dispatch modes; tools/chaos_soak runs the same
// harness longer from the command line.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/serve/chaos.h"

namespace c2lsh {
namespace serve {
namespace {

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_chaos_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(ChaosSoakTest, ShortSoakHoldsEveryInvariant) {
  ChaosOptions options;
  options.seed = 20120612;  // the paper's publication date, why not
  options.dir = dir_.string();
  options.ops = 32;
  options.clients = 3;
  options.initial_objects = 128;

  auto report_or = ChaosSoak(options).Run();
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const ChaosReport& r = report_or.value();

  for (const std::string& v : r.violations) {
    ADD_FAILURE() << "invariant violated: " << v;
  }
  EXPECT_TRUE(r.ok());

  // The soak must have actually exercised the machinery, not skated
  // through: mutations acked, connections killed, anomalies recorded, the
  // cooperative drain on time and the forced overrun observed.
  EXPECT_GT(r.requests, 0u);
  EXPECT_GT(r.queries_ok, 0u);
  EXPECT_GT(r.inserts_acked, 0u);
  EXPECT_GT(r.deletes_acked, 0u);
  EXPECT_GT(r.transport_kills, 0u);
  EXPECT_GT(r.anomaly_dumps, 0u);
  EXPECT_TRUE(r.drain_met_deadline);
  EXPECT_TRUE(r.forced_overrun_recorded);
  EXPECT_EQ(r.leaked_tickets, 0u);
  EXPECT_EQ(r.leaked_connections, 0u);
}

TEST_F(ChaosSoakTest, SameSeedSameLedgerCounts) {
  // The schedule is seed-deterministic: two runs with one seed must ack the
  // same mutations (thread interleaving may change which overload queries
  // shed, so only the single-threaded ledger counters are compared).
  ChaosOptions options;
  options.dir = dir_.string();
  options.seed = 7;
  options.ops = 16;
  options.clients = 2;
  options.initial_objects = 64;

  auto first = ChaosSoak(options).Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
  std::filesystem::create_directories(dir_);
  auto second = ChaosSoak(options).Run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(first->inserts_acked, second->inserts_acked);
  EXPECT_EQ(first->deletes_acked, second->deletes_acked);
  EXPECT_EQ(first->transport_kills, second->transport_kills);
  EXPECT_TRUE(first->ok());
  EXPECT_TRUE(second->ok());
}

TEST_F(ChaosSoakTest, RejectsUnusableOptions) {
  ChaosOptions options;  // dir missing
  EXPECT_FALSE(ChaosSoak(options).Run().ok());
  options.dir = dir_.string();
  options.initial_objects = 4;  // too small to mean anything
  EXPECT_FALSE(ChaosSoak(options).Run().ok());
}

}  // namespace
}  // namespace serve
}  // namespace c2lsh
