// The batch engine's determinism contract (src/core/batch.h): QueryBatch is
// bitwise-identical to a serial loop of Query() calls — results AND stats —
// for every batch_size / num_shards / pool configuration, in both index
// modes; and per-query contexts are honored without perturbing batchmates.
// Runs in the race lane (TSan) so the shard/merge phases are also checked
// for data races, and in the batch lane against both ISA dispatch modes.

#include <filesystem>

#include <gtest/gtest.h>

#include "src/core/batch.h"
#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/util/query_context.h"
#include "src/util/thread_pool.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct BatchWorld {
  Dataset data;
  FloatMatrix queries;
  C2lshIndex index;
};

BatchWorld MakeBatchWorld() {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 3000, 32, 9);
  EXPECT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 21;
  auto index = C2lshIndex::Build(pd->data, o);
  EXPECT_TRUE(index.ok());
  return BatchWorld{std::move(pd->data), std::move(pd->queries),
                    std::move(index).value()};
}

void ExpectResultsBitwiseEqual(const std::vector<NeighborList>& got,
                               const std::vector<NeighborList>& want,
                               const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " q=" << q;
    for (size_t i = 0; i < want[q].size(); ++i) {
      EXPECT_EQ(got[q][i].id, want[q][i].id) << label << " q=" << q << " i=" << i;
      // Bitwise: EXPECT_EQ on float, not near — the contract is exactness.
      EXPECT_EQ(got[q][i].dist, want[q][i].dist)
          << label << " q=" << q << " i=" << i;
    }
  }
}

void ExpectStatsEqual(const C2lshQueryStats& got, const C2lshQueryStats& want,
                      const std::string& label) {
  EXPECT_EQ(got.rounds, want.rounds) << label;
  EXPECT_EQ(got.final_radius, want.final_radius) << label;
  EXPECT_EQ(got.collision_increments, want.collision_increments) << label;
  EXPECT_EQ(got.candidates_verified, want.candidates_verified) << label;
  EXPECT_EQ(got.buckets_scanned, want.buckets_scanned) << label;
  EXPECT_EQ(got.index_pages, want.index_pages) << label;
  EXPECT_EQ(got.data_pages, want.data_pages) << label;
  EXPECT_EQ(got.termination, want.termination) << label;
}

TEST(BatchEngineTest, QueryBatchBitwiseEqualsSerialLoop) {
  BatchWorld w = MakeBatchWorld();
  const size_t k = 10;
  std::vector<NeighborList> serial;
  std::vector<C2lshQueryStats> serial_stats(w.queries.num_rows());
  for (size_t q = 0; q < w.queries.num_rows(); ++q) {
    auto r = w.index.Query(w.data, w.queries.row(q), k, &serial_stats[q]);
    ASSERT_TRUE(r.ok());
    serial.push_back(std::move(r).value());
  }
  std::vector<C2lshQueryStats> batch_stats;
  auto batch = w.index.QueryBatch(w.data, w.queries, k,
                                  C2lshIndex::BatchQueryOptions(), &batch_stats);
  ASSERT_TRUE(batch.ok());
  ExpectResultsBitwiseEqual(*batch, serial, "default-options");
  ASSERT_EQ(batch_stats.size(), serial_stats.size());
  for (size_t q = 0; q < serial_stats.size(); ++q) {
    ExpectStatsEqual(batch_stats[q], serial_stats[q],
                     "default-options q=" + std::to_string(q));
  }
}

TEST(BatchEngineTest, InvariantUnderShardCountBatchSizeAndPool) {
  BatchWorld w = MakeBatchWorld();
  const size_t k = 7;
  std::vector<NeighborList> serial;
  std::vector<C2lshQueryStats> serial_stats(w.queries.num_rows());
  for (size_t q = 0; q < w.queries.num_rows(); ++q) {
    auto r = w.index.Query(w.data, w.queries.row(q), k, &serial_stats[q]);
    ASSERT_TRUE(r.ok());
    serial.push_back(std::move(r).value());
  }
  ThreadPool narrow_pool(2);
  for (size_t num_shards : {1u, 2u, 7u}) {
    for (size_t batch_size : {0u, 1u, 4u}) {
      for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &narrow_pool}) {
        C2lshIndex::BatchQueryOptions opts;
        opts.num_shards = num_shards;
        opts.batch_size = batch_size;
        opts.pool = pool;
        const std::string label = "shards=" + std::to_string(num_shards) +
                                  " block=" + std::to_string(batch_size) +
                                  (pool != nullptr ? " pool=2" : " pool=shared");
        std::vector<C2lshQueryStats> stats;
        auto batch = w.index.QueryBatch(w.data, w.queries, k, opts, &stats);
        ASSERT_TRUE(batch.ok()) << label;
        ExpectResultsBitwiseEqual(*batch, serial, label);
        for (size_t q = 0; q < serial_stats.size(); ++q) {
          ExpectStatsEqual(stats[q], serial_stats[q],
                           label + " q=" + std::to_string(q));
        }
      }
    }
  }
}

TEST(BatchEngineTest, MixedContextsDoNotPerturbBatchmates) {
  BatchWorld w = MakeBatchWorld();
  const size_t k = 5;
  const size_t nq = w.queries.num_rows();
  ASSERT_GE(nq, 6u);

  // Deterministic context states: a pre-cancelled token and a pre-expired
  // deadline stop their queries at the first round boundary (zero rounds,
  // empty results) in both the serial and the batched engine; everyone else
  // runs unbounded.
  CancellationToken cancelled_token;
  cancelled_token.Cancel();
  QueryContext cancelled_ctx;
  cancelled_ctx.cancel = &cancelled_token;
  QueryContext expired_ctx;
  expired_ctx.deadline = Deadline::AfterMicros(-1);

  C2lshIndex::BatchQueryOptions opts;
  opts.num_shards = 2;
  opts.contexts.assign(nq, nullptr);
  opts.contexts[2] = &cancelled_ctx;
  opts.contexts[5] = &expired_ctx;

  std::vector<C2lshQueryStats> batch_stats;
  auto batch = w.index.QueryBatch(w.data, w.queries, k, opts, &batch_stats);
  ASSERT_TRUE(batch.ok());

  for (size_t q = 0; q < nq; ++q) {
    C2lshQueryStats serial_stats;
    auto serial = w.index.Query(w.data, w.queries.row(q), k, &serial_stats,
                                /*trace=*/nullptr, opts.contexts[q]);
    ASSERT_TRUE(serial.ok());
    if (q == 2 || q == 5) {
      EXPECT_TRUE((*batch)[q].empty()) << "q=" << q;
      EXPECT_EQ(batch_stats[q].rounds, 0u) << "q=" << q;
      EXPECT_EQ(batch_stats[q].termination,
                q == 2 ? Termination::kCancelled : Termination::kDeadline);
    }
    // The expired queries must match their serial counterparts too, and the
    // unbounded batchmates must be bit-identical to serial no-ctx runs —
    // an expiring neighbor leaves no trace on them.
    ASSERT_EQ((*batch)[q].size(), serial->size()) << "q=" << q;
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*batch)[q][i].id, (*serial)[i].id) << "q=" << q;
      EXPECT_EQ((*batch)[q][i].dist, (*serial)[i].dist) << "q=" << q;
    }
    ExpectStatsEqual(batch_stats[q], serial_stats, "ctx q=" + std::to_string(q));
  }
}

TEST(BatchEngineTest, PageBudgetStopsAtRoundBoundaryDeterministically) {
  BatchWorld w = MakeBatchWorld();
  const size_t k = 5;
  // The page budget is only evaluated at round boundaries on order-
  // independent page totals, so even this mid-flight-looking control is
  // bitwise-reproducible between serial and batched execution.
  QueryContext budget_ctx;
  budget_ctx.io_page_budget = w.index.num_tables() + 1;

  const size_t nq = w.queries.num_rows();
  C2lshIndex::BatchQueryOptions opts;
  opts.num_shards = 7;
  opts.contexts.assign(nq, &budget_ctx);
  std::vector<C2lshQueryStats> batch_stats;
  auto batch = w.index.QueryBatch(w.data, w.queries, k, opts, &batch_stats);
  ASSERT_TRUE(batch.ok());
  for (size_t q = 0; q < nq; ++q) {
    C2lshQueryStats serial_stats;
    auto serial = w.index.Query(w.data, w.queries.row(q), k, &serial_stats,
                                /*trace=*/nullptr, &budget_ctx);
    ASSERT_TRUE(serial.ok());
    ASSERT_EQ((*batch)[q].size(), serial->size()) << "q=" << q;
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*batch)[q][i].id, (*serial)[i].id) << "q=" << q;
      EXPECT_EQ((*batch)[q][i].dist, (*serial)[i].dist) << "q=" << q;
    }
    ExpectStatsEqual(batch_stats[q], serial_stats, "budget q=" + std::to_string(q));
  }
}

TEST(BatchEngineTest, ValidationMatchesSerialContract) {
  BatchWorld w = MakeBatchWorld();
  EXPECT_TRUE(w.index.QueryBatch(w.data, w.queries, 0).status().IsInvalidArgument());
  auto wrong = FloatMatrix::Create(3, w.data.dim() + 1);
  ASSERT_TRUE(wrong.ok());
  EXPECT_TRUE(
      w.index.QueryBatch(w.data, wrong.value(), 5).status().IsInvalidArgument());
  C2lshIndex::BatchQueryOptions opts;
  opts.contexts.assign(2, nullptr);  // wrong length
  EXPECT_TRUE(
      w.index.QueryBatch(w.data, w.queries, 5, opts).status().IsInvalidArgument());
}

class DiskBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_batch_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(DiskBatchTest, DiskQueryBatchMatchesSerialDiskQueries) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 2000, 24, 7);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 33;
  auto disk = DiskC2lshIndex::Build(pd->data, o, Path("batch.pf"), 512);
  ASSERT_TRUE(disk.ok());
  const size_t k = 8;

  // Stored-vector mode. The serial loop runs first and the pool is warm in
  // both runs' steady state, but measured pool I/O depends on cache history,
  // so only results (and the algorithmic stats) are compared, per query.
  std::vector<NeighborList> serial;
  std::vector<DiskQueryStats> serial_stats(pd->queries.num_rows());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto r = disk->Query(pd->queries.row(q), k, &serial_stats[q]);
    ASSERT_TRUE(r.ok());
    serial.push_back(std::move(r).value());
  }
  std::vector<DiskQueryStats> batch_stats;
  auto batch = disk->QueryBatch(pd->queries, k, &batch_stats);
  ASSERT_TRUE(batch.ok());
  ExpectResultsBitwiseEqual(*batch, serial, "disk-stored");
  for (size_t q = 0; q < serial_stats.size(); ++q) {
    EXPECT_EQ(batch_stats[q].base.rounds, serial_stats[q].base.rounds) << q;
    EXPECT_EQ(batch_stats[q].base.final_radius, serial_stats[q].base.final_radius)
        << q;
    EXPECT_EQ(batch_stats[q].base.collision_increments,
              serial_stats[q].base.collision_increments)
        << q;
    EXPECT_EQ(batch_stats[q].base.candidates_verified,
              serial_stats[q].base.candidates_verified)
        << q;
    EXPECT_EQ(batch_stats[q].base.termination, serial_stats[q].base.termination)
        << q;
  }

  // Caller-dataset mode, with one pre-cancelled batchmate.
  CancellationToken cancelled_token;
  cancelled_token.Cancel();
  QueryContext cancelled_ctx;
  cancelled_ctx.cancel = &cancelled_token;
  std::vector<const QueryContext*> contexts(pd->queries.num_rows(), nullptr);
  contexts[1] = &cancelled_ctx;
  auto batch2 = disk->QueryBatch(pd->data, pd->queries, k, nullptr, contexts);
  ASSERT_TRUE(batch2.ok());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    if (q == 1) {
      EXPECT_TRUE((*batch2)[q].empty());
      continue;
    }
    auto r = disk->Query(pd->data, pd->queries.row(q), k);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ((*batch2)[q].size(), r->size()) << "q=" << q;
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*batch2)[q][i].id, (*r)[i].id) << "q=" << q;
      EXPECT_EQ((*batch2)[q][i].dist, (*r)[i].dist) << "q=" << q;
    }
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 3u, 7u, 1000u}) {
    std::vector<int> hits(n, 0);
    pool.ParallelFor(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SequentialBackToBackLoopsReuseWorkers) {
  ThreadPool pool(3);
  // The pool clamps to hardware concurrency, so the exact thread count
  // depends on the machine; ParallelFor below must be correct at any width.
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_LE(pool.num_threads(), 3u);
  std::vector<size_t> sums(3, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(sums.size(), [&](size_t i) { sums[i] += i + 1; });
  }
  EXPECT_EQ(sums[0], 50u);
  EXPECT_EQ(sums[1], 100u);
  EXPECT_EQ(sums[2], 150u);
}

TEST(ThreadPoolTest, SharedPoolIsClampedToHardwareConcurrency) {
  ThreadPool& shared = ThreadPool::Shared();
  EXPECT_GE(shared.num_threads(), 1u);
  // Oversubscription requests clamp instead of spawning unboundedly.
  ThreadPool big(1u << 20);
  EXPECT_LE(big.num_threads(), std::max<size_t>(1, shared.num_threads()));
  std::vector<int> hits(17, 0);
  big.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace c2lsh
