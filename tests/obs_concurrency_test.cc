// Concurrency stress for the metrics registry (runs in the TSan race lane).
//
// Many threads hammer the same counter/histogram/gauge, plus racing GetX
// registration of the same and distinct names. After the joins the totals
// must be EXACT — relaxed atomics may reorder, but they never drop an
// increment.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/util/mutex.h"

namespace c2lsh {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 100'000;

TEST(ObsConcurrencyTest, CounterIncrementsAreExactAcrossThreads) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("conctest_counter_total", "hammered counter");
  ASSERT_NE(c, nullptr);
  const uint64_t before = c->value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kOpsPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), before + static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, HistogramCountAndSumAreExactAcrossThreads) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("conctest_histogram_millis", "hammered histogram");
  ASSERT_NE(h, nullptr);
  const uint64_t count_before = h->count();
  const double sum_before = h->sum();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      // Thread-distinct values spread over several octaves so the CAS sum
      // loop and multiple bucket slots all see contention.
      const double v = 0.5 * static_cast<double>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) h->Observe(v);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), count_before + static_cast<uint64_t>(kThreads) * kOpsPerThread);
  double want_sum = sum_before;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += 0.5 * static_cast<double>(t + 1) * kOpsPerThread;
  }
  // The CAS loop accumulates doubles exactly here: every addend is a small
  // multiple of 0.5, far inside the 53-bit mantissa.
  EXPECT_EQ(h->sum(), want_sum);
  // Every observation landed in a real bucket: per-bucket counts also total.
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) bucket_total += h->BucketCount(i);
  EXPECT_EQ(bucket_total, h->count());
}

TEST(ObsConcurrencyTest, RacingRegistrationYieldsOneMetricPerName) {
  auto& reg = MetricsRegistry::Global();
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      // All threads race the same name; each also registers a private one.
      seen[static_cast<size_t>(t)] =
          reg.GetCounter("conctest_shared_total", "raced registration");
      Counter* own = reg.GetCounter("conctest_private_" + std::to_string(t) + "_total",
                                    "per-thread metric");
      ASSERT_NE(own, nullptr);
      own->Increment();
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_NE(seen[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]) << "thread " << t;
  }
  for (int t = 0; t < kThreads; ++t) {
    const Counter* own =
        reg.FindCounter("conctest_private_" + std::to_string(t) + "_total");
    ASSERT_NE(own, nullptr);
    EXPECT_EQ(own->value(), 1u);
  }
}

TEST(ObsConcurrencyTest, SnapshotWhileWritersAreActiveIsConsistent) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("conctest_snap_total", "written during snapshots");
  Histogram* h = reg.GetHistogram("conctest_snap_millis", "written during snapshots");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(h, nullptr);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([c, h] {
      for (int i = 0; i < 20'000; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  // Concurrent snapshots + exports must stay internally consistent (the
  // +Inf cumulative entry always equals the snapshot count) and validate.
  for (int round = 0; round < 20; ++round) {
    const auto snap = reg.Snapshot();
    for (const MetricSnapshot& m : snap) {
      if (m.type != MetricType::kHistogram) continue;
      ASSERT_FALSE(m.histogram.cumulative.empty()) << m.name;
      EXPECT_EQ(m.histogram.cumulative.back().second, m.histogram.count) << m.name;
    }
    const Status s = ValidatePrometheusText(FormatPrometheus(snap));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  for (auto& th : writers) th.join();
}

}  // namespace
}  // namespace obs
}  // namespace c2lsh
