#include "src/vector/io.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace c2lsh {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, FvecsRoundTrip) {
  auto m = FloatMatrix::FromVector(3, 2, {1.5f, -2.0f, 0.0f, 4.25f, 1e-3f, 9.0f});
  ASSERT_TRUE(m.ok());
  const std::string path = Path("a.fvecs");
  ASSERT_TRUE(WriteFvecs(path, m.value()).ok());

  auto back = ReadFvecs(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->dim(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(back->at(i, j), m->at(i, j));
    }
  }
}

TEST_F(IoTest, FvecsMaxRows) {
  Rng rng(1);
  std::vector<float> data;
  for (int i = 0; i < 10 * 4; ++i) data.push_back(static_cast<float>(rng.Gaussian()));
  auto m = FloatMatrix::FromVector(10, 4, data);
  ASSERT_TRUE(m.ok());
  const std::string path = Path("b.fvecs");
  ASSERT_TRUE(WriteFvecs(path, m.value()).ok());

  auto head = ReadFvecs(path, 3);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->num_rows(), 3u);
  EXPECT_EQ(head->at(2, 1), m->at(2, 1));
}

TEST_F(IoTest, FvecsMissingFile) {
  EXPECT_TRUE(ReadFvecs(Path("nope.fvecs")).status().IsIOError());
}

TEST_F(IoTest, FvecsEmptyFileIsCorruption) {
  const std::string path = Path("empty.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fclose(f);
  EXPECT_TRUE(ReadFvecs(path).status().IsCorruption());
}

TEST_F(IoTest, FvecsTruncatedRow) {
  const std::string path = Path("trunc.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const int32_t d = 8;
  std::fwrite(&d, sizeof(d), 1, f);
  const float vals[3] = {1, 2, 3};  // claims 8, writes 3
  std::fwrite(vals, sizeof(float), 3, f);
  std::fclose(f);
  EXPECT_TRUE(ReadFvecs(path).status().IsCorruption());
}

TEST_F(IoTest, FvecsInconsistentDim) {
  const std::string path = Path("mixed.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  int32_t d = 2;
  const float row2[2] = {1, 2};
  std::fwrite(&d, sizeof(d), 1, f);
  std::fwrite(row2, sizeof(float), 2, f);
  d = 3;
  const float row3[3] = {1, 2, 3};
  std::fwrite(&d, sizeof(d), 1, f);
  std::fwrite(row3, sizeof(float), 3, f);
  std::fclose(f);
  EXPECT_TRUE(ReadFvecs(path).status().IsCorruption());
}

TEST_F(IoTest, FvecsNonPositiveDim) {
  const std::string path = Path("negdim.fvecs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const int32_t d = -1;
  std::fwrite(&d, sizeof(d), 1, f);
  std::fclose(f);
  EXPECT_TRUE(ReadFvecs(path).status().IsCorruption());
}

TEST_F(IoTest, BvecsRoundTrip) {
  auto m = FloatMatrix::FromVector(3, 4, {0, 1, 2, 3, 255, 254, 128, 0, 7, 7, 7, 7});
  ASSERT_TRUE(m.ok());
  const std::string path = Path("a.bvecs");
  ASSERT_TRUE(WriteBvecs(path, m.value()).ok());
  auto back = ReadBvecs(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->dim(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(back->at(i, j), m->at(i, j));
    }
  }
}

TEST_F(IoTest, BvecsRejectsOutOfRange) {
  auto neg = FloatMatrix::FromVector(1, 2, {-3, 0});
  auto big = FloatMatrix::FromVector(1, 2, {0, 300});
  ASSERT_TRUE(neg.ok() && big.ok());
  EXPECT_TRUE(WriteBvecs(Path("neg.bvecs"), neg.value()).IsInvalidArgument());
  EXPECT_TRUE(WriteBvecs(Path("big.bvecs"), big.value()).IsInvalidArgument());
}

TEST_F(IoTest, BvecsMaxRowsAndErrors) {
  auto m = FloatMatrix::FromVector(5, 2, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  ASSERT_TRUE(m.ok());
  const std::string path = Path("b.bvecs");
  ASSERT_TRUE(WriteBvecs(path, m.value()).ok());
  auto head = ReadBvecs(path, 2);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->num_rows(), 2u);
  EXPECT_TRUE(ReadBvecs(Path("missing.bvecs")).status().IsIOError());
  // Truncated row.
  std::FILE* f = std::fopen(Path("trunc.bvecs").c_str(), "wb");
  const int32_t d = 10;
  std::fwrite(&d, sizeof(d), 1, f);
  const uint8_t bytes[3] = {1, 2, 3};
  std::fwrite(bytes, 1, 3, f);
  std::fclose(f);
  EXPECT_TRUE(ReadBvecs(Path("trunc.bvecs")).status().IsCorruption());
}

TEST_F(IoTest, IvecsRoundTripVariableLengths) {
  std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {}, {-5}, {7, 8}};
  const std::string path = Path("c.ivecs");
  ASSERT_TRUE(WriteIvecs(path, rows).ok());
  auto back = ReadIvecs(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), rows);
}

TEST_F(IoTest, IvecsMaxRows) {
  std::vector<std::vector<int32_t>> rows = {{1}, {2}, {3}, {4}};
  const std::string path = Path("d.ivecs");
  ASSERT_TRUE(WriteIvecs(path, rows).ok());
  auto back = ReadIvecs(path, 2);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[1], std::vector<int32_t>{2});
}

}  // namespace
}  // namespace c2lsh
