// Span-tracing tests: ring-slot integrity under wrap and concurrent churn,
// parent/child reconstruction across ThreadPool::ParallelFor shard
// boundaries, sampling modes, and the Chrome trace-event validator (both
// directions: our exporter must pass it; malformed documents must not).
//
// The race-labelled cases also run under -DC2LSH_SANITIZE=thread via
// check.sh's trace lane: the ring protocol's claim is "a wrapping writer
// drops the oldest events, it never tears them", and TSan plus the
// value==query_id payload check below are the two witnesses.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/obs/span.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/thread_pool.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace obs {
namespace {

// Every test owns the global tracer mode; reset so suites compose.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetMode(TraceMode::kAlways);
    Tracer::Global().Clear();
  }
  void TearDown() override { Tracer::Global().SetMode(TraceMode::kOff); }
};

TEST_F(TraceTest, DisabledTracerEmitsNothing) {
  Tracer::Global().SetMode(TraceMode::kOff);
  Tracer::Global().Clear();
  {
    ScopedSpan span(SpanSubsystem::kOther, "ghost");
    EXPECT_FALSE(span.armed());
  }
  TraceInstant(SpanSubsystem::kOther, "ghost_instant");
  EXPECT_TRUE(Tracer::Global().SnapshotAll().empty());
}

TEST_F(TraceTest, SpanInstantCounterRoundTripThroughExport) {
  {
    ScopedSpan span(SpanSubsystem::kQuery, "q", /*query_id=*/7);
    TraceInstant(SpanSubsystem::kRetry, "poke", /*query_id=*/7, /*value=*/3.0);
    TraceCounter(SpanSubsystem::kBufferPool, "depth", 42.0);
  }
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotAll();
  ASSERT_EQ(events.size(), 3u);
  const std::string json = ExportChromeTrace(events, "trace_test");
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok())
      << ValidateChromeTraceJson(json).ToString();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"buffer_pool\""), std::string::npos);
  EXPECT_NE(json.find("\"query_id\": 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ring wrap: oldest dropped, never torn.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, RingWrapDropsOldestWithoutTearing) {
  TraceRing* ring = Tracer::Global().ThreadRing();
  ASSERT_NE(ring, nullptr);
  const uint64_t base = ring->emitted();
  constexpr uint64_t kEmit = TraceRing::kCapacity + 1000;
  // Payload redundancy: value and query_id carry the same i, so a torn
  // slot (old payload, new generation or vice versa) cannot go unnoticed.
  for (uint64_t i = 0; i < kEmit; ++i) {
    TraceInstant(SpanSubsystem::kOther, "wrap", /*query_id=*/i + 1,
                 /*value=*/static_cast<double>(i + 1));
  }
  EXPECT_EQ(ring->emitted(), base + kEmit);
  EXPECT_GE(ring->dropped(), kEmit - TraceRing::kCapacity);

  std::vector<TraceEvent> events;
  ring->Snapshot(&events);
  ASSERT_LE(events.size(), TraceRing::kCapacity);
  ASSERT_FALSE(events.empty());
  uint64_t newest = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "wrap") continue;
    EXPECT_EQ(static_cast<double>(e.query_id), e.value)
        << "torn slot: payload halves disagree";
    newest = std::max(newest, e.query_id);
  }
  // The survivors are the newest events, not a random subset.
  EXPECT_EQ(newest, kEmit);
}

// Writer wrapping the ring at full speed while snapshot readers spin: every
// event a reader observes must be internally consistent. Runs under TSan in
// the trace lane.
TEST_F(TraceTest, ConcurrentSnapshotDuringWrapNeverTears) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++i;
      TraceInstant(SpanSubsystem::kOther, "churn", i,
                   static_cast<double>(i));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int it = 0; it < 50; ++it) {
        const std::vector<TraceEvent> events = Tracer::Global().SnapshotAll();
        for (const TraceEvent& e : events) {
          if (std::string(e.name) == "churn" &&
              static_cast<double>(e.query_id) != e.value) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(torn.load(), 0u);
}

// Real engine churn: concurrent QueryBatch traffic with tracing armed while
// a reader snapshots and exports. The TSan run is the assertion; the
// validator pass is the bonus.
TEST_F(TraceTest, QueryBatchChurnWithConcurrentExportIsClean) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 400, 16, /*seed=*/7);
  ASSERT_TRUE(pd.ok());
  C2lshOptions options;
  options.w = 1.0;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 7;
  auto index = C2lshIndex::Build(pd->data, options);
  ASSERT_TRUE(index.ok());

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json =
          ExportChromeTrace(Tracer::Global().SnapshotAll(), "churn");
      EXPECT_TRUE(ValidateChromeTraceJson(json).ok());
    }
  });
  for (int round = 0; round < 4; ++round) {
    auto res = index->QueryBatch(pd->data, pd->queries, 5);
    ASSERT_TRUE(res.ok());
  }
  stop.store(true, std::memory_order_relaxed);
  exporter.join();
}

// ---------------------------------------------------------------------------
// Parent/child reconstruction across ParallelFor shard boundaries.
// ---------------------------------------------------------------------------

// Rebuilds the span forest per thread by interval containment and checks it
// is well-formed: on any one thread, spans nest properly (contained or
// disjoint, never partially overlapping).
void ExpectProperNesting(const std::vector<TraceEvent>& events) {
  std::vector<std::pair<uint32_t, std::pair<uint64_t, uint64_t>>> spans;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kSpan) {
      spans.push_back({e.tid, {e.start_ticks, e.start_ticks + e.dur_ticks}});
    }
  }
  for (size_t a = 0; a < spans.size(); ++a) {
    for (size_t b = a + 1; b < spans.size(); ++b) {
      if (spans[a].first != spans[b].first) continue;  // different threads
      const auto& x = spans[a].second;
      const auto& y = spans[b].second;
      const bool disjoint = x.second <= y.first || y.second <= x.first;
      const bool contained = (x.first <= y.first && y.second <= x.second) ||
                             (y.first <= x.first && x.second <= y.second);
      EXPECT_TRUE(disjoint || contained)
          << "partially-overlapping spans on tid " << spans[a].first;
    }
  }
}

TEST_F(TraceTest, ParallelForSpansReconstructParentChildTree) {
  ThreadPool pool(4);
  constexpr size_t kUnits = 32;
  {
    ScopedSpan root(SpanSubsystem::kOther, "test_root");
    pool.ParallelFor(kUnits, [&](size_t i) {
      ScopedSpan unit(SpanSubsystem::kOther, "unit_work", /*query_id=*/i + 1);
      // A nested child inside each unit exercises two levels per thread.
      ScopedSpan inner(SpanSubsystem::kOther, "unit_inner", i + 1);
    });
  }
  const std::vector<TraceEvent> events = Tracer::Global().SnapshotAll();

  const TraceEvent* region = nullptr;
  size_t units = 0, tasks = 0;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name == "parallel_for") region = &e;
    if (name == "unit_work") ++units;
    if (name == "pool_task") ++tasks;
  }
  ASSERT_NE(region, nullptr) << "ThreadPool hook did not emit the region span";
  EXPECT_EQ(units, kUnits);
  EXPECT_GE(tasks, 1u);

  // Every unit of work (any thread) falls inside the region span's global
  // tick interval, and every helper's pool_task does too: the cross-thread
  // parent edge of the tree.
  const uint64_t lo = region->start_ticks;
  const uint64_t hi = region->start_ticks + region->dur_ticks;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name != "unit_work" && name != "unit_inner" && name != "pool_task") {
      continue;
    }
    EXPECT_GE(e.start_ticks, lo) << name;
    EXPECT_LE(e.start_ticks + e.dur_ticks, hi) << name;
  }
  ExpectProperNesting(events);
}

// ---------------------------------------------------------------------------
// Sampling modes.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, SamplingModes) {
  Tracer& t = Tracer::Global();
  QueryContext tagged;
  tagged.trace = true;
  QueryContext untagged;

  t.SetMode(TraceMode::kOff);
  EXPECT_FALSE(Tracer::enabled());
  EXPECT_FALSE(t.SampleQuery(&tagged));

  t.SetMode(TraceMode::kAlways);
  EXPECT_TRUE(Tracer::enabled());
  EXPECT_TRUE(t.SampleQuery(nullptr));
  EXPECT_TRUE(t.SampleQuery(&untagged));

  t.SetMode(TraceMode::kPerQuery);
  EXPECT_TRUE(t.SampleQuery(&tagged));
  EXPECT_FALSE(t.SampleQuery(&untagged));
  EXPECT_FALSE(t.SampleQuery(nullptr));

  t.SetMode(TraceMode::kEveryNth, 3);
  int sampled = 0;
  for (int i = 0; i < 30; ++i) sampled += t.SampleQuery(nullptr) ? 1 : 0;
  EXPECT_EQ(sampled, 10);
}

TEST_F(TraceTest, NextQueryIdIsNonzeroAndDistinct) {
  const uint64_t a = Tracer::Global().NextQueryId();
  const uint64_t b = Tracer::Global().NextQueryId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Validator: accepted and rejected documents.
// ---------------------------------------------------------------------------

TEST(ChromeTraceValidator, AcceptsObjectAndBareArrayForms) {
  EXPECT_TRUE(ValidateChromeTraceJson(
                  R"({"traceEvents": [{"name": "a", "ph": "X", "pid": 1,)"
                  R"( "tid": 2, "ts": 0.5, "dur": 1.0}]})")
                  .ok());
  EXPECT_TRUE(ValidateChromeTraceJson(
                  R"([{"name": "a", "ph": "i", "pid": 1, "tid": 2, "ts": 3}])")
                  .ok());
  EXPECT_TRUE(ValidateChromeTraceJson(R"({"traceEvents": []})").ok());
}

TEST(ChromeTraceValidator, AcceptsBalancedBeginEndPairs) {
  EXPECT_TRUE(ValidateChromeTraceJson(
                  R"([{"name": "a", "ph": "B", "pid": 1, "tid": 2, "ts": 1},)"
                  R"( {"name": "a", "ph": "E", "pid": 1, "tid": 2, "ts": 2}])")
                  .ok());
}

TEST(ChromeTraceValidator, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(ValidateChromeTraceJson("hello").ok());
  // Trailing garbage after a valid document.
  EXPECT_FALSE(ValidateChromeTraceJson(R"({"traceEvents": []}x)").ok());
  // traceEvents missing.
  EXPECT_FALSE(ValidateChromeTraceJson(R"({"events": []})").ok());
  // Event is not an object.
  EXPECT_FALSE(ValidateChromeTraceJson(R"({"traceEvents": [1]})").ok());
  // Missing name.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"ph": "X", "pid": 1, "tid": 2, "ts": 0, "dur": 1}])")
                   .ok());
  // Unknown phase.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "Z", "pid": 1, "tid": 2, "ts": 0}])")
                   .ok());
  // Non-integral pid.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "i", "pid": 1.5, "tid": 2, "ts": 0}])")
                   .ok());
  // Negative timestamp.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "i", "pid": 1, "tid": 2, "ts": -4}])")
                   .ok());
  // X span without a duration.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "X", "pid": 1, "tid": 2, "ts": 0}])")
                   .ok());
  // Unbalanced B without E.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "B", "pid": 1, "tid": 2, "ts": 0}])")
                   .ok());
  // E with no matching B.
  EXPECT_FALSE(ValidateChromeTraceJson(
                   R"([{"name": "a", "ph": "E", "pid": 1, "tid": 2, "ts": 0}])")
                   .ok());
}

TEST(ChromeTraceValidator, NamesTheFirstOffendingEvent) {
  const Status s = ValidateChromeTraceJson(
      R"([{"name": "ok", "ph": "i", "pid": 1, "tid": 2, "ts": 0},)"
      R"( {"name": 5, "ph": "i", "pid": 1, "tid": 2, "ts": 0}])");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("#1"), std::string::npos) << s.ToString();
}

// In-memory queries sampled under kAlways produce query/round spans whose
// export is valid — the end-to-end path the flight recorder reuses.
TEST_F(TraceTest, SampledQueryEmitsQueryAndRoundSpans) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 4, /*seed=*/3);
  ASSERT_TRUE(pd.ok());
  C2lshOptions options;
  options.w = 1.0;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 3;
  auto index = C2lshIndex::Build(pd->data, options);
  ASSERT_TRUE(index.ok());
  Tracer::Global().Clear();
  auto r = index->Query(pd->data, pd->queries.row(0), 5);
  ASSERT_TRUE(r.ok());

  bool saw_query = false, saw_round = false;
  uint64_t query_id = 0;
  for (const TraceEvent& e : Tracer::Global().SnapshotAll()) {
    if (std::string(e.name) == "c2lsh_query") {
      saw_query = true;
      query_id = e.query_id;
    }
    if (e.subsystem == SpanSubsystem::kRound) saw_round = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_round);
  EXPECT_NE(query_id, 0u) << "sampled query did not get a trace id";
}

}  // namespace
}  // namespace obs
}  // namespace c2lsh
