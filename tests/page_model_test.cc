#include "src/storage/page_model.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(PageModelTest, PagesForBytes) {
  PageModel m(4096);
  EXPECT_EQ(m.PagesForBytes(0), 0u);
  EXPECT_EQ(m.PagesForBytes(1), 1u);
  EXPECT_EQ(m.PagesForBytes(4096), 1u);
  EXPECT_EQ(m.PagesForBytes(4097), 2u);
  EXPECT_EQ(m.PagesForBytes(3 * 4096), 3u);
}

TEST(PageModelTest, PagesForEntries) {
  PageModel m(4096);
  // 4-byte entries: 1024 per page.
  EXPECT_EQ(m.PagesForEntries(1024, 4), 1u);
  EXPECT_EQ(m.PagesForEntries(1025, 4), 2u);
  EXPECT_EQ(m.PagesForEntries(0, 4), 0u);
}

TEST(PageModelTest, EntriesPerPage) {
  PageModel m(4096);
  EXPECT_EQ(m.EntriesPerPage(4), 1024u);
  EXPECT_EQ(m.EntriesPerPage(12), 341u);
  EXPECT_EQ(m.EntriesPerPage(0), 0u);
}

TEST(PageModelTest, PagesPerVector) {
  PageModel m(4096);
  EXPECT_EQ(m.PagesPerVector(32), 1u);     // 128 bytes
  EXPECT_EQ(m.PagesPerVector(1024), 1u);   // exactly one page
  EXPECT_EQ(m.PagesPerVector(1025), 2u);   // just over
  EXPECT_EQ(m.PagesPerVector(512), 1u);
}

TEST(PageModelTest, NonDefaultPageSize) {
  PageModel m(512);
  EXPECT_EQ(m.page_bytes(), 512u);
  EXPECT_EQ(m.PagesForBytes(513), 2u);
  EXPECT_EQ(m.PagesPerVector(512), 4u);  // 2048 bytes / 512
}

TEST(IoCounterTest, AccumulatesAndResets) {
  IoCounter io;
  EXPECT_EQ(io.total_pages(), 0u);
  io.AddIndexPages(3);
  io.AddDataPages(5);
  io.AddIndexPages(2);
  EXPECT_EQ(io.index_pages(), 5u);
  EXPECT_EQ(io.data_pages(), 5u);
  EXPECT_EQ(io.total_pages(), 10u);
  io.Reset();
  EXPECT_EQ(io.total_pages(), 0u);
}

}  // namespace
}  // namespace c2lsh
