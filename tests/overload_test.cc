// AdmissionController tests: bounded in-flight concurrency, bounded wait
// queue, queue timeout, deadline/cancellation while queued — and an overload
// stress run with concurrent clients querying a FaultInjectionEnv-backed
// disk index, the configuration the TSan race lane replays.

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/serve/admission.h"
#include "src/util/fault_env.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/timer.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

TEST(AdmissionTest, AdmitsUpToCapacityImmediately) {
  AdmissionOptions o;
  o.max_in_flight = 2;
  AdmissionController ac(o);

  auto t1 = ac.Admit();
  auto t2 = ac.Admit();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_TRUE(t1->valid() && t2->valid());
  EXPECT_EQ(ac.stats().in_flight, 2u);
  EXPECT_EQ(ac.stats().admitted, 2u);

  t1->Release();
  EXPECT_EQ(ac.stats().in_flight, 1u);
  t1->Release();  // idempotent
  EXPECT_EQ(ac.stats().in_flight, 1u);
}

TEST(AdmissionTest, TicketReleasesOnDestructionAndMove) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  AdmissionController ac(o);
  {
    auto t = ac.Admit();
    ASSERT_TRUE(t.ok());
    AdmissionController::Ticket moved = std::move(t).value();
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(ac.stats().in_flight, 1u);
  }  // moved-to ticket destroyed here
  EXPECT_EQ(ac.stats().in_flight, 0u);
}

TEST(AdmissionTest, ShedsImmediatelyWhenQueueDisabled) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  o.max_queue = 0;  // no queue: beyond capacity sheds at once
  AdmissionController ac(o);

  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());
  Timer timer;
  auto shed = ac.Admit();
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_LT(timer.ElapsedMillis(), 25.0);  // immediate, not a timed-out wait
  EXPECT_EQ(ac.stats().shed_queue_full, 1u);
}

TEST(AdmissionTest, QueueTimeoutShedsWaiter) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  o.max_queue = 4;
  o.queue_timeout_millis = 30.0;
  AdmissionController ac(o);

  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());
  Timer timer;
  auto shed = ac.Admit();
  const double waited = timer.ElapsedMillis();
  EXPECT_TRUE(shed.status().IsUnavailable());
  EXPECT_GE(waited, o.queue_timeout_millis);  // actually waited the timeout out
  EXPECT_EQ(ac.stats().shed_timeout, 1u);
  EXPECT_EQ(ac.stats().queued, 0u);  // waiter left the queue on the way out
}

TEST(AdmissionTest, DeadlineExpiryWhileQueuedSheds) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  o.max_queue = 4;
  o.queue_timeout_millis = 0.0;  // timeout disabled: only the ctx bounds the wait
  AdmissionController ac(o);

  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(20);
  Timer timer;
  auto shed = ac.Admit(&ctx);
  EXPECT_TRUE(shed.status().IsUnavailable());
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_EQ(ac.stats().shed_deadline, 1u);
  EXPECT_EQ(ac.stats().queued, 0u);
}

TEST(AdmissionTest, ExpiredContextShedsBeforeQueueing) {
  AdmissionOptions o;
  o.max_in_flight = 4;
  AdmissionController ac(o);
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMicros(-1);
  auto shed = ac.Admit(&ctx);
  EXPECT_TRUE(shed.status().IsUnavailable());
  EXPECT_EQ(ac.stats().shed_deadline, 1u);
  EXPECT_EQ(ac.stats().in_flight, 0u);  // no slot consumed
}

TEST(AdmissionTest, CancellationUnblocksQueuedCaller) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  o.max_queue = 4;
  o.queue_timeout_millis = 0.0;
  AdmissionController ac(o);

  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());
  CancellationToken token;
  QueryContext ctx;
  ctx.cancel = &token;

  Result<AdmissionController::Ticket> shed = Status::Internal("never ran");
  std::thread waiter([&] { shed = ac.Admit(&ctx); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel();  // the only way out: no slot ever frees, no timeout armed
  waiter.join();

  EXPECT_TRUE(shed.status().IsUnavailable());
  EXPECT_EQ(ac.stats().shed_deadline, 1u);
  EXPECT_EQ(ac.stats().queued, 0u);
}

TEST(AdmissionTest, ReleaseWakesQueuedWaiter) {
  AdmissionOptions o;
  o.max_in_flight = 1;
  o.max_queue = 4;
  o.queue_timeout_millis = 5000.0;  // far beyond what the test should need
  AdmissionController ac(o);

  auto held = ac.Admit();
  ASSERT_TRUE(held.ok());
  Result<AdmissionController::Ticket> second = Status::Internal("never ran");
  Timer timer;
  std::thread waiter([&] { second = ac.Admit(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  held->Release();
  waiter.join();

  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_LT(timer.ElapsedMillis(), 4000.0);  // woke on release, not timeout
  EXPECT_EQ(ac.stats().admitted, 2u);
  EXPECT_EQ(ac.stats().shed_timeout, 0u);
}

// The acceptance stress test: more clients than capacity against a
// FaultInjectionEnv-backed disk index. The controller must keep observed
// concurrency within max_in_flight, shed the overflow with Unavailable, and
// every admitted query must still succeed (the armed fault burst stays
// within the retry budget).
//
// Overload is forced, not raced: the test holds every in-flight slot itself
// until it has observed a shed, so shed > 0 does not depend on query latency
// — which differs by an order of magnitude between the default build and the
// single-core TSan run of the race lane.
TEST(AdmissionTest, OverloadStressShedsAndBoundsConcurrency) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("c2lsh_overload_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "stress.pf").string();

  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 8, 89);
  ASSERT_TRUE(pd.ok());
  C2lshOptions opt;
  opt.seed = 97;
  FaultInjectionEnv env(Env::Default());
  {
    auto built = DiskC2lshIndex::Build(pd->data, opt, path, 256, true, &env);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  AdmissionOptions ao;
  ao.max_in_flight = 2;
  ao.max_queue = 2;
  ao.queue_timeout_millis = 10.0;
  AdmissionController ac(ao);

  // Hold both slots: the first wave of client arrivals must queue and then
  // shed (queue timeout or queue-full), never run.
  auto gate1 = ac.Admit();
  auto gate2 = ac.Admit();
  ASSERT_TRUE(gate1.ok() && gate2.ok());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 3;
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // DiskC2lshIndex::Query is not thread-safe; every client opens its own
      // handle on the shared file through the shared (thread-safe) env.
      auto disk = DiskC2lshIndex::Open(path, 32, &env);
      if (!disk.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < kQueriesPerThread; ++q) {
        QueryContext ctx;
        ctx.deadline = Deadline::AfterMillis(500);
        auto ticket = ac.Admit(&ctx);
        if (!ticket.ok()) {
          if (!ticket.status().IsUnavailable()) ++failures;
          ++shed;
          continue;
        }
        const int now = ++running;
        int seen = max_running.load();
        while (now > seen && !max_running.compare_exchange_weak(seen, now)) {
        }
        auto r = disk->Query(pd->queries.row((t + q) % 8), 5, nullptr, nullptr, &ctx);
        // Deadline partials are fine; anything else must be clean.
        if (!r.ok()) ++failures;
        --running;
        ++admitted;
      }
    });
  }
  // Wait until overload has demonstrably shed an arrival. The first queued
  // waiter sheds on its 10 ms queue timeout, so this converges fast; the
  // elapsed bound only guards against a wedged build.
  Timer gate_timer;
  while (shed.load() == 0 && failures.load() == 0 &&
         gate_timer.ElapsedMillis() < 60000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Recovery phase: arm one short transient burst — two consecutive faults
  // sit within the default 4-attempt retry budget, so every admitted query
  // (and any still-opening handle) recovers — then free the slots.
  env.SetTransientReadFaults(2);
  gate1->Release();
  gate2->Release();
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(admitted.load(), 0);
  EXPECT_GT(shed.load(), 0) << "overload never shed — the gate is not gating";
  EXPECT_LE(max_running.load(), static_cast<int>(ao.max_in_flight));
  EXPECT_EQ(admitted.load() + shed.load(), kThreads * kQueriesPerThread);

  const AdmissionStats s = ac.stats();
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.queued, 0u);
  // + 2 for the gate tickets the test itself held.
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(admitted.load()) + 2u);
  EXPECT_EQ(s.shed_queue_full + s.shed_timeout + s.shed_deadline,
            static_cast<uint64_t>(shed.load()));

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace c2lsh
