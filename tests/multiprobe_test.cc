#include "src/baselines/multiprobe.h"

#include <set>

#include <gtest/gtest.h>

#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

TEST(PerturbationTest, EmptyInputs) {
  EXPECT_TRUE(GeneratePerturbations({}, {}, 5).empty());
  EXPECT_TRUE(GeneratePerturbations({1.0}, {2.0}, 0).empty());
}

TEST(PerturbationTest, ScoresNonDecreasing) {
  const std::vector<double> xm = {0.3, 1.2, 0.7, 2.0};
  const std::vector<double> xp = {1.7, 0.8, 1.3, 0.1};
  const auto probes = GeneratePerturbations(xm, xp, 20);
  ASSERT_FALSE(probes.empty());
  for (size_t i = 1; i < probes.size(); ++i) {
    EXPECT_GE(probes[i].score, probes[i - 1].score);
  }
}

TEST(PerturbationTest, FirstProbeIsCheapestSingleStep) {
  const std::vector<double> xm = {0.9, 0.2, 0.8};
  const std::vector<double> xp = {0.5, 0.7, 0.6};
  const auto probes = GeneratePerturbations(xm, xp, 5);
  ASSERT_FALSE(probes.empty());
  // Cheapest single perturbation: coordinate 1 with delta -1 (x = 0.2).
  EXPECT_NEAR(probes[0].score, 0.04, 1e-12);
  ASSERT_EQ(probes[0].deltas.size(), 3u);
  EXPECT_EQ(probes[0].deltas[1], -1);
  EXPECT_EQ(probes[0].deltas[0], 0);
  EXPECT_EQ(probes[0].deltas[2], 0);
}

TEST(PerturbationTest, NoCoordinatePerturbedTwiceAndNonEmpty) {
  const std::vector<double> xm = {0.1, 0.2};
  const std::vector<double> xp = {0.15, 0.25};
  const auto probes = GeneratePerturbations(xm, xp, 8);
  for (const Perturbation& p : probes) {
    int nonzero = 0;
    for (int8_t d : p.deltas) {
      EXPECT_GE(d, -1);
      EXPECT_LE(d, 1);
      if (d != 0) ++nonzero;
    }
    EXPECT_GE(nonzero, 1);  // the empty probe (home bucket) is not emitted
  }
}

TEST(PerturbationTest, ScoreMatchesDeltas) {
  const std::vector<double> xm = {0.4, 1.0};
  const std::vector<double> xp = {0.6, 0.3};
  const auto probes = GeneratePerturbations(xm, xp, 10);
  for (const Perturbation& p : probes) {
    double expected = 0.0;
    for (size_t i = 0; i < p.deltas.size(); ++i) {
      if (p.deltas[i] == -1) expected += xm[i] * xm[i];
      if (p.deltas[i] == +1) expected += xp[i] * xp[i];
    }
    EXPECT_NEAR(p.score, expected, 1e-12);
  }
}

TEST(PerturbationTest, DistinctProbes) {
  const std::vector<double> xm = {0.2, 0.5, 0.9};
  const std::vector<double> xp = {0.8, 0.4, 0.1};
  const auto probes = GeneratePerturbations(xm, xp, 15);
  std::set<std::vector<int8_t>> unique;
  for (const Perturbation& p : probes) unique.insert(p.deltas);
  EXPECT_EQ(unique.size(), probes.size());
}

MultiProbeOptions SmallOptions() {
  MultiProbeOptions o;
  o.K = 6;
  o.L = 6;
  o.w = 16.0;
  o.num_probes = 16;
  o.seed = 3;
  return o;
}

TEST(MultiProbeIndexTest, Validation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 1);
  ASSERT_TRUE(pd.ok());
  MultiProbeOptions o = SmallOptions();
  o.K = 0;
  EXPECT_TRUE(MultiProbeIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.w = 0;
  EXPECT_TRUE(MultiProbeIndex::Build(pd->data, o).status().IsInvalidArgument());
}

TEST(MultiProbeIndexTest, FindsExactDuplicate) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 1, 5);
  ASSERT_TRUE(pd.ok());
  auto index = MultiProbeIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (ObjectId target : {0u, 700u, 1499u}) {
    auto r = index->Query(pd->data, pd->data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    EXPECT_EQ((*r)[0].id, target);
  }
}

TEST(MultiProbeIndexTest, MoreProbesAtLeastAsMuchRecall) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 3000, 16, 7);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());

  auto run = [&](size_t probes) {
    MultiProbeOptions o = SmallOptions();
    o.num_probes = probes;
    auto index = MultiProbeIndex::Build(pd->data, o);
    EXPECT_TRUE(index.ok());
    double hits = 0;
    for (size_t q = 0; q < 16; ++q) {
      auto r = index->Query(pd->data, pd->queries.row(q), 10);
      EXPECT_TRUE(r.ok());
      std::set<ObjectId> truth;
      for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
      for (const Neighbor& nb : *r) hits += truth.count(nb.id);
    }
    return hits / 160.0;
  };

  const double r0 = run(0);
  const double r32 = run(32);
  EXPECT_GE(r32 + 0.05, r0);  // statistically at least as good
  EXPECT_GT(r32, 0.3);        // and respectable in absolute terms
}

TEST(MultiProbeIndexTest, ProbeCountStat) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 1, 9);
  ASSERT_TRUE(pd.ok());
  MultiProbeOptions o = SmallOptions();
  o.num_probes = 10;
  auto index = MultiProbeIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());
  MultiProbeQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 5, &stats);
  ASSERT_TRUE(r.ok());
  // Home + up to 10 perturbed probes per table.
  EXPECT_GE(stats.buckets_probed, o.L * 1u);
  EXPECT_LE(stats.buckets_probed, o.L * 11u);
}

TEST(MultiProbeIndexTest, Deterministic) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 600, 4, 11);
  ASSERT_TRUE(pd.ok());
  auto a = MultiProbeIndex::Build(pd->data, SmallOptions());
  auto b = MultiProbeIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t q = 0; q < 4; ++q) {
    auto ra = a->Query(pd->data, pd->queries.row(q), 5);
    auto rb = b->Query(pd->data, pd->queries.row(q), 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
    }
  }
}

}  // namespace
}  // namespace c2lsh
