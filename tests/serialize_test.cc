#include "src/core/serialize.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/util/fault_env.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_ser_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto pd = MakeProfileDataset(DatasetProfile::kColor, 1200, 8, 5);
    ASSERT_TRUE(pd.ok());
    data_ = std::make_unique<Dataset>(std::move(pd->data));
    queries_ = std::make_unique<FloatMatrix>(std::move(pd->queries));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  C2lshIndex BuildIndex() {
    C2lshOptions o;
    o.seed = 11;
    auto index = C2lshIndex::Build(*data_, o);
    EXPECT_TRUE(index.ok());
    return std::move(index).value();
  }

  std::filesystem::path dir_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<FloatMatrix> queries_;
};

TEST_F(SerializeTest, RoundTripPreservesAnswers) {
  C2lshIndex index = BuildIndex();
  std::vector<NeighborList> before;
  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = index.Query(*data_, queries_->row(q), 10);
    ASSERT_TRUE(r.ok());
    before.push_back(std::move(r).value());
  }

  const std::string path = Path("index.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_tables(), index.num_tables());
  EXPECT_EQ(loaded->num_objects(), index.num_objects());
  EXPECT_EQ(loaded->dim(), index.dim());
  EXPECT_EQ(loaded->radius_cap(), index.radius_cap());
  EXPECT_EQ(loaded->derived().m, index.derived().m);
  EXPECT_EQ(loaded->derived().l, index.derived().l);

  for (size_t q = 0; q < queries_->num_rows(); ++q) {
    auto r = loaded->Query(*data_, queries_->row(q), 10);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), before[q].size());
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].id, before[q][i].id) << "q=" << q << " i=" << i;
      EXPECT_EQ((*r)[i].dist, before[q][i].dist);
    }
  }
}

TEST_F(SerializeTest, RoundTripAfterDynamicUpdates) {
  C2lshIndex index = BuildIndex();
  ASSERT_TRUE(index.Delete(7).ok());
  ASSERT_TRUE(index.Delete(42).ok());

  const std::string path = Path("dyn.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index).ok());  // compacts internally
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok());

  // Deleted objects stay deleted in the reloaded index.
  auto r = loaded->Query(*data_, data_->object(7), 1);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_NE((*r)[0].id, 7u);
}

TEST_F(SerializeTest, MissingFile) {
  EXPECT_TRUE(LoadIndex(Path("missing.c2lsh")).status().IsIOError());
}

TEST_F(SerializeTest, GarbageFileRejected) {
  const std::string path = Path("garbage.c2lsh");
  std::ofstream(path) << "this is not an index";
  EXPECT_TRUE(LoadIndex(path).status().IsCorruption());
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  C2lshIndex index = BuildIndex();
  const std::string path = Path("full.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index).ok());
  const auto size = std::filesystem::file_size(path);

  // Truncate at several points: header, mid-functions, just before the CRC.
  for (double frac : {0.01, 0.5, 0.999}) {
    const std::string cut = Path("cut.c2lsh");
    std::filesystem::copy_file(path, cut,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(cut, static_cast<uintmax_t>(size * frac));
    EXPECT_TRUE(LoadIndex(cut).status().IsCorruption()) << "frac=" << frac;
  }
}

TEST_F(SerializeTest, BitFlipRejectedByChecksum) {
  C2lshIndex index = BuildIndex();
  const std::string path = Path("flip.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index).ok());

  // Flip one byte deep in the payload (a table entry, past the header).
  const auto size = std::filesystem::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();

  EXPECT_TRUE(LoadIndex(path).status().IsCorruption());
}

TEST_F(SerializeTest, SaveNullRejected) {
  EXPECT_TRUE(SaveIndex(Path("x.c2lsh"), nullptr).IsInvalidArgument());
}

TEST_F(SerializeTest, V1FormatVersionRejectedAsNotSupported) {
  C2lshIndex index = BuildIndex();
  const std::string path = Path("v1.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index).ok());
  // Patch the version field (u32 right after the u64 magic) down to 1,
  // impersonating a file from the pre-checksum-rework era.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const uint32_t v1 = 1;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&v1), sizeof(v1));
  }
  Status st = LoadIndex(path).status();
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_NE(std::string(st.message()).find("version 1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(std::string(st.message()).find("rebuild"), std::string::npos)
      << st.ToString();
}

TEST_F(SerializeTest, RoutesThroughTheProvidedEnv) {
  C2lshIndex index = BuildIndex();
  FaultInjectionEnv env(Env::Default());
  const std::string path = Path("env.c2lsh");
  ASSERT_TRUE(SaveIndex(path, &index, &env).ok());
  EXPECT_GT(env.stats().writes, 0u);
  EXPECT_GT(env.stats().syncs, 0u);  // Save ends with a durability sync

  auto loaded = LoadIndex(path, &env);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(env.stats().reads, 0u);

  // A bit flip injected at read time (the file itself untouched) is caught
  // by the checksum like an on-disk one.
  env.SetReadCorruption(std::filesystem::file_size(path) / 2, 0x08);
  EXPECT_TRUE(LoadIndex(path, &env).status().IsCorruption());
  env.ClearReadCorruption();
  EXPECT_TRUE(LoadIndex(path, &env).ok());
}

}  // namespace
}  // namespace c2lsh
