#include "src/baselines/lsb/zorder.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace c2lsh {
namespace {

std::vector<uint64_t> Encode(const ZOrderEncoder& enc, const std::vector<BucketId>& comps) {
  std::vector<uint64_t> key(enc.key_words());
  enc.Encode(comps, key.data());
  return key;
}

TEST(ZOrderTest, CreateValidation) {
  EXPECT_TRUE(ZOrderEncoder::Create(0, 8).status().IsInvalidArgument());
  EXPECT_TRUE(ZOrderEncoder::Create(4, 0).status().IsInvalidArgument());
  EXPECT_TRUE(ZOrderEncoder::Create(4, 33).status().IsInvalidArgument());
  EXPECT_TRUE(ZOrderEncoder::Create(4, 32).ok());
}

TEST(ZOrderTest, KeyGeometry) {
  auto enc = ZOrderEncoder::Create(3, 10);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->key_bits(), 30u);
  EXPECT_EQ(enc->key_words(), 1u);
  auto enc2 = ZOrderEncoder::Create(8, 16);  // 128 bits
  ASSERT_TRUE(enc2.ok());
  EXPECT_EQ(enc2->key_words(), 2u);
}

TEST(ZOrderTest, SingleComponentIsIdentityOrder) {
  // With u = 1, z-order is just the (recentered) value, so ordering of keys
  // matches ordering of components.
  auto enc = ZOrderEncoder::Create(1, 16);
  ASSERT_TRUE(enc.ok());
  const auto k1 = Encode(*enc, {-5});
  const auto k2 = Encode(*enc, {0});
  const auto k3 = Encode(*enc, {7});
  EXPECT_LT(ZOrderEncoder::Compare(k1.data(), k2.data(), 1), 0);
  EXPECT_LT(ZOrderEncoder::Compare(k2.data(), k3.data(), 1), 0);
  EXPECT_EQ(ZOrderEncoder::Compare(k2.data(), k2.data(), 1), 0);
}

TEST(ZOrderTest, InterleavingHandComputed) {
  // u = 2, v = 2; components (1, 2) recentered by +2 become (3, 0b00...).
  // Actually offset = 2^(v-1) = 2: values (1+2, 2+2) = (3, 4) -> clamp 4 to
  // 3 (max = 2^2 - 1 = 3). Bits of 3 = 11, 3 = 11. Interleaved msb-first:
  // plane1: 1,1  plane0: 1,1  -> key bits 1111 at the top of the word.
  auto enc = ZOrderEncoder::Create(2, 2);
  ASSERT_TRUE(enc.ok());
  const auto key = Encode(*enc, {1, 2});
  EXPECT_EQ(key[0] >> 60, 0xFULL);
}

TEST(ZOrderTest, ClampingSaturates) {
  auto enc = ZOrderEncoder::Create(2, 4);
  ASSERT_TRUE(enc.ok());
  // Values beyond the representable range clamp to the extremes rather than
  // wrapping.
  const auto huge = Encode(*enc, {1000000, 1000000});
  const auto max_rep = Encode(*enc, {7, 7});  // max = 2^4-1-offset = 15-8 = 7
  EXPECT_EQ(ZOrderEncoder::Compare(huge.data(), max_rep.data(), enc->key_words()), 0);
  const auto tiny = Encode(*enc, {-1000000, -1000000});
  const auto min_rep = Encode(*enc, {-8, -8});
  EXPECT_EQ(ZOrderEncoder::Compare(tiny.data(), min_rep.data(), enc->key_words()), 0);
}

TEST(ZOrderTest, LlcpIdenticalKeys) {
  auto enc = ZOrderEncoder::Create(4, 16);
  ASSERT_TRUE(enc.ok());
  const auto k = Encode(*enc, {1, -2, 3, 4});
  EXPECT_EQ(ZOrderEncoder::Llcp(k.data(), k.data(), enc->key_words(), enc->key_bits()),
            enc->key_bits());
}

TEST(ZOrderTest, LlcpCountsAgreedPlanes) {
  // Two component vectors that agree on all high bit-planes but differ at
  // the lowest plane of one component: LLCP covers all full planes above the
  // disagreement.
  auto enc = ZOrderEncoder::Create(2, 8);
  ASSERT_TRUE(enc.ok());
  const auto a = Encode(*enc, {4, 4});
  const auto b = Encode(*enc, {4, 5});  // differ in lowest bit of comp 1
  const size_t llcp =
      ZOrderEncoder::Llcp(a.data(), b.data(), enc->key_words(), enc->key_bits());
  // Key bits = 16; the differing bit is the very last one.
  EXPECT_EQ(llcp, 15u);
  EXPECT_EQ(enc->LevelForLlcp(llcp), 7u);  // 7 of 8 planes fully agreed
}

TEST(ZOrderTest, CloserComponentsLongerLlcp) {
  auto enc = ZOrderEncoder::Create(2, 12);
  ASSERT_TRUE(enc.ok());
  const auto q = Encode(*enc, {100, -50});
  const auto near = Encode(*enc, {101, -50});
  const auto far = Encode(*enc, {100, 900});
  const size_t llcp_near =
      ZOrderEncoder::Llcp(q.data(), near.data(), enc->key_words(), enc->key_bits());
  const size_t llcp_far =
      ZOrderEncoder::Llcp(q.data(), far.data(), enc->key_words(), enc->key_bits());
  EXPECT_GT(llcp_near, llcp_far);
}

TEST(ZOrderTest, MultiWordKeysCompareAndLlcp) {
  auto enc = ZOrderEncoder::Create(10, 20);  // 200 bits, 4 words
  ASSERT_TRUE(enc.ok());
  ASSERT_EQ(enc->key_words(), 4u);
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BucketId> c1(10), c2(10);
    for (int j = 0; j < 10; ++j) {
      c1[j] = rng.UniformInt(-500, 500);
      c2[j] = rng.UniformInt(-500, 500);
    }
    const auto k1 = Encode(*enc, c1);
    const auto k2 = Encode(*enc, c2);
    const int cmp = ZOrderEncoder::Compare(k1.data(), k2.data(), 4);
    const int cmp_rev = ZOrderEncoder::Compare(k2.data(), k1.data(), 4);
    EXPECT_EQ(cmp, -cmp_rev);
    const size_t llcp = ZOrderEncoder::Llcp(k1.data(), k2.data(), 4, enc->key_bits());
    if (cmp == 0) {
      EXPECT_EQ(llcp, enc->key_bits());
    } else {
      EXPECT_LT(llcp, enc->key_bits());
    }
    // LLCP is symmetric.
    EXPECT_EQ(llcp, ZOrderEncoder::Llcp(k2.data(), k1.data(), 4, enc->key_bits()));
  }
}

TEST(ZOrderTest, EncodeDeterministic) {
  auto enc = ZOrderEncoder::Create(3, 16);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(Encode(*enc, {1, 2, 3}), Encode(*enc, {1, 2, 3}));
  EXPECT_NE(Encode(*enc, {1, 2, 3}), Encode(*enc, {1, 2, 4}));
}

}  // namespace
}  // namespace c2lsh
