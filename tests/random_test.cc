#include "src/util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(SplitMixTest, DeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Consecutive inputs should differ in many bits (avalanche sanity check).
  const uint64_t a = SplitMix64(100);
  const uint64_t b = SplitMix64(101);
  int diff_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(diff_bits, 16);
  EXPECT_LT(diff_bits, 48);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIndependence) {
  Rng base(7);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  Rng f1_again = base.Fork(1);
  EXPECT_EQ(f1.Next64(), f1_again.Next64());
  EXPECT_NE(f1.Next64(), f2.Next64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values of a tiny range appear
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianVectorSizeAndVariance) {
  Rng rng(9);
  std::vector<float> v;
  rng.GaussianVector(10000, &v);
  ASSERT_EQ(v.size(), 10000u);
  double sum_sq = 0.0;
  for (float x : v) sum_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(sum_sq / 10000.0, 1.0, 0.08);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(10);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(11);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, IndexBounds) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
  EXPECT_EQ(rng.Index(1), 0u);
}

}  // namespace
}  // namespace c2lsh
