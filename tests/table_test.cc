#include "src/eval/table.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(TableTest, AlignedRendering) {
  TablePrinter t({"dataset", "k", "ratio"});
  t.AddRow({"Audio", "10", "1.023"});
  t.AddRow({"LabelMe-long-name", "100", "1.5"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("dataset"), std::string::npos);
  EXPECT_NE(out.find("-------"), std::string::npos);
  EXPECT_NE(out.find("LabelMe-long-name"), std::string::npos);
  // Header rule line present between header and rows.
  const size_t header_pos = out.find("dataset");
  const size_t rule_pos = out.find("---");
  const size_t row_pos = out.find("Audio");
  EXPECT_LT(header_pos, rule_pos);
  EXPECT_LT(rule_pos, row_pos);
}

TEST(TableTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  // Renders without crashing and contains the partial cell.
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 1), "2.0");
  EXPECT_EQ(TablePrinter::FmtInt(-42), "-42");
  EXPECT_EQ(TablePrinter::FmtBytes(512), "512 B");
  EXPECT_EQ(TablePrinter::FmtBytes(2048), "2.0 KiB");
  EXPECT_EQ(TablePrinter::FmtBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(TablePrinter::FmtBytes(size_t{5} << 30), "5.0 GiB");
}

}  // namespace
}  // namespace c2lsh
