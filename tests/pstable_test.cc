#include "src/lsh/pstable.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/math.h"
#include "src/vector/distance.h"
#include "src/vector/simd.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

TEST(PStableHashTest, DeterministicGivenSeed) {
  Rng rng1(5);
  Rng rng2(5);
  PStableHash h1 = PStableHash::Sample(8, 2.0, &rng1);
  PStableHash h2 = PStableHash::Sample(8, 2.0, &rng2);
  const float v[8] = {1, -1, 2, 0.5f, 3, -2, 0, 1};
  EXPECT_EQ(h1.Bucket(v), h2.Bucket(v));
  EXPECT_DOUBLE_EQ(h1.Project(v), h2.Project(v));
}

TEST(PStableHashTest, BucketIsFloorOfProjection) {
  Rng rng(9);
  PStableHash h = PStableHash::Sample(4, 1.5, &rng);
  const float v[4] = {0.3f, -1.2f, 2.0f, 0.0f};
  EXPECT_EQ(h.Bucket(v), static_cast<BucketId>(std::floor(h.Project(v) / 1.5)));
}

TEST(PStableHashTest, OffsetWithinWidth) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    PStableHash h = PStableHash::Sample(4, 3.0, &rng);
    EXPECT_GE(h.b(), 0.0);
    EXPECT_LT(h.b(), 3.0);
  }
}

TEST(PStableHashTest, TranslationShiftsProjection) {
  // Projection is affine: project(v + t*a/|a|^2 ... ) — simpler property:
  // project(v) - project(u) equals dot(a, v - u).
  Rng rng(13);
  PStableHash h = PStableHash::Sample(3, 1.0, &rng);
  const float v[3] = {1, 2, 3};
  const float u[3] = {0, -1, 5};
  float diff[3];
  for (int i = 0; i < 3; ++i) diff[i] = v[i] - u[i];
  EXPECT_NEAR(h.Project(v) - h.Project(u), Dot(h.a().data(), diff, 3), 1e-9);
}

TEST(PStableFamilyTest, SampleValidation) {
  EXPECT_TRUE(PStableFamily::Sample(0, 4, 1.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PStableFamily::Sample(4, 0, 1.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PStableFamily::Sample(4, 4, 0.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PStableFamily::Sample(4, 4, -1.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PStableFamily::Sample(4, 4, 1.0, 1).ok());
}

TEST(PStableFamilyTest, FunctionsAreDistinct) {
  auto fam = PStableFamily::Sample(10, 16, 1.0, 3);
  ASSERT_TRUE(fam.ok());
  // Two different functions must differ on their projection vectors.
  bool all_same = true;
  for (size_t j = 0; j < 16; ++j) {
    all_same &= (fam->function(0).a()[j] == fam->function(1).a()[j]);
  }
  EXPECT_FALSE(all_same);
}

TEST(PStableFamilyTest, BucketAllMatchesPerFunction) {
  auto fam = PStableFamily::Sample(6, 8, 2.0, 4);
  ASSERT_TRUE(fam.ok());
  const float v[8] = {1, 0, -1, 2, 0.5f, -0.5f, 3, 1};
  std::vector<BucketId> all;
  fam->BucketAll(v, &all);
  ASSERT_EQ(all.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(all[i], fam->function(i).Bucket(v));
  }
}

TEST(PStableFamilyTest, BucketColumnMatchesBucketAll) {
  auto data = GenerateUniform(50, 8, 21);
  ASSERT_TRUE(data.ok());
  auto fam = PStableFamily::Sample(4, 8, 1.0, 5);
  ASSERT_TRUE(fam.ok());
  for (size_t i = 0; i < fam->size(); ++i) {
    const auto column = fam->BucketColumn(data.value(), i);
    ASSERT_EQ(column.size(), 50u);
    for (size_t r = 0; r < 50; ++r) {
      std::vector<BucketId> all;
      fam->BucketAll(data->row(r), &all);
      EXPECT_EQ(column[r], all[i]);
    }
  }
}

TEST(PStableFamilyTest, FromPartsRoundTrip) {
  Rng rng(31);
  PStableHash original = PStableHash::Sample(6, 2.0, &rng);
  auto rebuilt = PStableHash::FromParts(original.a(), original.b(), original.w());
  ASSERT_TRUE(rebuilt.ok());
  const float v[6] = {1, -2, 0.5f, 3, -1, 2};
  EXPECT_EQ(rebuilt->Bucket(v), original.Bucket(v));
  EXPECT_DOUBLE_EQ(rebuilt->Project(v), original.Project(v));
}

TEST(PStableFamilyTest, FromPartsValidation) {
  EXPECT_TRUE(PStableHash::FromParts({}, 0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(PStableHash::FromParts({1.0f}, 0.0, 0.0).status().IsInvalidArgument());
}

TEST(PStableFamilyTest, FromFunctionsRoundTrip) {
  auto fam = PStableFamily::Sample(5, 8, 1.5, 7);
  ASSERT_TRUE(fam.ok());
  std::vector<PStableHash> funcs;
  for (size_t i = 0; i < fam->size(); ++i) {
    auto h = PStableHash::FromParts(fam->function(i).a(), fam->function(i).b(),
                                    fam->function(i).w());
    ASSERT_TRUE(h.ok());
    funcs.push_back(std::move(h).value());
  }
  auto rebuilt = PStableFamily::FromFunctions(std::move(funcs));
  ASSERT_TRUE(rebuilt.ok());
  const float v[8] = {1, 2, 3, 4, -1, -2, -3, -4};
  std::vector<BucketId> a, b;
  fam->BucketAll(v, &a);
  rebuilt->BucketAll(v, &b);
  EXPECT_EQ(a, b);
}

TEST(PStableFamilyTest, FromFunctionsValidation) {
  EXPECT_TRUE(PStableFamily::FromFunctions({}).status().IsInvalidArgument());
  Rng rng(9);
  std::vector<PStableHash> mixed;
  mixed.push_back(PStableHash::Sample(4, 1.0, &rng));
  mixed.push_back(PStableHash::Sample(4, 2.0, &rng));  // different w
  EXPECT_TRUE(PStableFamily::FromFunctions(std::move(mixed)).status().IsInvalidArgument());
}

TEST(PStableFamilyTest, OffsetSpanWidensOffsets) {
  // With span s, offsets land in [0, w*s).
  auto fam = PStableFamily::Sample(50, 4, 1.0, 11, /*offset_span=*/1024.0);
  ASSERT_TRUE(fam.ok());
  double max_b = 0.0;
  for (size_t i = 0; i < fam->size(); ++i) {
    EXPECT_GE(fam->function(i).b(), 0.0);
    EXPECT_LT(fam->function(i).b(), 1024.0);
    max_b = std::max(max_b, fam->function(i).b());
  }
  EXPECT_GT(max_b, 1.0);  // offsets actually use the widened span
  EXPECT_TRUE(
      PStableFamily::Sample(4, 4, 1.0, 1, /*offset_span=*/0.5).status().IsInvalidArgument());
}

// The packed matrix-vector path must reproduce the per-function quantized
// buckets EXACTLY — floor boundaries included — on every dispatch target the
// host supports (the simd.h dot/dot_rows exactness contract). m = 300
// exceeds the internal projection chunk, so the chunked loop is exercised.
TEST(PStableFamilyTest, PackedBucketsExactOnEveryIsa) {
  auto fam = PStableFamily::Sample(300, 33, 1.0, 17);
  ASSERT_TRUE(fam.ok());
  auto data = GenerateUniform(300, 33, 23);
  ASSERT_TRUE(data.ok());
  const simd::Isa original = simd::ActiveIsa();
  for (simd::Isa isa : simd::SupportedIsas()) {
    ASSERT_TRUE(simd::ForceIsa(isa));
    std::vector<BucketId> all;
    fam->BucketAll(data->row(0), &all);
    ASSERT_EQ(all.size(), fam->size());
    for (size_t i = 0; i < fam->size(); ++i) {
      ASSERT_EQ(all[i], fam->function(i).Bucket(data->row(0)))
          << simd::IsaName(isa) << " i=" << i;
    }
    for (size_t i : {size_t{0}, size_t{7}, size_t{299}}) {
      const auto column = fam->BucketColumn(data.value(), i);
      ASSERT_EQ(column.size(), data->num_rows());
      for (size_t r = 0; r < data->num_rows(); ++r) {
        ASSERT_EQ(column[r], fam->function(i).Bucket(data->row(r)))
            << simd::IsaName(isa) << " i=" << i << " r=" << r;
      }
    }
  }
  ASSERT_TRUE(simd::ForceIsa(original));
}

TEST(PStableFamilyTest, MemoryBytesCoversPackedMatrix) {
  auto fam = PStableFamily::Sample(10, 20, 1.0, 29);
  ASSERT_TRUE(fam.ok());
  EXPECT_GE(fam->packed_stride(), 20u);
  EXPECT_EQ(fam->packed_stride() % (kSimdAlignment / sizeof(float)), 0u);
  const size_t packed_bytes = 10 * fam->packed_stride() * sizeof(float);
  const size_t per_function_bytes = 10 * (20 * sizeof(float) + 2 * sizeof(double));
  EXPECT_GE(fam->MemoryBytes(), packed_bytes + per_function_bytes);
  // Every packed row must start kSimdAlignment-aligned.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(fam->packed_row(i)) % kSimdAlignment, 0u);
  }
}

// The heart of LSH: empirical collision frequency between points at a known
// distance must match the analytic p(s; w) within sampling tolerance.
class CollisionFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(CollisionFrequencyTest, MatchesAnalyticProbability) {
  const double s = GetParam();  // pairwise distance
  const double w = 4.0;
  const size_t dim = 16;
  const int trials = 20000;

  Rng rng(1234 + static_cast<uint64_t>(s * 1000));
  // Two points at exactly distance s along a random direction per trial.
  int collisions = 0;
  for (int t = 0; t < trials; ++t) {
    PStableHash h = PStableHash::Sample(dim, w, &rng);
    std::vector<float> a, dir;
    rng.GaussianVector(dim, &a);
    rng.GaussianVector(dim, &dir);
    double norm = std::sqrt(SquaredNorm(dir.data(), dim));
    std::vector<float> b(dim);
    for (size_t j = 0; j < dim; ++j) {
      b[j] = a[j] + static_cast<float>(s * dir[j] / norm);
    }
    if (h.Bucket(a.data()) == h.Bucket(b.data())) ++collisions;
  }
  const double freq = static_cast<double>(collisions) / trials;
  const double expected = PStableCollisionProbability(s, w);
  // 4-sigma binomial tolerance.
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(freq, expected, 4 * sigma + 0.005) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Distances, CollisionFrequencyTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 16.0));

}  // namespace
}  // namespace c2lsh
