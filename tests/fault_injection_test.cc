// Crash-safety and corruption-detection tests for the storage stack.
//
// The invariants under test (see docs/ARCHITECTURE.md, "Fault model &
// recovery invariants"):
//   1. Crash sweep: for EVERY possible crash point (torn Nth write, then all
//      later writes refused) during Create/Write/Sync or DiskC2lshIndex
//      Build, a subsequent Open either recovers a fully consistent state or
//      fails with Corruption. Never a silently inconsistent one.
//   2. Bit flips: any single flipped byte in the index file makes queries
//      either still-exactly-right, degraded-but-genuine, or a clean
//      Corruption error. Never silently wrong results.
//   3. Transient faults: Unavailable results from the env are retried with
//      observable counts and bounded exhaustion.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/storage/page_file.h"
#include "src/util/fault_env.h"
#include "src/vector/distance.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  /// Flips one byte of `path` in place; returns the original byte.
  static uint8_t FlipByteOnDisk(const std::string& path, uint64_t offset,
                                uint8_t mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    EXPECT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(offset));
    char flipped = static_cast<char>(static_cast<uint8_t>(b) ^ mask);
    f.write(&flipped, 1);
    return static_cast<uint8_t>(b);
  }
  static void RestoreByteOnDisk(const std::string& path, uint64_t offset,
                                uint8_t value) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    char b = static_cast<char>(value);
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// 1a. Crash sweep at the PageFile level.
// ---------------------------------------------------------------------------

// A deterministic workload with two Sync (publish) points: create the file,
// fill 4 pages with pattern 'A', sync; overwrite pages 1..2 with pattern
// 'B', sync. Every write the workload performs is a potential crash point.
Status RunPageFileWorkload(const std::string& path, Env* env) {
  constexpr size_t kPage = 256;
  auto f = PageFile::Create(path, kPage, env);
  C2LSH_RETURN_IF_ERROR(f.status());
  std::vector<uint8_t> buf(kPage);
  for (int i = 0; i < 4; ++i) {
    auto id = f->AllocatePage();
    C2LSH_RETURN_IF_ERROR(id.status());
    std::memset(buf.data(), 'A', kPage);
    C2LSH_RETURN_IF_ERROR(f->WritePage(id.value(), buf.data()));
  }
  C2LSH_RETURN_IF_ERROR(f->Sync());
  for (PageId id = 1; id <= 2; ++id) {
    std::memset(buf.data(), 'B', kPage);
    C2LSH_RETURN_IF_ERROR(f->WritePage(id, buf.data()));
  }
  return f->Sync();
}

TEST_F(FaultInjectionTest, PageFileCrashSweepRecoversOrReportsCorruption) {
  const std::string path = Path("sweep.pf");

  // Measure the workload's total write count with no fault armed.
  FaultInjectionEnv env(Env::Default());
  ASSERT_TRUE(RunPageFileWorkload(path, &env).ok());
  const uint64_t total_writes = env.stats().writes;
  ASSERT_GE(total_writes, 8u);  // 2 create + 4 pages + header + 2 pages + header

  for (uint64_t n = 1; n <= total_writes; ++n) {
    SCOPED_TRACE("crash at write " + std::to_string(n) + " of " +
                 std::to_string(total_writes));
    env.ClearCrash();
    env.SetCrashAfterWrites(static_cast<int64_t>(n));
    Status st = RunPageFileWorkload(path, &env);
    ASSERT_FALSE(st.ok());  // the workload must hit the crash
    ASSERT_TRUE(env.crashed());
    env.ClearCrash();  // "restart the process"

    auto reopened = PageFile::Open(path, &env);
    if (!reopened.ok()) {
      // Before the first publish the header may be torn: Corruption is the
      // required answer, anything else (e.g. a silently empty file) is not.
      EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
      continue;
    }
    // Open succeeded: the recovered state must be one the workload actually
    // published — 0 pages (created, nothing synced) or 4 pages. Every page
    // must read back either as a uniform published pattern or as a clean
    // Corruption (a torn in-place overwrite). Mixed bytes accepted by
    // ReadPage would mean the checksum missed a torn write.
    const uint64_t pages = reopened->num_pages();
    EXPECT_TRUE(pages == 0 || pages == 4) << pages;
    std::vector<uint8_t> buf(reopened->page_bytes());
    for (PageId id = 1; id <= pages; ++id) {
      Status rs = reopened->ReadPage(id, buf.data());
      if (!rs.ok()) {
        EXPECT_TRUE(rs.IsCorruption()) << rs.ToString();
        continue;
      }
      const uint8_t first = buf[0];
      EXPECT_TRUE(first == 'A' || first == 'B') << "page " << id;
      EXPECT_EQ(buf, std::vector<uint8_t>(buf.size(), first)) << "page " << id;
    }
  }
}

TEST_F(FaultInjectionTest, ShadowHeaderSurvivesTornHeaderWrite) {
  const std::string path = Path("shadow.pf");
  FaultInjectionEnv env(Env::Default());
  constexpr size_t kPage = 256;
  std::vector<uint8_t> buf(kPage, 0x5A);
  {
    auto f = PageFile::Create(path, kPage, &env);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    ASSERT_TRUE(f->Sync().ok());  // publish generation 2 in slot 1

    // Second sync performs exactly one write (the inactive header slot).
    // Tear it after 12 bytes: the slot's checksum cannot validate.
    std::memset(buf.data(), 0x6B, kPage);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    env.SetCrashAfterWrites(1);
    env.SetTornBytes(12);
    EXPECT_FALSE(f->Sync().ok());
  }
  env.ClearCrash();

  // The torn write destroyed only the *inactive* slot; the previous
  // generation is intact and Open recovers it.
  auto f = PageFile::Open(path, &env);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->num_pages(), 1u);
  // The page overwrite itself completed before the crash, so the page reads
  // back consistently with its new checksum.
  std::vector<uint8_t> back(kPage);
  ASSERT_TRUE(f->ReadPage(1, back.data()).ok());
  EXPECT_EQ(back, std::vector<uint8_t>(kPage, 0x6B));
  // And the recovered file can publish again.
  ASSERT_TRUE(f->Sync().ok());
  auto again = PageFile::Open(path, &env);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_pages(), 1u);
}

// ---------------------------------------------------------------------------
// 1b. Crash sweep at the DiskC2lshIndex level.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, DiskIndexBuildCrashSweep) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 150, 3, 77);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 79;
  o.page_bytes = 1024;  // small pages keep the write count (sweep size) low
  const std::string path = Path("crash_idx.pf");

  // Reference answers from the in-memory index with the same options/seed.
  auto mem = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(mem.ok());

  FaultInjectionEnv env(Env::Default());
  {
    auto clean = DiskC2lshIndex::Build(pd->data, o, path, 64,
                                       /*store_vectors=*/true, &env);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  }
  const uint64_t total_writes = env.stats().writes;
  ASSERT_GT(total_writes, 10u);

  uint64_t recovered = 0, corrupt = 0;
  for (uint64_t n = 1; n <= total_writes; ++n) {
    SCOPED_TRACE("crash at write " + std::to_string(n) + " of " +
                 std::to_string(total_writes));
    env.ClearCrash();
    env.SetCrashAfterWrites(static_cast<int64_t>(n));
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64,
                                       /*store_vectors=*/true, &env);
    ASSERT_FALSE(built.ok());  // deterministic workload: the crash must hit
    env.ClearCrash();

    auto reopened = DiskC2lshIndex::Open(path, 64, &env);
    if (!reopened.ok()) {
      ++corrupt;
      EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
      continue;
    }
    // Open after a crash succeeded: the index must be FULLY consistent —
    // every query answer identical to the in-memory reference.
    ++recovered;
    for (size_t q = 0; q < 3; ++q) {
      auto want = mem->Query(pd->data, pd->queries.row(q), 5);
      auto got = reopened->Query(pd->data, pd->queries.row(q), 5);
      ASSERT_TRUE(want.ok() && got.ok());
      ASSERT_EQ(got->size(), want->size()) << "q=" << q;
      for (size_t i = 0; i < want->size(); ++i) {
        EXPECT_EQ((*got)[i].id, (*want)[i].id) << "q=" << q;
        EXPECT_EQ((*got)[i].dist, (*want)[i].dist) << "q=" << q;
      }
    }
  }
  // Build publishes once at the end, so mid-build crashes must dominate and
  // be reported as Corruption; if the sweep somehow never exercised the
  // corrupt path the test is vacuous.
  EXPECT_GT(corrupt, 0u);
  // One write past the measured total: the build must succeed untouched.
  env.ClearCrash();
  env.SetCrashAfterWrites(static_cast<int64_t>(total_writes) + 1);
  auto full = DiskC2lshIndex::Build(pd->data, o, path, 64, true, &env);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto want = mem->Query(pd->data, pd->queries.row(0), 5);
  auto got = full->Query(pd->data, pd->queries.row(0), 5);
  ASSERT_TRUE(want.ok() && got.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*got)[i].id, (*want)[i].id);
  }
}

// ---------------------------------------------------------------------------
// 2. Bit flips: queries are never silently wrong.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, BitFlipSweepNeverSilentlyWrong) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 2, 83);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 89;
  o.page_bytes = 1024;
  const std::string path = Path("flip_idx.pf");
  const size_t dim = pd->data.dim();

  std::vector<NeighborList> clean;
  {
    auto disk = DiskC2lshIndex::Build(pd->data, o, path, 64);
    ASSERT_TRUE(disk.ok());
    for (size_t q = 0; q < 2; ++q) {
      auto r = disk->Query(pd->data, pd->queries.row(q), 5);
      ASSERT_TRUE(r.ok());
      clean.push_back(std::move(r).value());
    }
  }
  const uint64_t file_bytes = std::filesystem::file_size(path);
  ASSERT_GT(file_bytes, 10'000u);

  // Stride through the whole file: headers, entry pages, directory blobs,
  // meta blob, data segment all get hit.
  const uint64_t stride = file_bytes / 151 + 1;
  uint64_t flips = 0, exact = 0, degraded = 0, corrupt = 0;
  for (uint64_t off = 0; off < file_bytes; off += stride) {
    SCOPED_TRACE("bit flip at offset " + std::to_string(off));
    const uint8_t orig = FlipByteOnDisk(path, off, 0x40);
    ++flips;

    auto disk = DiskC2lshIndex::Open(path, 64);
    if (!disk.ok()) {
      ++corrupt;
      EXPECT_TRUE(disk.status().IsCorruption() || disk.status().IsNotSupported())
          << disk.status().ToString();
      RestoreByteOnDisk(path, off, orig);
      continue;
    }
    for (size_t q = 0; q < 2; ++q) {
      DiskQueryStats stats;
      auto r = disk->Query(pd->data, pd->queries.row(q), 5, &stats);
      if (!r.ok()) {
        ++corrupt;
        EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
        continue;
      }
      // Whatever came back must be genuine: real ids with their exact
      // distances (degraded queries may MISS neighbors, never invent them).
      for (const Neighbor& nb : *r) {
        ASSERT_LT(nb.id, pd->data.size());
        EXPECT_EQ(nb.dist, static_cast<float>(
                               L2(pd->queries.row(q), pd->data.object(nb.id), dim)));
      }
      if (stats.degraded) {
        ++degraded;
        EXPECT_GT(stats.tables_skipped + stats.candidates_skipped, 0u);
      } else {
        // No degradation observed: the answer must be bit-for-bit the clean
        // one (the flip landed in slack space or an unread region).
        ++exact;
        ASSERT_EQ(r->size(), clean[q].size());
        for (size_t i = 0; i < clean[q].size(); ++i) {
          EXPECT_EQ((*r)[i].id, clean[q][i].id);
          EXPECT_EQ((*r)[i].dist, clean[q][i].dist);
        }
      }
    }
    RestoreByteOnDisk(path, off, orig);
  }
  ASSERT_GT(flips, 100u);
  // The sweep must actually exercise the detection machinery: flips inside
  // pages are the common case and must surface as degraded or Corruption.
  EXPECT_GT(degraded + corrupt, 0u);
  // And the restore logic is sound: the untouched file still opens cleanly.
  auto final_open = DiskC2lshIndex::Open(path, 64);
  ASSERT_TRUE(final_open.ok()) << final_open.status().ToString();
}

TEST_F(FaultInjectionTest, DegradedQueryReportsSkippedTablesOrCandidates) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 91);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 97;
  o.page_bytes = 1024;
  const std::string path = Path("degraded_idx.pf");
  const size_t dim = pd->data.dim();
  {
    auto disk = DiskC2lshIndex::Build(pd->data, o, path, 64);
    ASSERT_TRUE(disk.ok());
  }

  // Inject read corruption into each data page in turn (via the fault env,
  // so the file itself is never modified) until a query observes a degraded
  // result. Pages read during Open fail there with Corruption instead —
  // also correct, keep scanning.
  FaultInjectionEnv env(Env::Default());
  constexpr uint64_t kHeaderRegion = 512;
  const uint64_t physical_page = o.page_bytes + 8;  // payload + crc footer
  const uint64_t file_bytes = std::filesystem::file_size(path);
  const uint64_t num_pages = (file_bytes - kHeaderRegion) / physical_page;

  bool saw_degraded = false;
  for (uint64_t page = 1; page <= num_pages && !saw_degraded; ++page) {
    SCOPED_TRACE("corrupting page " + std::to_string(page));
    env.SetReadCorruption(kHeaderRegion + (page - 1) * physical_page +
                              o.page_bytes / 2,
                          0xFF);
    auto disk = DiskC2lshIndex::Open(path, 8, &env);  // tiny pool: no caching
    if (!disk.ok()) {
      EXPECT_TRUE(disk.status().IsCorruption()) << disk.status().ToString();
      env.ClearReadCorruption();
      continue;
    }
    DiskQueryStats stats;
    auto r = disk->Query(pd->data, pd->queries.row(0), 5, &stats);
    env.ClearReadCorruption();
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
      continue;
    }
    if (stats.degraded) {
      saw_degraded = true;
      EXPECT_GT(stats.tables_skipped + stats.candidates_skipped, 0u);
      for (const Neighbor& nb : *r) {
        ASSERT_LT(nb.id, pd->data.size());
        EXPECT_EQ(nb.dist, static_cast<float>(
                               L2(pd->queries.row(0), pd->data.object(nb.id), dim)));
      }
    }
  }
  EXPECT_TRUE(saw_degraded)
      << "no page corruption ever produced a degraded (skip-and-continue) query";
}

// ---------------------------------------------------------------------------
// 3. Transient faults: retried, observable, bounded.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, PageFileRetriesTransientFaults) {
  FaultInjectionEnv env(Env::Default());
  auto f = PageFile::Create(Path("retry.pf"), 256, &env);
  ASSERT_TRUE(f.ok());
  RetryPolicy fast;
  fast.backoff_initial_us = 0;
  f->SetRetryPolicy(fast);

  auto id = f->AllocatePage();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(256, 0x2F);

  env.SetTransientWriteFaults(2);  // < max_attempts: the write must recover
  ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
  EXPECT_EQ(f->retry_stats().retries, 2u);
  EXPECT_EQ(f->retry_stats().exhausted, 0u);
  EXPECT_EQ(env.stats().transient_faults, 2u);

  env.SetTransientReadFaults(1);
  std::vector<uint8_t> back(256);
  ASSERT_TRUE(f->ReadPage(id.value(), back.data()).ok());
  EXPECT_EQ(back, buf);
  EXPECT_EQ(f->retry_stats().retries, 3u);
}

TEST_F(FaultInjectionTest, PageFileRetryExhaustionIsBounded) {
  FaultInjectionEnv env(Env::Default());
  auto f = PageFile::Create(Path("exhaust.pf"), 256, &env);
  ASSERT_TRUE(f.ok());
  RetryPolicy tight;
  tight.max_attempts = 3;
  tight.backoff_initial_us = 0;
  f->SetRetryPolicy(tight);
  auto id = f->AllocatePage();
  ASSERT_TRUE(id.ok());

  env.SetTransientWriteFaults(1000);  // persistent unavailability
  std::vector<uint8_t> buf(256, 1);
  Status st = f->WritePage(id.value(), buf.data());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();  // converted, never raw Unavailable
  EXPECT_GE(f->retry_stats().exhausted, 1u);
  // Bounded: exactly max_attempts probes hit the env for the failing op.
  EXPECT_EQ(env.stats().transient_faults, 3u);
  env.SetTransientWriteFaults(0);
  ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
}

TEST_F(FaultInjectionTest, DiskIndexQuerySurvivesTransientReadFaults) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 2, 101);
  ASSERT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 103;
  o.page_bytes = 1024;
  const std::string path = Path("transient_idx.pf");

  FaultInjectionEnv env(Env::Default());
  {
    auto built = DiskC2lshIndex::Build(pd->data, o, path, 64, true, &env);
    ASSERT_TRUE(built.ok());
  }
  auto disk = DiskC2lshIndex::Open(path, 8, &env);  // tiny pool: real reads
  ASSERT_TRUE(disk.ok());
  auto clean = disk->Query(pd->data, pd->queries.row(0), 5);
  ASSERT_TRUE(clean.ok());

  const uint64_t retries_before = disk->retry_stats().retries;
  env.SetTransientReadFaults(3);
  DiskQueryStats stats;
  auto r = disk->Query(pd->data, pd->queries.row(0), 5, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(stats.degraded);  // transient != corrupt: answers are complete
  EXPECT_GE(disk->retry_stats().retries, retries_before + 3);
  ASSERT_EQ(r->size(), clean->size());
  for (size_t i = 0; i < clean->size(); ++i) {
    EXPECT_EQ((*r)[i].id, (*clean)[i].id);
    EXPECT_EQ((*r)[i].dist, (*clean)[i].dist);
  }
}

// ---------------------------------------------------------------------------
// Sync-fault behavior.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, FailedSyncSurfacesAndDroppedSyncStaysConsistent) {
  FaultInjectionEnv env(Env::Default());
  const std::string path = Path("sync.pf");
  auto f = PageFile::Create(path, 256, &env);
  ASSERT_TRUE(f.ok());
  auto id = f->AllocatePage();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(256, 0x7E);
  ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());

  env.SetFailSyncs(true);
  EXPECT_TRUE(f->Sync().IsIOError());  // the failure is not swallowed
  env.SetFailSyncs(false);

  // A dropped (no-op) fsync without a crash is harmless: the data still hits
  // the file, and the next real Sync publishes it.
  env.SetDropSyncs(true);
  EXPECT_TRUE(f->Sync().ok());
  env.SetDropSyncs(false);
  auto reopened = PageFile::Open(path, &env);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_pages(), 1u);
  std::vector<uint8_t> back(256);
  ASSERT_TRUE(reopened->ReadPage(1, back.data()).ok());
  EXPECT_EQ(back, buf);
}

}  // namespace
}  // namespace c2lsh
