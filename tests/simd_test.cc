// Equivalence suite for the SIMD kernel layer: every dispatch target the
// host can reach is held against the scalar reference across dimensions
// around every unroll width, misaligned base pointers, and special float
// values. The dot/dot_rows exactness contract (src/vector/simd.h) is checked
// bit-for-bit, because packed BucketAll correctness depends on it.
#include "src/vector/simd.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/vector/aligned.h"

namespace c2lsh {
namespace simd {
namespace {

// Deterministic test vectors seasoned with the values SIMD lanes are most
// likely to mishandle: signed zeros, float denormals, and magnitudes large
// enough to expose float (rather than double) accumulation.
std::vector<float> MakeVector(size_t d, uint64_t seed, bool large) {
  Rng rng(seed);
  std::vector<float> v;
  rng.GaussianVector(d, &v);
  if (large) {
    for (float& x : v) x *= 1e18f;
  }
  for (size_t i = 0; i < d; i += 7) v[i] = (i % 14 == 0) ? 0.0f : -0.0f;
  for (size_t i = 3; i < d; i += 11) v[i] = 1.4e-42f;  // denormal
  for (size_t i = 5; i < d; i += 13) v[i] = -1.4e-42f;
  return v;
}

// Reassociation bound: both tables accumulate each term in double, so they
// agree to a few ulps of the magnitude sum of the terms.
double Tolerance(double magnitude_sum) {
  return 1e-12 * magnitude_sum + 1e-300;
}

double MagnitudeSumSquaredL2(const float* a, const float* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += diff * diff;
  }
  return s;
}

double MagnitudeSumDot(const float* a, const float* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) {
    s += std::fabs(static_cast<double>(a[i]) * static_cast<double>(b[i]));
  }
  return s;
}

// Every non-scalar ISA reachable on this host.
std::vector<Isa> NonScalarIsas() {
  std::vector<Isa> out;
  for (Isa isa : SupportedIsas()) {
    if (isa != Isa::kScalar) out.push_back(isa);
  }
  return out;
}

TEST(SimdTest, ScalarAlwaysSupported) {
  const std::vector<Isa> isas = SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  ASSERT_NE(KernelsFor(Isa::kScalar), nullptr);
  // Every reported ISA must come with a full table.
  for (Isa isa : isas) {
    const Kernels* k = KernelsFor(isa);
    ASSERT_NE(k, nullptr) << IsaName(isa);
    EXPECT_NE(k->squared_l2, nullptr);
    EXPECT_NE(k->l1, nullptr);
    EXPECT_NE(k->dot, nullptr);
    EXPECT_NE(k->squared_norm, nullptr);
    EXPECT_NE(k->dot_and_norms, nullptr);
    EXPECT_NE(k->dot_rows, nullptr);
    EXPECT_NE(k->dot_rows_multi, nullptr);
  }
}

TEST(SimdTest, IsaNamesRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    const auto parsed = IsaFromName(IsaName(isa));
    ASSERT_TRUE(parsed.has_value()) << IsaName(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(IsaFromName("sse9").has_value());
  EXPECT_FALSE(IsaFromName("").has_value());
}

TEST(SimdTest, ForceIsaRoundTrip) {
  const Isa original = ActiveIsa();
  for (Isa isa : SupportedIsas()) {
    ASSERT_TRUE(ForceIsa(isa)) << IsaName(isa);
    EXPECT_EQ(ActiveIsa(), isa);
    EXPECT_EQ(&Active(), KernelsFor(isa));
  }
  // Unavailable targets must be rejected without disturbing the active table.
  bool any_unavailable = false;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (KernelsFor(isa) == nullptr) {
      const Isa before = ActiveIsa();
      EXPECT_FALSE(ForceIsa(isa)) << IsaName(isa);
      EXPECT_EQ(ActiveIsa(), before);
      any_unavailable = true;
    }
  }
  (void)any_unavailable;
  ASSERT_TRUE(ForceIsa(original));
}

// Scalar-vs-SIMD agreement for every reduction kernel, swept over the
// dimensions around every unroll width (1..129 covers the 4/8/16-wide main
// loops, their 2x blocks, and all tail lengths), over misaligned base
// pointers, and over both moderate and large magnitudes.
TEST(SimdTest, AllKernelsMatchScalar) {
  const Kernels& scalar = *KernelsFor(Isa::kScalar);
  for (Isa isa : NonScalarIsas()) {
    const Kernels& k = *KernelsFor(isa);
    for (size_t d = 1; d <= 129; ++d) {
      for (bool large : {false, true}) {
        // Over-allocate so shifted base pointers still have d valid floats.
        const std::vector<float> a_buf = MakeVector(d + 3, 1000 + d, large);
        const std::vector<float> b_buf = MakeVector(d + 3, 2000 + d, large);
        for (size_t offset = 0; offset <= 3; ++offset) {
          const float* a = a_buf.data() + offset;
          const float* b = b_buf.data() + offset;

          const double l2_scale = MagnitudeSumSquaredL2(a, b, d);
          EXPECT_NEAR(k.squared_l2(a, b, d), scalar.squared_l2(a, b, d),
                      Tolerance(l2_scale))
              << IsaName(isa) << " squared_l2 d=" << d << " off=" << offset;

          double l1_scale = 0.0;
          for (size_t i = 0; i < d; ++i) {
            l1_scale += std::fabs(static_cast<double>(a[i]) - b[i]);
          }
          EXPECT_NEAR(k.l1(a, b, d), scalar.l1(a, b, d), Tolerance(l1_scale))
              << IsaName(isa) << " l1 d=" << d << " off=" << offset;

          const double dot_scale = MagnitudeSumDot(a, b, d);
          EXPECT_NEAR(k.dot(a, b, d), scalar.dot(a, b, d), Tolerance(dot_scale))
              << IsaName(isa) << " dot d=" << d << " off=" << offset;

          EXPECT_NEAR(k.squared_norm(a, d), scalar.squared_norm(a, d),
                      Tolerance(MagnitudeSumDot(a, a, d)))
              << IsaName(isa) << " squared_norm d=" << d << " off=" << offset;

          double dot_s, na_s, nb_s, dot_k, na_k, nb_k;
          scalar.dot_and_norms(a, b, d, &dot_s, &na_s, &nb_s);
          k.dot_and_norms(a, b, d, &dot_k, &na_k, &nb_k);
          EXPECT_NEAR(dot_k, dot_s, Tolerance(dot_scale))
              << IsaName(isa) << " dot_and_norms.dot d=" << d;
          EXPECT_NEAR(na_k, na_s, Tolerance(MagnitudeSumDot(a, a, d)))
              << IsaName(isa) << " dot_and_norms.na d=" << d;
          EXPECT_NEAR(nb_k, nb_s, Tolerance(MagnitudeSumDot(b, b, d)))
              << IsaName(isa) << " dot_and_norms.nb d=" << d;
        }
      }
    }
  }
}

TEST(SimdTest, SignedZerosAndDenormalsExact) {
  // Sums of zero products and denormal products are exact in double, so
  // every table must agree bit-for-bit here — no tolerance.
  const std::vector<float> zeros = {0.0f, -0.0f, 0.0f, -0.0f, 0.0f,
                                    -0.0f, 0.0f, -0.0f, 0.0f};
  const std::vector<float> denorm(9, 1.4e-42f);
  for (Isa isa : SupportedIsas()) {
    const Kernels& k = *KernelsFor(isa);
    for (size_t d = 1; d <= zeros.size(); ++d) {
      EXPECT_EQ(k.squared_l2(zeros.data(), zeros.data(), d), 0.0)
          << IsaName(isa) << " d=" << d;
      EXPECT_EQ(k.dot(zeros.data(), denorm.data(), d), 0.0)
          << IsaName(isa) << " d=" << d;
      EXPECT_GT(k.squared_norm(denorm.data(), d), 0.0)
          << IsaName(isa) << " denormals must not flush to zero, d=" << d;
    }
  }
}

// The exactness contract: dot_rows must reproduce this table's own dot
// bit-for-bit per row (padding never read), and dot must be exactly
// commutative. Checked for stride == d and for an aligned padded stride, at
// row counts covering every blocked-remainder path.
TEST(SimdTest, DotRowsBitIdenticalToDot) {
  for (Isa isa : SupportedIsas()) {
    const Kernels& k = *KernelsFor(isa);
    for (size_t d : {1u, 3u, 7u, 8u, 16u, 31u, 64u, 100u, 129u}) {
      for (size_t stride : {d, AlignedStride<float>(d)}) {
        for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 9u}) {
          AlignedVector<float> rows(n * stride, 7.7e33f);  // poison padding
          for (size_t r = 0; r < n; ++r) {
            const std::vector<float> row = MakeVector(d, 31 * r + d, false);
            for (size_t i = 0; i < d; ++i) rows[r * stride + i] = row[i];
          }
          const std::vector<float> v = MakeVector(d, 555 + d, false);
          std::vector<double> out(n, -1.0);
          k.dot_rows(rows.data(), n, stride, d, v.data(), out.data());
          for (size_t r = 0; r < n; ++r) {
            const float* row = rows.data() + r * stride;
            const double direct = k.dot(row, v.data(), d);
            EXPECT_EQ(out[r], direct)
                << IsaName(isa) << " d=" << d << " stride=" << stride
                << " n=" << n << " r=" << r;
            EXPECT_EQ(k.dot(v.data(), row, d), direct)
                << IsaName(isa) << " commutativity d=" << d << " r=" << r;
          }
        }
      }
    }
  }
}

// The batched extension of the same contract: dot_rows_multi must reproduce
// this table's own dot bit-for-bit per (row, query) pair. Query counts cover
// every query-block remainder (the 4-wide x86 blocks, the 2-wide NEON
// blocks, and their tails), row/query strides cover both tight and padded
// layouts, and padding lanes are poisoned so any out-of-range read shows.
TEST(SimdTest, DotRowsMultiBitIdenticalToDot) {
  for (Isa isa : SupportedIsas()) {
    const Kernels& k = *KernelsFor(isa);
    for (size_t d : {1u, 3u, 7u, 8u, 16u, 31u, 64u, 129u}) {
      for (size_t stride : {d, AlignedStride<float>(d)}) {
        for (size_t n : {1u, 3u, 5u}) {
          AlignedVector<float> rows(n * stride, 7.7e33f);  // poison padding
          for (size_t r = 0; r < n; ++r) {
            const std::vector<float> row = MakeVector(d, 31 * r + d, false);
            for (size_t i = 0; i < d; ++i) rows[r * stride + i] = row[i];
          }
          for (size_t nq : {1u, 2u, 3u, 4u, 5u, 7u, 9u}) {
            for (size_t qstride : {d, AlignedStride<float>(d)}) {
              AlignedVector<float> queries(nq * qstride, -3.3e33f);
              for (size_t q = 0; q < nq; ++q) {
                const std::vector<float> qv = MakeVector(d, 555 + 17 * q + d, false);
                for (size_t i = 0; i < d; ++i) queries[q * qstride + i] = qv[i];
              }
              std::vector<double> out(n * nq, -1.0);
              k.dot_rows_multi(rows.data(), n, stride, d, queries.data(), nq,
                               qstride, out.data());
              for (size_t r = 0; r < n; ++r) {
                for (size_t q = 0; q < nq; ++q) {
                  const double direct = k.dot(rows.data() + r * stride,
                                              queries.data() + q * qstride, d);
                  EXPECT_EQ(out[r * nq + q], direct)
                      << IsaName(isa) << " d=" << d << " stride=" << stride
                      << " n=" << n << " nq=" << nq << " qstride=" << qstride
                      << " r=" << r << " q=" << q;
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace simd
}  // namespace c2lsh
