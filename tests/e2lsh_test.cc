#include "src/baselines/e2lsh.h"

#include <set>

#include <gtest/gtest.h>

#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

E2lshOptions SmallOptions() {
  E2lshOptions o;
  o.K = 4;
  o.L = 16;
  o.w = 1.0;
  o.c = 2.0;
  o.max_rounds = 10;
  o.seed = 5;
  return o;
}

TEST(E2lshTest, Validation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 1, 1);
  ASSERT_TRUE(pd.ok());
  E2lshOptions o = SmallOptions();
  o.K = 0;
  EXPECT_TRUE(E2lshIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.L = 0;
  EXPECT_TRUE(E2lshIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.max_rounds = 0;
  EXPECT_TRUE(E2lshIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.c = 1.5;
  EXPECT_TRUE(E2lshIndex::Build(pd->data, o).status().IsInvalidArgument());
}

TEST(E2lshTest, SuggestedOptionsReasonable) {
  auto model = MakeCollisionModel(1.0, 2.0);
  ASSERT_TRUE(model.ok());
  const E2lshOptions o = SuggestE2lshOptions(20000, *model, 256);
  EXPECT_GE(o.K, 1u);
  EXPECT_LT(o.K, 64u);
  EXPECT_GE(o.L, 1u);
  EXPECT_LE(o.L, 256u);
}

TEST(E2lshTest, FindsExactDuplicate) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 1, 3);
  ASSERT_TRUE(pd.ok());
  auto index = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // A data point queried against itself collides in every table at R = 1.
  for (ObjectId target : {0u, 500u, 1999u}) {
    auto r = index->Query(pd->data, pd->data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    EXPECT_EQ((*r)[0].id, target);
    EXPECT_EQ((*r)[0].dist, 0.0f);
  }
}

TEST(E2lshTest, ReasonableRecallOnClusteredData) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 4000, 16, 7);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());
  auto index = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  double recall = 0.0;
  for (size_t q = 0; q < 16; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) recall += truth.count(nb.id);
  }
  EXPECT_GT(recall / 160.0, 0.4);
}

TEST(E2lshTest, ResultsSortedUniqueAndExactDistances) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 1500, 8, 9);
  ASSERT_TRUE(pd.ok());
  auto index = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 8; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> ids;
    for (size_t i = 0; i < r->size(); ++i) {
      ids.insert((*r)[i].id);
      if (i > 0) { EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist); }
      const double exact =
          L2(pd->queries.row(q), pd->data.object((*r)[i].id), pd->data.dim());
      EXPECT_NEAR((*r)[i].dist, exact, 1e-4);
    }
    EXPECT_EQ(ids.size(), r->size());
  }
}

TEST(E2lshTest, StatsPopulated) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 11);
  ASSERT_TRUE(pd.ok());
  auto index = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  E2lshQueryStats stats;
  auto r = index->Query(pd->data, pd->queries.row(0), 5, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.buckets_probed, 0u);
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_EQ(stats.buckets_probed, stats.rounds * 16);  // L probes per round
}

TEST(E2lshTest, VerificationBudgetRespected) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 4, 13);
  ASSERT_TRUE(pd.ok());
  E2lshOptions o = SmallOptions();
  o.verify_budget_per_table = 2;  // budget = 2L + k
  auto index = E2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 4; ++q) {
    E2lshQueryStats stats;
    auto r = index->Query(pd->data, pd->queries.row(q), 5, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(stats.candidates_verified, 2u * 16u + 5u);
  }
}

TEST(E2lshTest, DeterministicAcrossRebuilds) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 4, 15);
  ASSERT_TRUE(pd.ok());
  auto a = E2lshIndex::Build(pd->data, SmallOptions());
  auto b = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t q = 0; q < 4; ++q) {
    auto ra = a->Query(pd->data, pd->queries.row(q), 5);
    auto rb = b->Query(pd->data, pd->queries.row(q), 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
    }
  }
}

TEST(E2lshTest, MemoryGrowsWithLAndRounds) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 17);
  ASSERT_TRUE(pd.ok());
  E2lshOptions small = SmallOptions();
  small.L = 8;
  small.max_rounds = 4;
  E2lshOptions big = SmallOptions();
  big.L = 32;
  big.max_rounds = 8;
  auto a = E2lshIndex::Build(pd->data, small);
  auto b = E2lshIndex::Build(pd->data, big);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->MemoryBytes(), a->MemoryBytes() * 3);
}

TEST(E2lshTest, KZeroRejected) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 19);
  ASSERT_TRUE(pd.ok());
  auto index = E2lshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Query(pd->data, pd->queries.row(0), 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
