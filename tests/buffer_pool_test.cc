#include "src/storage/buffer_pool.h"

#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/storage/blob.h"
#include "src/util/random.h"

namespace c2lsh {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_bp_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto f = PageFile::Create((dir_ / "pool.pf").string(), 512);
    ASSERT_TRUE(f.ok());
    file_ = std::make_unique<PageFile>(std::move(f).value());
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(BufferPoolTest, CreateValidation) {
  EXPECT_TRUE(BufferPool::Create(nullptr, 4).status().IsInvalidArgument());
  EXPECT_TRUE(BufferPool::Create(file_.get(), 0).status().IsInvalidArgument());
  EXPECT_TRUE(BufferPool::Create(file_.get(), 4).ok());
}

TEST_F(BufferPoolTest, NewPageWriteFetchRoundTrip) {
  auto pool = BufferPool::Create(file_.get(), 4);
  ASSERT_TRUE(pool.ok());
  PageId id = 0;
  {
    auto page = pool->NewPage(&id);
    ASSERT_TRUE(page.ok());
    std::memset(page->mutable_data(), 0x3C, 512);
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  auto back = pool->Fetch(id);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(back->data()[i], 0x3C);
  }
}

TEST_F(BufferPoolTest, HitsAndMisses) {
  auto pool = BufferPool::Create(file_.get(), 4);
  ASSERT_TRUE(pool.ok());
  PageId a = 0, b = 0;
  { auto p = pool->NewPage(&a); ASSERT_TRUE(p.ok()); }
  { auto p = pool->NewPage(&b); ASSERT_TRUE(p.ok()); }
  pool->ResetStats();

  { auto p = pool->Fetch(a); ASSERT_TRUE(p.ok()); }  // hit (still resident)
  EXPECT_EQ(pool->stats().hits, 1u);
  EXPECT_EQ(pool->stats().misses, 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  auto pool = BufferPool::Create(file_.get(), 2);  // tiny pool
  ASSERT_TRUE(pool.ok());
  // Dirty page 1, then fill the pool with more pages to force eviction.
  PageId first = 0;
  {
    auto p = pool->NewPage(&first);
    ASSERT_TRUE(p.ok());
    std::memset(p->mutable_data(), 0x77, 512);
  }
  PageId other[3];
  for (auto& id : other) {
    auto p = pool->NewPage(&id);
    ASSERT_TRUE(p.ok());
  }
  EXPECT_GT(pool->stats().evictions, 0u);
  EXPECT_GT(pool->stats().writebacks, 0u);
  // The evicted dirty page must read back from the file intact.
  auto back = pool->Fetch(first);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(back->data()[i], 0x77);
  }
}

TEST_F(BufferPoolTest, LruKeepsHotPages) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId hot = 0, cold = 0, extra = 0;
  { auto p = pool->NewPage(&hot); ASSERT_TRUE(p.ok()); }
  { auto p = pool->NewPage(&cold); ASSERT_TRUE(p.ok()); }
  // Touch `hot` so `cold` is the LRU victim.
  { auto p = pool->Fetch(hot); ASSERT_TRUE(p.ok()); }
  { auto p = pool->NewPage(&extra); ASSERT_TRUE(p.ok()); }  // evicts cold
  pool->ResetStats();
  { auto p = pool->Fetch(hot); ASSERT_TRUE(p.ok()); }
  EXPECT_EQ(pool->stats().hits, 1u);
  { auto p = pool->Fetch(cold); ASSERT_TRUE(p.ok()); }
  EXPECT_EQ(pool->stats().misses, 1u);
}

TEST_F(BufferPoolTest, AllFramesPinnedFails) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId a = 0, b = 0, c = 0;
  auto p1 = pool->NewPage(&a);
  auto p2 = pool->NewPage(&b);
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Both frames pinned: a third page cannot be placed.
  EXPECT_TRUE(pool->NewPage(&c).status().IsInternal());
}

TEST_F(BufferPoolTest, AllFramesPinnedFetchFails) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId a = 0, b = 0, c = 0;
  // Create a third page first so there is something unpinned to fetch.
  { auto p = pool->NewPage(&c); ASSERT_TRUE(p.ok()); }
  auto p1 = pool->NewPage(&a);
  auto p2 = pool->NewPage(&b);
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Every frame is pinned: Fetch of an evicted page has no frame to land in.
  EXPECT_TRUE(pool->Fetch(c).status().IsInternal());
  // Releasing one pin makes the fetch succeed.
  { BufferPool::PageHandle release = std::move(p1).value(); }
  EXPECT_TRUE(pool->Fetch(c).ok());
}

TEST_F(BufferPoolTest, PageHandleMoveTransfersThePin) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId id = 0;
  auto page = pool->NewPage(&id);
  ASSERT_TRUE(page.ok());

  BufferPool::PageHandle h = std::move(page).value();
  ASSERT_TRUE(h.valid());
  const uint8_t* bytes = h.data();

  BufferPool::PageHandle moved(std::move(h));
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move): documented
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.data(), bytes);

  BufferPool::PageHandle assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move): documented
  ASSERT_TRUE(assigned.valid());
  EXPECT_EQ(assigned.data(), bytes);
}

TEST_F(BufferPoolTest, PageHandleSelfMoveIsSafe) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId id = 0;
  auto page = pool->NewPage(&id);
  ASSERT_TRUE(page.ok());
  BufferPool::PageHandle h = std::move(page).value();
  // Through a reference so the self-move is not flagged by -Wself-move; the
  // guard under test is the one in operator=.
  BufferPool::PageHandle& alias = h;
  alias = std::move(h);
  ASSERT_TRUE(h.valid());  // self-move must not release the pin
  // The pin is still counted exactly once: dropping it frees the frame.
  { BufferPool::PageHandle release = std::move(h); }
  PageId a = 0, b = 0;
  auto p1 = pool->NewPage(&a);
  auto p2 = pool->NewPage(&b);
  EXPECT_TRUE(p1.ok() && p2.ok());  // both frames available again
}

TEST_F(BufferPoolTest, WritebackStatsOnDirtyReleasedEviction) {
  auto pool = BufferPool::Create(file_.get(), 2);
  ASSERT_TRUE(pool.ok());
  PageId dirty = 0;
  {
    auto p = pool->NewPage(&dirty);  // pinned...
    ASSERT_TRUE(p.ok());
    std::memset(p->mutable_data(), 0x9D, 512);
  }  // ...then released, still dirty and resident
  pool->ResetStats();
  // Force its eviction via Fetch pressure (not NewPage).
  PageId a = 0, b = 0;
  { auto p = pool->NewPage(&a); ASSERT_TRUE(p.ok()); }
  { auto p = pool->NewPage(&b); ASSERT_TRUE(p.ok()); }
  { auto p = pool->Fetch(a); ASSERT_TRUE(p.ok()); }
  EXPECT_GE(pool->stats().evictions, 1u);
  EXPECT_EQ(pool->stats().writebacks, 1u);  // only the dirty page wrote back
  // And the writeback preserved the bytes.
  auto back = pool->Fetch(dirty);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 512; ++i) EXPECT_EQ(back->data()[i], 0x9D);
}

TEST_F(BufferPoolTest, HitRate) {
  BufferPoolStats s;
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.0);
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.75);
}

TEST_F(BufferPoolTest, BlobRoundTripSmall) {
  auto pool = BufferPool::Create(file_.get(), 8);
  ASSERT_TRUE(pool.ok());
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto root = WriteBlob(&pool.value(), payload);
  ASSERT_TRUE(root.ok());
  auto back = ReadBlob(&pool.value(), root.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST_F(BufferPoolTest, BlobRoundTripMultiPage) {
  auto pool = BufferPool::Create(file_.get(), 8);
  ASSERT_TRUE(pool.ok());
  Rng rng(5);
  std::vector<uint8_t> payload(512 * 7 + 123);  // spans many 512B pages
  for (auto& b : payload) b = static_cast<uint8_t>(rng.Next64());
  auto root = WriteBlob(&pool.value(), payload);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(pool->FlushAll().ok());
  auto back = ReadBlob(&pool.value(), root.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST_F(BufferPoolTest, BlobEmpty) {
  auto pool = BufferPool::Create(file_.get(), 4);
  ASSERT_TRUE(pool.ok());
  auto root = WriteBlob(&pool.value(), {});
  ASSERT_TRUE(root.ok());
  auto back = ReadBlob(&pool.value(), root.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(BufferPoolTest, ByteBufferReaderRoundTrip) {
  ByteBuffer buf;
  buf.Put<uint32_t>(7);
  buf.Put<double>(3.5);
  const int arr[3] = {1, 2, 3};
  buf.PutArray(arr, 3);

  ByteReader r(&buf.bytes());
  uint32_t u = 0;
  double d = 0;
  int back[3] = {};
  EXPECT_TRUE(r.Get(&u));
  EXPECT_TRUE(r.Get(&d));
  EXPECT_TRUE(r.GetArray(back, 3));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(u, 7u);
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_EQ(back[2], 3);
  // Reading past the end fails cleanly.
  EXPECT_FALSE(r.Get(&u));
}

}  // namespace
}  // namespace c2lsh
