// Analyzer fixture: classic AB/BA lock-order inversion. The two methods
// nest the same pair of mutexes in opposite orders, which is the deadlock
// pattern check_lock_order exists to catch. Never compiled — parsed only.

#include "util/mutex.h"

namespace fixture {

class TwoLocks {
 public:
  void TransferAB() {
    MutexLock a(&mu_a_);
    MutexLock b(&mu_b_);
    ++balance_;
  }

  void TransferBA() {
    MutexLock b(&mu_b_);
    MutexLock a(&mu_a_);
    --balance_;
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int balance_ = 0;
};

// The interprocedural variant: Outer holds its lock across a call into
// Inner, which acquires the second mutex; Reverse nests them the other way
// within one body. The cycle spans two functions.
class Layered {
 public:
  void Outer() {
    MutexLock l(&coarse_);
    Inner();
  }

  void Inner() {
    MutexLock l(&fine_);
    ++steps_;
  }

  void Reverse() {
    MutexLock f(&fine_);
    MutexLock c(&coarse_);
    ++steps_;
  }

 private:
  Mutex coarse_;
  Mutex fine_;
  int steps_ = 0;
};

}  // namespace fixture
