// Analyzer fixture: page-mutation primitives called outside the sanctioned
// seam. The seam is function-level: src/storage/ plus the allowlisted
// DiskC2lshIndex entries in tools/analyze/config.py — a rogue caller in any
// other layer is flagged no matter which file it lives in.

#include "storage/page_file.h"

namespace fixture {

class RogueWriter {
 public:
  // Flagged: raw page write from outside the seam.
  void Patch(PageId page, const void* bytes) {
    file_->WritePage(page, bytes);
  }

  // Flagged: allocation mutates the file header — same seam.
  void Grow() {
    file_->AllocatePage();
  }

 private:
  PageFile* file_;
};

// Clean: DiskC2lshIndex::Build is on the allowlist (bootstrap publish).
class DiskC2lshIndex {
 public:
  void Build() {
    file_->SetUserRoot(1);
  }

 private:
  PageFile* file_;
};

// Clean: a free function named like a primitive is not the storage API.
void WritePage() {}

void Caller() {
  WritePage();
}

}  // namespace fixture
