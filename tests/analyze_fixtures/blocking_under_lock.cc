// Analyzer fixture: blocking operations performed while holding a mutex.
// Covers the flagged shape, the release-then-block fix shape (clean), a
// justified inline suppression, and the nonblocking-receiver exemption.

#include "util/mutex.h"

namespace fixture {

class Journal {
 public:
  // Flagged: a real fsync runs with mu_ held.
  Status FlushLocked() {
    MutexLock lock(&mu_);
    dirty_ = false;
    return file_->Sync();
  }

  // Clean: the decision happens under the lock, the fsync outside.
  Status FlushUnlocked() {
    {
      MutexLock lock(&mu_);
      if (!dirty_) return Status::OK();
      dirty_ = false;
    }
    return file_->Sync();
  }

  // Clean via suppression: the justification is mandatory.
  Status FlushPinned() {
    MutexLock lock(&mu_);
    // analyze-ok(lock-order): fixture — single-writer file, sync latency is the point of this path.
    return file_->Sync();
  }

  // Clean: counters named like metrics are not file I/O.
  void Account() {
    MutexLock lock(&mu_);
    flush_counter_->Reset();
  }

 private:
  Mutex mu_;
  bool dirty_ = true;
  File* file_;
  Counter* flush_counter_;
};

// Flagged: waiting on a condition variable releases only the innermost
// lock; the outer mutex stays held for the whole wait.
class TwoLevelWait {
 public:
  void Drain() {
    MutexLock outer(&registry_mu_);
    MutexLock inner(&queue_mu_);
    cv_.wait(inner);
  }

 private:
  Mutex registry_mu_;
  Mutex queue_mu_;
  CondVar cv_;
};

}  // namespace fixture
