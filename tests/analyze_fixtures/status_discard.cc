// Analyzer fixture: discarded Status/Result values in the statement shapes
// the line-regex lint cannot see — multi-line statements, comma operators,
// bare (void) casts without a justifying comment.
//
// Comment placement matters here: the (void) rule accepts a comment on the
// same or preceding line, so flagged statements sit after a blank line.

#include "util/status.h"

namespace fixture {

Status Persist();
Status Cleanup();
int Tally();

class Sink {
 public:
  Status Emit();
};

void Worker(Sink* sink, int* out) {
  Persist();

  Persist(
      );

  (void)Persist();

  // Dropping cleanup failures is deliberate once the persist succeeded.
  (void)Cleanup();

  Persist(), Tally();

  sink->Emit();

  Status ok = Persist();
  if (!ok.ok()) *out = 1;

  *out = Tally();

  Tally();
}

}  // namespace fixture
