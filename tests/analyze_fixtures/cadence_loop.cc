// Analyzer fixture: query-path loops and the cancellation-cadence contract.
// A loop reachable from a query entry point that does compound work must
// poll the QueryContext; leaf loops bounded by the dimension are allowed.

#include "util/query_context.h"

namespace fixture {

class Scanner {
 public:
  // Flagged: infinite rehash-style loop, never consults ctx.
  int Query(const QueryContext* ctx, int budget) {
    int acc = 0;
    while (true) {
      acc += ChunkSum();
      if (acc > budget) break;
    }
    return acc;
  }

  // Clean: same shape, polls cancellation every round.
  int RunQuery(const QueryContext* ctx, int budget) {
    int acc = 0;
    while (true) {
      if (ctx->cancelled()) break;
      acc += ChunkSum();
      if (acc > budget) break;
    }
    return acc;
  }

  // Clean: polls through a named local lambda — lexical attribution must
  // credit the enclosing loop.
  int RangeQuery(const QueryContext* ctx, int rounds) {
    int acc = 0;
    auto step = [&](int r) {
      if (ctx->cancelled()) return 0;
      return r + ChunkSum();
    };
    for (int r = 0; r < rounds; ++r) {
      acc += step(r);
    }
    return acc;
  }

  // Clean: a leaf loop over one vector's dimensions is exactly the
  // granularity the cadence contract allows between polls.
  int ChunkSum() {
    int s = 0;
    for (int i = 0; i < 64; ++i) s += i;
    return s;
  }

 private:
  int dim_ = 64;
};

// Clean: not reachable from any query entry point, no cadence obligation.
class Offline {
 public:
  int Rebuild(int n) {
    int acc = 0;
    while (true) {
      acc += Mix(n);
      if (acc > n) break;
    }
    return acc;
  }

  int Mix(int n) {
    int s = 0;
    for (int i = 0; i < n; ++i) s += i;
    return s;
  }
};

}  // namespace fixture
