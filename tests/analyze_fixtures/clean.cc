// Analyzer fixture: code that honors every invariant — consistent lock
// order, release-before-blocking, polled query loops, consumed Status
// values, no seam escapes. Expected finding count: zero.

#include "util/mutex.h"
#include "util/query_context.h"

namespace fixture {

Status Archive();

class WellBehaved {
 public:
  // Locks always nest coarse -> fine, in every path.
  void Rebalance() {
    MutexLock c(&coarse_mu_);
    MutexLock f(&fine_mu_);
    ++epoch_;
  }

  void Touch() {
    MutexLock c(&coarse_mu_);
    MutexLock f(&fine_mu_);
    --epoch_;
  }

  // The blocking write happens after the lock is dropped.
  Status Checkpoint() {
    int snapshot = 0;
    {
      MutexLock c(&coarse_mu_);
      snapshot = epoch_;
    }
    if (snapshot > 0) {
      return Archive();
    }
    return Status::OK();
  }

  // Query loop polls at the contract cadence.
  int Query(const QueryContext* ctx, int rounds) {
    int acc = 0;
    for (int r = 0; r < rounds; ++r) {
      if (ctx->cancelled()) break;
      acc += Dot(r);
    }
    return acc;
  }

  // Leaf math loop: bounded by the dimension, allowed between polls.
  int Dot(int seed) {
    int s = seed;
    for (int i = 0; i < 128; ++i) s += i;
    return s;
  }

 private:
  Mutex coarse_mu_;
  Mutex fine_mu_;
  int epoch_ = 0;
};

}  // namespace fixture
