#include "src/core/params.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/math.h"

namespace c2lsh {
namespace {

C2lshOptions DefaultOptions() {
  C2lshOptions o;
  o.w = 1.0;
  o.c = 2.0;
  o.delta = 0.1;
  o.beta = 0.0;  // resolve to 100/n
  return o;
}

TEST(ParamsTest, Validation) {
  C2lshOptions o = DefaultOptions();
  EXPECT_TRUE(ComputeDerivedParams(o, 0).status().IsInvalidArgument());

  o.c = 1.5;  // non-integer
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
  o.c = 1.0;  // too small
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
  o = DefaultOptions();
  o.delta = 0.0;
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
  o.delta = 1.0;
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
  o = DefaultOptions();
  o.w = 0.0;
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
  o = DefaultOptions();
  o.beta = 1e-9;  // beta*n < 1
  EXPECT_TRUE(ComputeDerivedParams(o, 1000).status().IsInvalidArgument());
}

TEST(ParamsTest, BetaDefaultsTo100OverN) {
  auto d = ComputeDerivedParams(DefaultOptions(), 50000);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->beta, 100.0 / 50000.0, 1e-12);
}

TEST(ParamsTest, ExplicitBetaRespected) {
  C2lshOptions o = DefaultOptions();
  o.beta = 0.01;
  auto d = ComputeDerivedParams(o, 50000);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->beta, 0.01);
}

TEST(ParamsTest, AlphaBetweenP2AndP1) {
  auto d = ComputeDerivedParams(DefaultOptions(), 20000);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->alpha, d->model.p2);
  EXPECT_LT(d->alpha, d->model.p1);
}

TEST(ParamsTest, ThresholdIsCeilAlphaM) {
  auto d = ComputeDerivedParams(DefaultOptions(), 20000);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->l, static_cast<size_t>(std::ceil(d->alpha * static_cast<double>(d->m))));
  EXPECT_LE(d->l, d->m);
  EXPECT_GE(d->l, 1u);
}

TEST(ParamsTest, HoeffdingRequirementsSatisfied) {
  // The whole point of m's formula: both tail bounds must be met.
  for (size_t n : {1000u, 20000u, 100000u}) {
    auto d = ComputeDerivedParams(DefaultOptions(), n);
    ASSERT_TRUE(d.ok());
    const double p1_tail = HoeffdingLowerTailBound(d->model.p1 - d->alpha,
                                                   static_cast<int>(d->m));
    const double p2_tail = HoeffdingLowerTailBound(d->alpha - d->model.p2,
                                                   static_cast<int>(d->m));
    EXPECT_LE(p1_tail, 0.1 + 1e-9) << "n=" << n;          // <= delta
    EXPECT_LE(p2_tail, d->beta / 2.0 + 1e-9) << "n=" << n;  // <= beta/2
  }
}

TEST(ParamsTest, MGrowsWithN) {
  // beta = 100/n shrinks with n, so separating alpha from p2 needs more
  // functions.
  auto d1 = ComputeDerivedParams(DefaultOptions(), 1000);
  auto d2 = ComputeDerivedParams(DefaultOptions(), 100000);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_GT(d2->m, d1->m);
}

TEST(ParamsTest, LargerCNeedsFewerFunctions) {
  // A wider gap p1 - p2 (larger c) means fewer functions for the same bounds.
  C2lshOptions o2 = DefaultOptions();
  C2lshOptions o3 = DefaultOptions();
  o3.c = 3.0;
  auto d2 = ComputeDerivedParams(o2, 20000);
  auto d3 = ComputeDerivedParams(o3, 20000);
  ASSERT_TRUE(d2.ok() && d3.ok());
  EXPECT_LT(d3->m, d2->m);
}

TEST(ParamsTest, SmallerDeltaNeedsMoreFunctions) {
  C2lshOptions strict = DefaultOptions();
  strict.delta = 0.01;
  auto d_loose = ComputeDerivedParams(DefaultOptions(), 20000);
  auto d_strict = ComputeDerivedParams(strict, 20000);
  ASSERT_TRUE(d_loose.ok() && d_strict.ok());
  EXPECT_GT(d_strict->m, d_loose->m);
}

TEST(ParamsTest, TinyDatasetBetaClamped) {
  // n = 50 with default beta = 100/n = 2 > 1 must clamp, not fail.
  auto d = ComputeDerivedParams(DefaultOptions(), 50);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(d->beta, 1.0);
}

TEST(ParamsTest, ToStringMentionsKeyFields) {
  auto d = ComputeDerivedParams(DefaultOptions(), 20000);
  ASSERT_TRUE(d.ok());
  const std::string s = d->ToString();
  EXPECT_NE(s.find("m="), std::string::npos);
  EXPECT_NE(s.find("l="), std::string::npos);
  EXPECT_NE(s.find("alpha="), std::string::npos);
}

TEST(ParamsTest, PaperScaleParameterMagnitudes) {
  // At the paper's operating point (n ~ tens of thousands, w = 1, c = 2,
  // delta = 0.1, beta = 100/n) C2LSH lands at m in the low hundreds — far
  // below E2LSH's K*L. Guard that the formulas reproduce that magnitude.
  auto d = ComputeDerivedParams(DefaultOptions(), 60000);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->m, 50u);
  EXPECT_LT(d->m, 2000u);
}

}  // namespace
}  // namespace c2lsh
