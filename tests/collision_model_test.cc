#include "src/lsh/collision_model.h"

#include <gtest/gtest.h>

#include "src/util/math.h"

namespace c2lsh {
namespace {

TEST(CollisionModelTest, Validation) {
  EXPECT_TRUE(MakeCollisionModel(0.0, 2.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeCollisionModel(-1.0, 2.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeCollisionModel(1.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeCollisionModel(1.0, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(MakeCollisionModel(1.0, 2.0).ok());
}

TEST(CollisionModelTest, P1ExceedsP2) {
  for (double w : {0.5, 1.0, 2.0, 8.0}) {
    for (double c : {2.0, 3.0, 4.0}) {
      auto m = MakeCollisionModel(w, c);
      ASSERT_TRUE(m.ok());
      EXPECT_GT(m->p1, m->p2) << "w=" << w << " c=" << c;
      EXPECT_GT(m->p1, 0.0);
      EXPECT_LT(m->p1, 1.0);
      EXPECT_GT(m->p2, 0.0);
    }
  }
}

TEST(CollisionModelTest, RhoInUnitInterval) {
  auto m = MakeCollisionModel(1.0, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->rho, 0.0);
  EXPECT_LT(m->rho, 1.0);
}

TEST(CollisionModelTest, RhoDecreasesWithC) {
  // A larger approximation ratio makes the problem easier: rho shrinks.
  auto m2 = MakeCollisionModel(1.0, 2.0);
  auto m3 = MakeCollisionModel(1.0, 3.0);
  auto m4 = MakeCollisionModel(1.0, 4.0);
  ASSERT_TRUE(m2.ok() && m3.ok() && m4.ok());
  EXPECT_GT(m2->rho, m3->rho);
  EXPECT_GT(m3->rho, m4->rho);
}

TEST(CollisionModelTest, MatchesRawProbabilities) {
  auto m = MakeCollisionModel(2.5, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->p1, PStableCollisionProbability(1.0, 2.5));
  EXPECT_DOUBLE_EQ(m->p2, PStableCollisionProbability(2.0, 2.5));
}

TEST(CollisionModelTest, RadiusScaling) {
  auto m = MakeCollisionModel(1.0, 2.0);
  ASSERT_TRUE(m.ok());
  // The scale-free identity: probability at distance R under radius R equals
  // p1, and at distance cR equals p2, for any R.
  for (double R : {1.0, 2.0, 4.0, 64.0}) {
    EXPECT_NEAR(CollisionProbabilityAtRadius(*m, R, R), m->p1, 1e-12);
    EXPECT_NEAR(CollisionProbabilityAtRadius(*m, m->c * R, R), m->p2, 1e-12);
  }
}

TEST(CollisionModelTest, ProbabilityAtRadiusMonotoneInR) {
  auto m = MakeCollisionModel(1.0, 2.0);
  ASSERT_TRUE(m.ok());
  // Fixed distance, growing radius: collision probability grows.
  double prev = 0.0;
  for (double R : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double p = CollisionProbabilityAtRadius(*m, 5.0, R);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace c2lsh
