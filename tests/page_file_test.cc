#include "src/storage/page_file.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

class PageFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_pf_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PageFileTest, CreateAllocateReadWrite) {
  auto f = PageFile::Create(Path("a.pf"), 4096);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_pages(), 0u);
  EXPECT_EQ(f->page_bytes(), 4096u);

  auto p1 = f->AllocatePage();
  auto p2 = f->AllocatePage();
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1.value(), 1u);
  EXPECT_EQ(p2.value(), 2u);
  EXPECT_EQ(f->num_pages(), 2u);

  std::vector<uint8_t> out(4096, 0xAB);
  ASSERT_TRUE(f->WritePage(p1.value(), out.data()).ok());
  std::vector<uint8_t> in(4096, 0);
  ASSERT_TRUE(f->ReadPage(p1.value(), in.data()).ok());
  EXPECT_EQ(in, out);

  // Freshly allocated page reads back zeroed.
  ASSERT_TRUE(f->ReadPage(p2.value(), in.data()).ok());
  EXPECT_EQ(in, std::vector<uint8_t>(4096, 0));
}

TEST_F(PageFileTest, OutOfRangeRejected) {
  auto f = PageFile::Create(Path("b.pf"));
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> buf(f->page_bytes());
  EXPECT_TRUE(f->ReadPage(0, buf.data()).IsOutOfRange());   // header page
  EXPECT_TRUE(f->ReadPage(1, buf.data()).IsOutOfRange());   // never allocated
  EXPECT_TRUE(f->WritePage(9, buf.data()).IsOutOfRange());
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  const std::string path = Path("c.pf");
  {
    auto f = PageFile::Create(path, 512);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(512);
    std::memset(buf.data(), 0x5C, 512);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  auto f = PageFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->page_bytes(), 512u);
  EXPECT_EQ(f->num_pages(), 1u);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(f->ReadPage(1, buf.data()).ok());
  EXPECT_EQ(buf, std::vector<uint8_t>(512, 0x5C));
}

TEST_F(PageFileTest, OpenMissingFile) {
  EXPECT_TRUE(PageFile::Open(Path("missing.pf")).status().IsIOError());
}

TEST_F(PageFileTest, OpenGarbageRejected) {
  const std::string path = Path("junk.pf");
  std::ofstream(path) << "not a page file at all, sorry";
  EXPECT_TRUE(PageFile::Open(path).status().IsCorruption());
}

TEST_F(PageFileTest, UnreasonablePageSizeRejected) {
  EXPECT_TRUE(PageFile::Create(Path("d.pf"), 4).status().IsInvalidArgument());
  EXPECT_TRUE(PageFile::Create(Path("e.pf"), 1u << 30).status().IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
