#include "src/storage/page_file.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/fault_env.h"

namespace c2lsh {
namespace {

class PageFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_pf_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PageFileTest, CreateAllocateReadWrite) {
  auto f = PageFile::Create(Path("a.pf"), 4096);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_pages(), 0u);
  EXPECT_EQ(f->page_bytes(), 4096u);

  auto p1 = f->AllocatePage();
  auto p2 = f->AllocatePage();
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1.value(), 1u);
  EXPECT_EQ(p2.value(), 2u);
  EXPECT_EQ(f->num_pages(), 2u);

  std::vector<uint8_t> out(4096, 0xAB);
  ASSERT_TRUE(f->WritePage(p1.value(), out.data()).ok());
  std::vector<uint8_t> in(4096, 0);
  ASSERT_TRUE(f->ReadPage(p1.value(), in.data()).ok());
  EXPECT_EQ(in, out);

  // Freshly allocated page reads back zeroed.
  ASSERT_TRUE(f->ReadPage(p2.value(), in.data()).ok());
  EXPECT_EQ(in, std::vector<uint8_t>(4096, 0));
}

TEST_F(PageFileTest, OutOfRangeRejected) {
  auto f = PageFile::Create(Path("b.pf"));
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> buf(f->page_bytes());
  EXPECT_TRUE(f->ReadPage(0, buf.data()).IsOutOfRange());   // header page
  EXPECT_TRUE(f->ReadPage(1, buf.data()).IsOutOfRange());   // never allocated
  EXPECT_TRUE(f->WritePage(9, buf.data()).IsOutOfRange());
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  const std::string path = Path("c.pf");
  {
    auto f = PageFile::Create(path, 512);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(512);
    std::memset(buf.data(), 0x5C, 512);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  auto f = PageFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->page_bytes(), 512u);
  EXPECT_EQ(f->num_pages(), 1u);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(f->ReadPage(1, buf.data()).ok());
  EXPECT_EQ(buf, std::vector<uint8_t>(512, 0x5C));
}

TEST_F(PageFileTest, OpenMissingFile) {
  EXPECT_TRUE(PageFile::Open(Path("missing.pf")).status().IsIOError());
}

TEST_F(PageFileTest, OpenGarbageRejected) {
  const std::string path = Path("junk.pf");
  std::ofstream(path) << "not a page file at all, sorry";
  EXPECT_TRUE(PageFile::Open(path).status().IsCorruption());
}

TEST_F(PageFileTest, UnreasonablePageSizeRejected) {
  EXPECT_TRUE(PageFile::Create(Path("d.pf"), 4).status().IsInvalidArgument());
  EXPECT_TRUE(PageFile::Create(Path("e.pf"), 1u << 30).status().IsInvalidArgument());
}

TEST_F(PageFileTest, ChecksumDetectsBitFlip) {
  const std::string path = Path("flip.pf");
  {
    auto f = PageFile::Create(path, 256);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(256, 0x41);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  // Flip one payload byte of page 1 behind the file's back. Physical layout:
  // 512-byte header region, then pages of (page_bytes + 8-byte footer).
  {
    std::fstream raw(path, std::ios::in | std::ios::out | std::ios::binary);
    raw.seekp(512 + 100);
    char b = 0x40;  // 0x41 ^ 0x01
    raw.write(&b, 1);
  }
  auto f = PageFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  std::vector<uint8_t> buf(256);
  Status st = f->ReadPage(1, buf.data());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // The error names the page so operators can localize the damage.
  EXPECT_NE(std::string(st.message()).find("page 1"), std::string::npos)
      << st.ToString();
}

TEST_F(PageFileTest, TornPageWriteDetectedAfterReopen) {
  const std::string path = Path("torn.pf");
  FaultInjectionEnv env(Env::Default());
  {
    auto f = PageFile::Create(path, 256, &env);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(256, 0x11);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    ASSERT_TRUE(f->Sync().ok());
    // The next page overwrite tears after 100 of 264 bytes.
    std::memset(buf.data(), 0x22, buf.size());
    env.SetCrashAfterWrites(1);
    env.SetTornBytes(100);
    EXPECT_TRUE(f->WritePage(id.value(), buf.data()).IsIOError());
  }
  env.ClearCrash();
  auto f = PageFile::Open(path, &env);
  ASSERT_TRUE(f.ok()) << f.status().ToString();  // header generation intact
  std::vector<uint8_t> buf(256);
  Status st = f->ReadPage(1, buf.data());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();  // mixed old/new bytes
}

TEST_F(PageFileTest, V1FormatRejectedAsNotSupported) {
  const std::string path = Path("v1.pf");
  {
    // A v1 file began with magic 0xC25F11E0'0000A001; fabricate its prefix.
    const uint64_t v1_magic = 0xC25F11E00000A001ULL;
    std::ofstream raw(path, std::ios::binary);
    raw.write(reinterpret_cast<const char*>(&v1_magic), sizeof(v1_magic));
    std::vector<char> rest(4096, 0);
    raw.write(rest.data(), rest.size());
  }
  Status st = PageFile::Open(path).status();
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_NE(std::string(st.message()).find("v1"), std::string::npos) << st.ToString();
  EXPECT_NE(std::string(st.message()).find("rebuild"), std::string::npos)
      << st.ToString();
}

TEST_F(PageFileTest, TransientFaultsRetriedWithObservableCounts) {
  FaultInjectionEnv env(Env::Default());
  auto f = PageFile::Create(Path("tr.pf"), 256, &env);
  ASSERT_TRUE(f.ok());
  RetryPolicy fast;
  fast.backoff_initial_us = 0;
  f->SetRetryPolicy(fast);
  auto id = f->AllocatePage();
  ASSERT_TRUE(id.ok());
  const uint64_t ops_before = f->retry_stats().operations;

  std::vector<uint8_t> buf(256, 0x33);
  env.SetTransientWriteFaults(2);
  ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
  EXPECT_EQ(f->retry_stats().operations, ops_before + 1);
  EXPECT_EQ(f->retry_stats().retries, 2u);
  EXPECT_EQ(f->retry_stats().exhausted, 0u);

  std::vector<uint8_t> back(256);
  ASSERT_TRUE(f->ReadPage(id.value(), back.data()).ok());
  EXPECT_EQ(back, buf);
}

TEST_F(PageFileTest, IOErrorsCarryErrnoContext) {
  Status st = PageFile::Open(Path("missing_dir") + "/nope.pf").status();
  ASSERT_TRUE(st.IsIOError());
  const std::string msg(st.message());
  EXPECT_NE(msg.find("nope.pf"), std::string::npos) << msg;
  EXPECT_NE(msg.find("errno"), std::string::npos) << msg;
}


TEST_F(PageFileTest, UserRootPublishedBySyncAndSurvivesReopen) {
  const std::string path = Path("root.pf");
  {
    auto f = PageFile::Create(path, 256);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->user_root(), 0u);  // fresh files carry no root
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(256, 0x11);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    f->SetUserRoot(0xABCD1234u);
    ASSERT_TRUE(f->Sync().ok());
  }
  auto f = PageFile::Open(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->user_root(), 0xABCD1234u);

  // Swing it again: the new value replaces the old one atomically with the
  // generation bump.
  f->SetUserRoot(0x5555u);
  ASSERT_TRUE(f->Sync().ok());
  auto again = PageFile::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->user_root(), 0x5555u);
}

TEST_F(PageFileTest, UserRootCrashBeforeSyncKeepsPreviousRoot) {
  // The atomic-publish primitive the disk index's compaction leans on: a
  // staged SetUserRoot must be invisible until its Sync completes — a torn
  // header write recovers the PREVIOUS root, never a half-published one.
  const std::string path = Path("root_crash.pf");
  FaultInjectionEnv env(Env::Default());
  {
    auto f = PageFile::Create(path, 256, &env);
    ASSERT_TRUE(f.ok());
    auto id = f->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> buf(256, 0x22);
    ASSERT_TRUE(f->WritePage(id.value(), buf.data()).ok());
    f->SetUserRoot(1111);
    ASSERT_TRUE(f->Sync().ok());  // root 1111 published

    f->SetUserRoot(2222);
    env.SetCrashAfterWrites(1);  // tear the header-slot write of this Sync
    env.SetTornBytes(8);
    EXPECT_FALSE(f->Sync().ok());
  }
  env.ClearCrash();
  auto f = PageFile::Open(path, &env);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->user_root(), 1111u);

  // The recovered file can stage and publish the root it lost.
  f->SetUserRoot(2222);
  ASSERT_TRUE(f->Sync().ok());
  auto again = PageFile::Open(path, &env);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->user_root(), 2222u);
}

}  // namespace
}  // namespace c2lsh
