#include "src/baselines/srs/srs.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/util/math.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

SrsOptions SmallOptions() {
  SrsOptions o;
  o.projected_dim = 6;
  // SRS's early-termination certifies a c-approximation; recall-oriented use
  // runs it at small c with a high confidence threshold (the paper's own
  // recall experiments do the same).
  o.c = 1.2;
  o.threshold = 0.99;
  o.budget_fraction = 0.1;
  o.seed = 5;
  return o;
}

TEST(ChiSquaredTest, KnownValues) {
  // chi2(2) CDF is 1 - exp(-x/2).
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(ChiSquaredCdf(x, 2), 1.0 - std::exp(-x / 2.0), 1e-10) << x;
  }
  // Median of chi2(1) ~ 0.4549; CDF at it = 0.5.
  EXPECT_NEAR(ChiSquaredCdf(0.45493642, 1), 0.5, 1e-6);
  // chi2(6) at its mean (6): ~0.5768.
  EXPECT_NEAR(ChiSquaredCdf(6.0, 6), 0.57681, 1e-4);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 4), 0.0);
  EXPECT_NEAR(ChiSquaredCdf(1000.0, 4), 1.0, 1e-12);
}

TEST(ChiSquaredTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 30.0; x += 0.5) {
    const double p = ChiSquaredCdf(x, 6);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(RegularizedGammaTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(1.0, 0.0), 0.0);
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  // Large x -> 1.
  EXPECT_NEAR(RegularizedGammaP(3.0, 100.0), 1.0, 1e-12);
  // Continuity across the series/continued-fraction switch at x = a + 1:
  // the two branches must agree up to the true function increment
  // (pdf ~ 0.16 at this point, so 2e-4 step => ~3e-5 increment).
  const double below = RegularizedGammaP(5.0, 5.9999);
  const double above = RegularizedGammaP(5.0, 6.0001);
  EXPECT_NEAR(below, above, 1e-4);
  EXPECT_LT(below, above);  // monotone through the switch
}

TEST(SrsTest, BuildValidation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 1);
  ASSERT_TRUE(pd.ok());
  SrsOptions o = SmallOptions();
  o.projected_dim = 0;
  EXPECT_TRUE(SrsIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.c = 1.0;
  EXPECT_TRUE(SrsIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.threshold = 1.5;
  EXPECT_TRUE(SrsIndex::Build(pd->data, o).status().IsInvalidArgument());
  o = SmallOptions();
  o.budget_fraction = 0.0;
  EXPECT_TRUE(SrsIndex::Build(pd->data, o).status().IsInvalidArgument());
}

TEST(SrsTest, FindsExactDuplicate) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 1, 3);
  ASSERT_TRUE(pd.ok());
  auto index = SrsIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (ObjectId target : {5u, 1000u, 1999u}) {
    auto r = index->Query(pd->data, pd->data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    // A duplicate projects to distance 0, so it is the first streamed point.
    EXPECT_EQ((*r)[0].id, target);
    EXPECT_EQ((*r)[0].dist, 0.0f);
  }
}

TEST(SrsTest, ReasonableRecallOnClusteredData) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 4000, 16, 7);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());
  auto index = SrsIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  double hits = 0;
  for (size_t q = 0; q < 16; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
  }
  EXPECT_GT(hits / 160.0, 0.5);
}

TEST(SrsTest, TinyIndexClaim) {
  auto pd = MakeProfileDataset(DatasetProfile::kAudio, 3000, 1, 9);
  ASSERT_TRUE(pd.ok());
  auto index = SrsIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  // The projected index must be far below the raw data size (192-d floats).
  const size_t data_bytes = 3000 * 192 * sizeof(float);
  EXPECT_LT(index->MemoryBytes(), data_bytes / 10);
}

TEST(SrsTest, BudgetCapsVerifications) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 5000, 4, 11);
  ASSERT_TRUE(pd.ok());
  SrsOptions o = SmallOptions();
  o.budget_fraction = 0.002;  // floor of min_budget = 100 applies
  o.min_budget = 50;
  auto index = SrsIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 4; ++q) {
    SrsQueryStats stats;
    auto r = index->Query(pd->data, pd->queries.row(q), 10, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(stats.candidates_verified, 50u);
    EXPECT_TRUE(stats.terminated_early || stats.terminated_budget);
  }
}

TEST(SrsTest, HigherThresholdVerifiesMore) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 8, 13);
  ASSERT_TRUE(pd.ok());
  auto run = [&](double threshold) {
    SrsOptions o = SmallOptions();
    o.threshold = threshold;
    o.budget_fraction = 0.5;  // budget out of the way
    auto index = SrsIndex::Build(pd->data, o);
    EXPECT_TRUE(index.ok());
    double cands = 0;
    for (size_t q = 0; q < 8; ++q) {
      SrsQueryStats stats;
      auto r = index->Query(pd->data, pd->queries.row(q), 10, &stats);
      EXPECT_TRUE(r.ok());
      cands += static_cast<double>(stats.candidates_verified);
    }
    return cands / 8.0;
  };
  EXPECT_LE(run(0.5), run(0.99));
}

TEST(SrsTest, ContractInvariants) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1200, 8, 15);
  ASSERT_TRUE(pd.ok());
  auto index = SrsIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 8; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> ids;
    for (size_t i = 0; i < r->size(); ++i) {
      ids.insert((*r)[i].id);
      if (i > 0) {
        EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist);
      }
      const double exact =
          L2(pd->queries.row(q), pd->data.object((*r)[i].id), pd->data.dim());
      EXPECT_NEAR((*r)[i].dist, exact, 1e-4);
    }
    EXPECT_EQ(ids.size(), r->size());
  }
}

TEST(SrsTest, KZeroRejectedAndDimMismatch) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 1, 17);
  ASSERT_TRUE(pd.ok());
  auto index = SrsIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->Query(pd->data, pd->queries.row(0), 0).status().IsInvalidArgument());
  auto other = MakeProfileDataset(DatasetProfile::kMnist, 300, 1, 19);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(
      index->Query(other->data, pd->queries.row(0), 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
