#include "src/eval/harness.h"

#include <gtest/gtest.h>

#include "src/eval/metrics.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct HarnessWorld {
  Dataset data;
  FloatMatrix queries;
  std::vector<NeighborList> gt;
};

HarnessWorld MakeHarnessWorld() {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 8, 3);
  EXPECT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 20);
  EXPECT_TRUE(gt.ok());
  return HarnessWorld{std::move(pd->data), std::move(pd->queries), std::move(gt.value())};
}

TEST(HarnessTest, LinearScanIsExact) {
  HarnessWorld w = MakeHarnessWorld();
  auto method = MakeLinearScanMethod(w.data);
  ASSERT_TRUE(method.ok());
  auto r = RunWorkload(method->get(), w.data, w.queries, w.gt, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->mean_recall, 1.0);
  EXPECT_DOUBLE_EQ(r->mean_ratio, 1.0);
  EXPECT_EQ(r->num_queries, 8u);
  EXPECT_EQ(r->k, 10u);
  EXPECT_GT(r->mean_candidates, 0.0);
  EXPECT_EQ(r->index_bytes, 0u);
}

TEST(HarnessTest, C2lshMethodRunsAndReportsCosts) {
  HarnessWorld w = MakeHarnessWorld();
  C2lshOptions o;
  o.seed = 5;
  auto method = MakeC2lshMethod(w.data, o);
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  auto r = RunWorkload(method->get(), w.data, w.queries, w.gt, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->mean_recall, 0.3);
  EXPECT_GE(r->mean_ratio, 1.0);
  EXPECT_GT(r->mean_index_pages, 0.0);
  EXPECT_GT(r->mean_data_pages, 0.0);
  EXPECT_NEAR(r->mean_total_pages, r->mean_index_pages + r->mean_data_pages, 1e-9);
  EXPECT_GT(r->index_bytes, 0u);
  EXPECT_GT(r->build_seconds, 0.0);
  EXPECT_NE(r->method_name.find("C2LSH"), std::string::npos);
}

TEST(HarnessTest, E2lshAndLsbMethodsRun) {
  HarnessWorld w = MakeHarnessWorld();
  E2lshOptions eo;
  eo.K = 4;
  eo.L = 8;
  eo.seed = 7;
  auto e2 = MakeE2lshMethod(w.data, eo);
  ASSERT_TRUE(e2.ok());
  auto re = RunWorkload(e2->get(), w.data, w.queries, w.gt, 5);
  ASSERT_TRUE(re.ok());
  EXPECT_GE(re->mean_ratio, 1.0);

  LsbForestOptions lo;
  lo.tree.u = 4;
  lo.tree.w = 4.0;
  lo.L = 4;
  lo.seed = 9;
  auto lsb = MakeLsbForestMethod(w.data, lo);
  ASSERT_TRUE(lsb.ok());
  auto rl = RunWorkload(lsb->get(), w.data, w.queries, w.gt, 5);
  ASSERT_TRUE(rl.ok());
  EXPECT_GE(rl->mean_ratio, 1.0);
  EXPECT_GT(rl->index_bytes, 0u);
}

TEST(HarnessTest, MultiProbeAndSrsMethodsRun) {
  HarnessWorld w = MakeHarnessWorld();
  MultiProbeOptions mo;
  mo.K = 5;
  mo.L = 6;
  mo.w = 16.0;
  mo.num_probes = 8;
  mo.seed = 11;
  auto mp = MakeMultiProbeMethod(w.data, mo);
  ASSERT_TRUE(mp.ok());
  auto rm = RunWorkload(mp->get(), w.data, w.queries, w.gt, 5);
  ASSERT_TRUE(rm.ok());
  EXPECT_GE(rm->mean_ratio, 1.0);
  EXPECT_NE(rm->method_name.find("MultiProbe"), std::string::npos);

  SrsOptions so;
  so.c = 1.2;
  so.threshold = 0.99;
  so.budget_fraction = 0.1;
  so.seed = 13;
  auto srs = MakeSrsMethod(w.data, so);
  ASSERT_TRUE(srs.ok());
  auto rs = RunWorkload(srs->get(), w.data, w.queries, w.gt, 5);
  ASSERT_TRUE(rs.ok());
  EXPECT_GE(rs->mean_ratio, 1.0);
  EXPECT_GT(rs->mean_candidates, 0.0);
  EXPECT_GT(rs->index_bytes, 0u);
}

TEST(HarnessTest, NullMethodRejected) {
  HarnessWorld w = MakeHarnessWorld();
  EXPECT_TRUE(RunWorkload(nullptr, w.data, w.queries, w.gt, 5)
                  .status()
                  .IsInvalidArgument());
}

TEST(HarnessTest, ShortGroundTruthRejected) {
  HarnessWorld w = MakeHarnessWorld();
  auto method = MakeLinearScanMethod(w.data);
  ASSERT_TRUE(method.ok());
  std::vector<NeighborList> short_gt(w.gt.begin(), w.gt.begin() + 2);
  EXPECT_TRUE(RunWorkload(method->get(), w.data, w.queries, short_gt, 5)
                  .status()
                  .IsInvalidArgument());
}

TEST(HarnessTest, SweepCoversAllK) {
  HarnessWorld w = MakeHarnessWorld();
  auto method = MakeLinearScanMethod(w.data);
  ASSERT_TRUE(method.ok());
  auto r = RunWorkloadSweep(method->get(), w.data, w.queries, w.gt, {1, 5, 20});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].k, 1u);
  EXPECT_EQ((*r)[1].k, 5u);
  EXPECT_EQ((*r)[2].k, 20u);
  for (const auto& res : *r) EXPECT_DOUBLE_EQ(res.mean_recall, 1.0);
}

}  // namespace
}  // namespace c2lsh
