// Concurrent mutation stress for the TSan race lane: reader threads hammer
// an in-memory C2lshIndex through per-thread Searchers while one writer
// thread interleaves Insert / Delete / Compact. The contract under test
// (core/index.h): queries run on pinned snapshots, never block on
// compaction, and always return genuine results — real ids with their exact
// distances — even while the table versions churn underneath them.
//
// Which objects a query sees depends on the snapshot it pinned, so the
// assertions check genuineness (every neighbor is a live-or-recently-live id
// at its true distance), not set equality; the deterministic final state is
// checked after the writer joins.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/util/mutex.h"  // cross-thread state regime (thread-header lint)
#include "src/vector/distance.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

constexpr size_t kBaseN = 600;
constexpr size_t kExtra = 60;  // ids inserted (and partially deleted) live
constexpr size_t kReaders = 3;
constexpr size_t kReaderRounds = 40;
constexpr size_t kK = 10;

TEST(MutateRaceTest, QueriesStayGenuineUnderConcurrentMutation) {
  // The dataset carries base + future-insert rows so reader verification can
  // resolve any id the index may surface mid-mutation.
  auto pd = MakeProfileDataset(DatasetProfile::kColor, kBaseN + kExtra, 6, 307);
  ASSERT_TRUE(pd.ok());
  const size_t dim = pd->data.dim();

  std::vector<float> head;
  for (size_t i = 0; i < kBaseN; ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i));
    head.insert(head.end(), v, v + dim);
  }
  auto base_m = FloatMatrix::FromVector(kBaseN, dim, std::move(head));
  ASSERT_TRUE(base_m.ok());
  auto base = Dataset::Create("base", std::move(base_m).value());
  ASSERT_TRUE(base.ok());

  C2lshOptions o;
  o.seed = 311;
  auto index = C2lshIndex::Build(*base, o);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      C2lshIndex::Searcher searcher(&*index);
      for (size_t round = 0; round < kReaderRounds && !failed.load(); ++round) {
        const size_t q = (t + round) % pd->queries.num_rows();
        auto r = searcher.Query(pd->data, pd->queries.row(q), kK);
        if (!r.ok()) {
          failed.store(true);
          ADD_FAILURE() << "reader " << t << ": " << r.status().ToString();
          return;
        }
        for (const Neighbor& nb : *r) {
          if (nb.id >= pd->data.size() ||
              nb.dist != static_cast<float>(
                             L2(pd->queries.row(q), pd->data.object(nb.id), dim))) {
            failed.store(true);
            ADD_FAILURE() << "reader " << t << ": fabricated neighbor id "
                          << nb.id << " dist " << nb.dist;
            return;
          }
        }
      }
    });
  }

  std::thread writer([&] {
    // Grow, prune, fold — repeatedly, so readers race every publication
    // path: overlay insert, tombstone, and whole-table COW swap.
    for (size_t i = 0; i < kExtra; ++i) {
      const ObjectId id = static_cast<ObjectId>(kBaseN + i);
      ASSERT_TRUE(index->Insert(id, pd->data.object(id)).ok());
      if (i % 3 == 1) {
        ASSERT_TRUE(index->Delete(static_cast<ObjectId>(kBaseN + i - 1)).ok());
      }
      if (i % 10 == 9) index->Compact();
    }
    index->Compact();
  });

  writer.join();
  for (auto& th : readers) th.join();
  ASSERT_FALSE(failed.load());

  // Deterministic end state: the last insert is live, so the high-water
  // covers every extra id even after the final compaction.
  EXPECT_EQ(index->num_objects(), kBaseN + kExtra);
  // A surviving insert is findable at distance 0; a deleted one never is.
  const ObjectId live = static_cast<ObjectId>(kBaseN + kExtra - 1);
  auto r = index->Query(pd->data, pd->data.object(live), 3);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const Neighbor& nb : *r) found |= (nb.id == live && nb.dist == 0.0f);
  EXPECT_TRUE(found);
  const ObjectId dead = static_cast<ObjectId>(kBaseN + 0);  // deleted at i=1
  auto rd = index->Query(pd->data, pd->data.object(dead), 3);
  ASSERT_TRUE(rd.ok());
  for (const Neighbor& nb : *rd) EXPECT_NE(nb.id, dead);
}

// Compaction concurrent with a long reader: the reader's pinned snapshot
// stays valid across repeated Compact() calls (the COW swap must not free
// table state a snapshot still references).
TEST(MutateRaceTest, SnapshotOutlivesRepeatedCompaction) {
  constexpr size_t kN = 400;
  auto pd = MakeProfileDataset(DatasetProfile::kColor, kN, 4, 313);
  ASSERT_TRUE(pd.ok());
  const size_t dim = pd->data.dim();

  // The index is built over the first kN rows, but queries must pass a
  // dataset covering every id the churner may make live — one extra row.
  std::vector<float> rows;
  for (size_t i = 0; i <= kN; ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i % kN));
    rows.insert(rows.end(), v, v + dim);
  }
  auto wide_m = FloatMatrix::FromVector(kN + 1, dim, std::move(rows));
  ASSERT_TRUE(wide_m.ok());
  auto wide = Dataset::Create("wide", std::move(wide_m).value());
  ASSERT_TRUE(wide.ok());

  C2lshOptions o;
  o.seed = 317;
  auto index = C2lshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    const ObjectId next = static_cast<ObjectId>(kN);
    while (!stop.load()) {
      // Insert/delete the same id over and over: every cycle dirties all
      // m tables, so each Compact below rebuilds and republishes them.
      ASSERT_TRUE(index->Insert(next, wide->object(next)).ok());
      ASSERT_TRUE(index->Delete(next).ok());
      index->Compact();
    }
  });

  C2lshIndex::Searcher searcher(&*index);
  for (size_t round = 0; round < 60; ++round) {
    const size_t q = round % pd->queries.num_rows();
    auto r = searcher.Query(*wide, pd->queries.row(q), 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const Neighbor& nb : *r) {
      ASSERT_LT(nb.id, kN + 1);
    }
  }
  stop.store(true);
  churner.join();
}

}  // namespace
}  // namespace c2lsh
