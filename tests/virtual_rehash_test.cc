#include "src/core/virtual_rehash.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(BucketRangeTest, DefaultIsEmpty) {
  BucketRange r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
}

TEST(BucketRangeTest, WidthAndContains) {
  BucketRange outer{0, 9};
  BucketRange inner{2, 5};
  EXPECT_EQ(outer.width(), 10);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(BucketRange{}));  // empty is contained anywhere
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(LevelBucketTest, PositiveAndNegative) {
  EXPECT_EQ(LevelBucket(7, 2), 3);
  EXPECT_EQ(LevelBucket(-7, 2), -4);  // floor, not truncation
  EXPECT_EQ(LevelBucket(0, 4), 0);
  EXPECT_EQ(LevelBucket(-1, 4), -1);
}

TEST(QueryIntervalTest, RadiusOneIsSingleton) {
  for (BucketId b : {-5LL, 0LL, 7LL}) {
    const BucketRange r = QueryIntervalAtRadius(b, 1);
    EXPECT_EQ(r.lo, b);
    EXPECT_EQ(r.hi, b);
  }
}

TEST(QueryIntervalTest, ContainsQueryBucketAndHasWidthR) {
  for (BucketId b = -20; b <= 20; ++b) {
    for (long long R : {1LL, 2LL, 3LL, 4LL, 8LL}) {
      const BucketRange r = QueryIntervalAtRadius(b, R);
      EXPECT_LE(r.lo, b);
      EXPECT_GE(r.hi, b);
      EXPECT_EQ(r.width(), R);
      // Alignment: lo is a multiple of R.
      EXPECT_EQ(FloorDiv(r.lo, R) * R, r.lo);
    }
  }
}

TEST(QueryIntervalTest, NestingAcrossRounds) {
  // The property incremental counting rests on: the interval at radius R*c
  // contains the interval at radius R, for every query bucket.
  for (BucketId b = -50; b <= 50; ++b) {
    long long R = 1;
    BucketRange prev = QueryIntervalAtRadius(b, R);
    for (int round = 0; round < 6; ++round) {
      R *= 2;
      const BucketRange next = QueryIntervalAtRadius(b, R);
      EXPECT_TRUE(next.Contains(prev)) << "b=" << b << " R=" << R;
      prev = next;
    }
  }
}

TEST(QueryIntervalTest, NestingForC3) {
  for (BucketId b = -30; b <= 30; ++b) {
    long long R = 1;
    BucketRange prev = QueryIntervalAtRadius(b, R);
    for (int round = 0; round < 4; ++round) {
      R *= 3;
      const BucketRange next = QueryIntervalAtRadius(b, R);
      EXPECT_TRUE(next.Contains(prev)) << "b=" << b << " R=" << R;
      prev = next;
    }
  }
}

TEST(QueryIntervalTest, TwoPointsCollideIffSameLevelBucket) {
  // o collides with q at radius R <=> h(o) lies in q's level-R interval
  // <=> LevelBucket(h(o), R) == LevelBucket(h(q), R).
  for (BucketId q = -12; q <= 12; ++q) {
    for (BucketId o = -12; o <= 12; ++o) {
      for (long long R : {2LL, 4LL}) {
        const BucketRange r = QueryIntervalAtRadius(q, R);
        const bool in_range = o >= r.lo && o <= r.hi;
        const bool same_level = LevelBucket(o, R) == LevelBucket(q, R);
        EXPECT_EQ(in_range, same_level) << "q=" << q << " o=" << o << " R=" << R;
      }
    }
  }
}

TEST(RangeDeltaTest, FromEmptyPrev) {
  const BucketRange next{4, 7};
  const RangeDelta d = ComputeRangeDelta(BucketRange{}, next);
  EXPECT_EQ(d.left, next);
  EXPECT_TRUE(d.right.empty());
}

TEST(RangeDeltaTest, SplitsGrowth) {
  const BucketRange prev{4, 7};
  const BucketRange next{0, 15};
  const RangeDelta d = ComputeRangeDelta(prev, next);
  EXPECT_EQ(d.left, (BucketRange{0, 3}));
  EXPECT_EQ(d.right, (BucketRange{8, 15}));
}

TEST(RangeDeltaTest, OneSidedGrowth) {
  const BucketRange prev{0, 3};
  const BucketRange next{0, 7};
  const RangeDelta d = ComputeRangeDelta(prev, next);
  EXPECT_TRUE(d.left.empty());
  EXPECT_EQ(d.right, (BucketRange{4, 7}));
}

TEST(RangeDeltaTest, NoGrowth) {
  const BucketRange r{2, 5};
  const RangeDelta d = ComputeRangeDelta(r, r);
  EXPECT_TRUE(d.left.empty());
  EXPECT_TRUE(d.right.empty());
}

TEST(RangeDeltaTest, DeltaUnionEqualsNextMinusPrev) {
  // Property over the real radius schedule: prev-interval plus the two
  // deltas tile the next interval exactly, with no overlap.
  for (BucketId b = -20; b <= 20; ++b) {
    long long R = 1;
    BucketRange prev = QueryIntervalAtRadius(b, R);
    for (int round = 0; round < 5; ++round) {
      R *= 2;
      const BucketRange next = QueryIntervalAtRadius(b, R);
      const RangeDelta d = ComputeRangeDelta(prev, next);
      const long long tiles =
          prev.width() + d.left.width() + d.right.width();
      EXPECT_EQ(tiles, next.width());
      if (!d.left.empty()) {
        EXPECT_EQ(d.left.hi + 1, prev.lo);
        EXPECT_EQ(d.left.lo, next.lo);
      }
      if (!d.right.empty()) {
        EXPECT_EQ(d.right.lo - 1, prev.hi);
        EXPECT_EQ(d.right.hi, next.hi);
      }
      prev = next;
    }
  }
}

}  // namespace
}  // namespace c2lsh
