// Flight-recorder tests: exactly-once dump per anomaly (consecutive-repeat
// dedupe), the slow-query threshold, and the headline acceptance path — a
// deadline-missing disk query over a FaultInjectionEnv produces a dump whose
// Chrome trace JSON passes the in-tree validator and carries spans from at
// least four subsystems (query, round, buffer_pool, retry, admission).

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/disk_index.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/serve/admission.h"
#include "src/util/fault_env.h"
#include "src/util/query_context.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace obs {
namespace {

namespace fs = std::filesystem;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("c2lsh_flight_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    FlightRecorder::Global().Disable();
    Tracer::Global().SetMode(TraceMode::kOff);
  }

  void TearDown() override {
    FlightRecorder::Global().Disable();
    Tracer::Global().SetMode(TraceMode::kOff);
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::vector<std::string> DumpFiles() const {
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("flight-", 0) == 0) out.push_back(entry.path().string());
    }
    return out;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  Status Arm(double slow_query_millis = 0.0) {
    FlightRecorderOptions opt;
    opt.dir = dir_.string();
    opt.slow_query_millis = slow_query_millis;
    return FlightRecorder::Global().Configure(opt);
  }

  fs::path dir_;
};

TEST_F(FlightRecorderTest, InertUntilConfigured) {
  EXPECT_FALSE(FlightRecorder::Global().enabled());
  EXPECT_FALSE(FlightRecorder::Global().RecordAnomaly(
      AnomalyKind::kDeadline, "noop", /*query_id=*/1, nullptr));
  EXPECT_TRUE(DumpFiles().empty());
}

TEST_F(FlightRecorderTest, DumpFiresExactlyOncePerAnomaly) {
  ASSERT_TRUE(Arm().ok());
  const uint64_t before = FlightRecorder::Global().dumps_written();

  QueryTrace trace;
  trace.termination = Termination::kDeadline;
  trace.total_millis = 12.5;

  // First report of query 42 dumps; the consecutive repeat (a retry layer
  // and the query layer both reporting the same incident) is dropped.
  EXPECT_TRUE(FlightRecorder::Global().RecordAnomaly(
      AnomalyKind::kDeadline, "test_query", 42, &trace));
  EXPECT_FALSE(FlightRecorder::Global().RecordAnomaly(
      AnomalyKind::kDeadline, "test_query", 42, &trace));
  EXPECT_EQ(FlightRecorder::Global().dumps_written(), before + 1);
  EXPECT_EQ(DumpFiles().size(), 1u);

  // A different query is a different incident.
  EXPECT_TRUE(FlightRecorder::Global().RecordAnomaly(
      AnomalyKind::kCancelled, "test_query", 43, &trace));
  EXPECT_EQ(FlightRecorder::Global().dumps_written(), before + 2);
  EXPECT_EQ(DumpFiles().size(), 2u);

  // Every dump is a valid Chrome trace document with the anomaly annotation.
  for (const std::string& path : DumpFiles()) {
    const std::string json = ReadFile(path);
    EXPECT_TRUE(ValidateChromeTraceJson(json).ok())
        << path << ": " << ValidateChromeTraceJson(json).ToString();
    EXPECT_NE(json.find("\"otherData\""), std::string::npos) << path;
  }
}

TEST_F(FlightRecorderTest, SlowQueryThreshold) {
  ASSERT_TRUE(Arm(/*slow_query_millis=*/5.0).ok());
  EXPECT_EQ(FlightRecorder::Global().slow_query_millis(), 5.0);

  QueryTrace fast;
  fast.termination = Termination::kT1;
  fast.total_millis = 0.5;
  EXPECT_FALSE(MaybeRecordQueryAnomaly("fast_query", /*query_id=*/7, fast));
  EXPECT_TRUE(DumpFiles().empty());

  QueryTrace slow;
  slow.termination = Termination::kT1;  // healthy outcome, just slow
  slow.total_millis = 50.0;
  EXPECT_TRUE(MaybeRecordQueryAnomaly("slow_query", /*query_id=*/8, slow));
  ASSERT_EQ(DumpFiles().size(), 1u);
  const std::string json = ReadFile(DumpFiles()[0]);
  EXPECT_NE(json.find("slow_query"), std::string::npos);
}

TEST_F(FlightRecorderTest, AnomalousTerminationDumpsRegardlessOfLatency) {
  ASSERT_TRUE(Arm().ok());
  QueryTrace trace;
  trace.termination = Termination::kCancelled;
  trace.total_millis = 0.01;
  EXPECT_TRUE(MaybeRecordQueryAnomaly("cancelled_query", /*query_id=*/9, trace));
  QueryTrace healthy;
  healthy.termination = Termination::kT2;
  healthy.total_millis = 0.01;
  EXPECT_FALSE(MaybeRecordQueryAnomaly("healthy_query", /*query_id=*/10, healthy));
  EXPECT_EQ(DumpFiles().size(), 1u);
}

// The acceptance path from ISSUE 9: a disk query misses its (I/O-budget)
// deadline under a FaultInjectionEnv while tracing is armed; the recorder's
// dump must validate and must carry spans from >= 4 distinct subsystems.
TEST_F(FlightRecorderTest, DeadlineMissedDiskQueryDumpSpansFourSubsystems) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 4, /*seed=*/11);
  ASSERT_TRUE(pd.ok());
  C2lshOptions options;
  options.w = 1.0;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 11;

  FaultInjectionEnv fault_env(Env::Default());
  auto index = DiskC2lshIndex::Build(pd->data, options, Path("index.pages"),
                                     /*pool_pages=*/8, /*store_vectors=*/true,
                                     &fault_env);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  Tracer::Global().SetMode(TraceMode::kAlways);
  Tracer::Global().Clear();
  ASSERT_TRUE(Arm().ok());
  const uint64_t dumps_before = FlightRecorder::Global().dumps_written();

  AdmissionOptions aopt;
  aopt.max_in_flight = 1;
  AdmissionController admission(aopt);

  QueryContext ctx;
  ctx.io_page_budget = 1;  // deterministic kDeadline at the round boundary
  auto ticket = admission.Admit(&ctx);
  ASSERT_TRUE(ticket.ok());
  DiskQueryStats stats;
  QueryTrace trace;
  auto r = index->Query(pd->queries.row(0), 10, &stats, &trace, &ctx);
  ticket->Release();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(stats.base.termination, Termination::kDeadline)
      << "io_page_budget=1 should terminate the query at the first round "
         "boundary";

  EXPECT_EQ(FlightRecorder::Global().dumps_written(), dumps_before + 1);
  const std::vector<std::string> dumps = DumpFiles();
  ASSERT_EQ(dumps.size(), 1u);
  const std::string json = ReadFile(dumps[0]);

  const Status valid = ValidateChromeTraceJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("\"anomaly\": \"deadline\""), std::string::npos);

  std::set<std::string> cats;
  const std::string key = "\"cat\": \"";
  for (size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    const size_t start = pos + key.size();
    cats.insert(json.substr(start, json.find('"', start) - start));
  }
  EXPECT_GE(cats.size(), 4u) << "subsystems in dump: " << cats.size();
  for (const char* want : {"query", "round", "buffer_pool", "retry",
                           "admission"}) {
    EXPECT_TRUE(cats.count(want)) << "dump is missing spans from " << want;
  }
}

// Reconfiguring into a fresh directory after Disable works (ops rotating the
// dump location) and dump slots wrap round-robin at max_dumps.
TEST_F(FlightRecorderTest, SlotRotationOverwritesOldest) {
  FlightRecorderOptions opt;
  opt.dir = dir_.string();
  opt.max_dumps = 2;
  ASSERT_TRUE(FlightRecorder::Global().Configure(opt).ok());
  QueryTrace trace;
  trace.termination = Termination::kDeadline;
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(FlightRecorder::Global().RecordAnomaly(
        AnomalyKind::kDeadline, "rotate", id, &trace));
  }
  EXPECT_LE(DumpFiles().size(), 2u);
  EXPECT_FALSE(DumpFiles().empty());
}

}  // namespace
}  // namespace obs
}  // namespace c2lsh
