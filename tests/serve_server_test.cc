// End-to-end Server tests over the in-process transport (plus one smoke
// test over real TCP): query/insert/delete round trips, wire deadline
// propagation into QueryContext with the server margin, health/readiness
// probes, admission shed surfaced as kUnavailable, unknown index as
// kNotFound, graceful drain (idempotent, readiness flip, ticket/connection
// leak accounting), and malformed-frame handling.

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "src/core/disk_index.h"
#include "src/serve/inproc_transport.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/transport_posix.h"
#include "src/vector/dataset.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace serve {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("c2lsh_serve_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Result<DiskC2lshIndex> BuildIndex(const std::string& name) {
    MixtureConfig mc;
    mc.n = 64;
    mc.dim = 8;
    mc.num_clusters = 4;
    mc.center_spread = 4.0;
    mc.cluster_stddev = 0.5;
    mc.seed = 11;
    C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, GenerateGaussianMixture(mc));
    RescaleToTargetNN(&m, 8.0, 11);
    row0_.assign(m.row(0), m.row(0) + m.dim());
    C2LSH_ASSIGN_OR_RETURN(Dataset data, Dataset::Create("d", std::move(m)));
    C2lshOptions options;
    options.seed = 11;
    return DiskC2lshIndex::Build(data, options, (dir_ / name).string(),
                                 /*pool_pages=*/64, /*store_vectors=*/true);
  }

  Result<std::unique_ptr<Server>> StartServer(ServerOptions options) {
    options.address = "srv";
    options.transport = &transport_;
    C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                           Server::Start(options));
    C2LSH_ASSIGN_OR_RETURN(DiskC2lshIndex index, BuildIndex("main.pf"));
    C2LSH_RETURN_IF_ERROR(server->AddIndex("main", std::move(index)));
    return server;
  }

  // One request/response round trip on a fresh connection.
  Result<Response> Call(const Request& req, Transport* transport = nullptr,
                        const std::string& address = "srv") {
    Transport* t = transport != nullptr ? transport : &transport_;
    C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                           t->Connect(address, Deadline::AfterMillis(2000)));
    C2LSH_RETURN_IF_ERROR(WriteFrame(*conn, EncodeRequest(req),
                                     Deadline::AfterMillis(2000)));
    std::string body;
    bool eof = false;
    C2LSH_RETURN_IF_ERROR(ReadFrame(*conn, &body, &eof,
                                    Deadline::AfterMillis(5000)));
    if (eof) return Status::IOError("server closed before responding");
    Response resp;
    C2LSH_RETURN_IF_ERROR(DecodeResponse(
        reinterpret_cast<const uint8_t*>(body.data()), body.size(), &resp));
    return resp;
  }

  std::filesystem::path dir_;
  InprocTransport transport_;
  std::vector<float> row0_;  ///< exact copy of data row 0, for ~0-dist hits
};

Request QueryReq(const std::vector<float>& vec, uint32_t k = 5,
                 const std::string& tenant = "t") {
  Request req;
  req.type = MsgType::kQuery;
  req.tenant = tenant;
  req.index = "main";
  req.k = k;
  req.vector = vec;
  return req;
}

TEST_F(ServerTest, HealthReadyAndQueryRoundTrip) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = server_or.value();

  Request health;
  health.type = MsgType::kHealth;
  auto resp = Call(health);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, StatusCode::kOk);
  EXPECT_EQ(resp->flag, 1u);

  Request ready;
  ready.type = MsgType::kReady;
  resp = Call(ready);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->flag, 1u);

  resp = Call(QueryReq(row0_));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  EXPECT_FALSE(IsEarlyStop(resp->termination));
  bool found = false;
  for (const Neighbor& nb : resp->neighbors) {
    if (nb.id == 0 && nb.dist <= 1e-3f) found = true;
  }
  EXPECT_TRUE(found) << "exact duplicate of row 0 not returned";
  EXPECT_GE(server->requests_served(), 3u);
}

TEST_F(ServerTest, InsertThenQueryThenDelete) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();

  std::vector<float> vec = row0_;
  vec[0] += 100.0f;  // far from everything else
  Request ins;
  ins.type = MsgType::kInsert;
  ins.tenant = "t";
  ins.index = "main";
  ins.id = 500;
  ins.vector = vec;
  auto resp = Call(ins);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;

  resp = Call(QueryReq(vec));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk);
  ASSERT_FALSE(resp->neighbors.empty());
  EXPECT_EQ(resp->neighbors[0].id, 500u);
  EXPECT_LE(resp->neighbors[0].dist, 1e-3f);

  Request del;
  del.type = MsgType::kDelete;
  del.tenant = "t";
  del.index = "main";
  del.id = 500;
  resp = Call(del);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;

  resp = Call(QueryReq(vec));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk);
  for (const Neighbor& nb : resp->neighbors) {
    EXPECT_NE(nb.id, 500u) << "deleted id returned";
  }
}

TEST_F(ServerTest, WireDeadlinePropagatesIntoTheQuery) {
  ServerOptions options;
  options.deadline_margin_millis = 0.5;
  auto server_or = StartServer(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();

  // 1 microsecond of budget: after the margin the context is born expired.
  // The response must be an explicit error or a result TAGGED partial —
  // never a silently complete-looking answer.
  Request req = QueryReq(row0_);
  req.deadline_micros = 1;
  auto resp = Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  if (resp->code == StatusCode::kOk) {
    EXPECT_TRUE(IsEarlyStop(resp->termination))
        << "expired deadline produced an untagged result";
  }

  // A generous deadline completes normally.
  req.deadline_micros = 30'000'000;
  resp = Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
  EXPECT_FALSE(IsEarlyStop(resp->termination));
}

TEST_F(ServerTest, UnknownIndexIsNotFoundUnknownTenantStillServed) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();

  Request req = QueryReq(row0_);
  req.index = "nope";
  auto resp = Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kNotFound);

  req = QueryReq(row0_, 3, "never-seen-before-tenant");
  resp = Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
}

TEST_F(ServerTest, SaturatedAdmissionShedsWithUnavailable) {
  ServerOptions options;
  options.admission.per_tenant.max_in_flight = 1;
  options.admission.per_tenant.max_queue = 0;
  options.admission.overflow.max_in_flight = 1;
  options.admission.overflow.max_queue = 0;
  auto server_or = StartServer(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = server_or.value();

  // Pin the tenant's partition and the overflow pool from inside, then a
  // wire request for that tenant must shed with the retryable code.
  auto t1 = server->admission().Admit("hog");
  auto t2 = server->admission().Admit("hog");
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto resp = Call(QueryReq(row0_, 5, "hog"));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, StatusCode::kUnavailable);
  EXPECT_GE(server->admission().StatsFor("hog").shed_final, 1u);
  t1->Release();
  t2->Release();

  // Health probes bypass admission even while saturated.
  auto t3 = server->admission().Admit("hog");
  auto t4 = server->admission().Admit("hog");
  Request health;
  health.type = MsgType::kHealth;
  resp = Call(health);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk);
}

TEST_F(ServerTest, MalformedFrameGetsErrorResponseThenClose) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();

  auto conn_or = transport_.Connect("srv", Deadline::AfterMillis(1000));
  ASSERT_TRUE(conn_or.ok());
  auto conn = std::move(conn_or).value();
  ASSERT_TRUE(
      WriteFrame(*conn, "\x01garbage-not-a-request", Deadline::AfterMillis(1000))
          .ok());
  std::string body;
  bool eof = false;
  ASSERT_TRUE(ReadFrame(*conn, &body, &eof, Deadline::AfterMillis(2000)).ok());
  ASSERT_FALSE(eof);  // first: an explicit error response
  Response resp;
  ASSERT_TRUE(DecodeResponse(reinterpret_cast<const uint8_t*>(body.data()),
                             body.size(), &resp)
                  .ok());
  EXPECT_NE(resp.code, StatusCode::kOk);
  // Then the server closes the connection (it cannot trust the stream).
  Status s = ReadFrame(*conn, &body, &eof, Deadline::AfterMillis(2000));
  EXPECT_TRUE(!s.ok() || eof);
}

TEST_F(ServerTest, DrainIsGracefulAndIdempotent) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = server_or.value();

  ASSERT_EQ(Call(QueryReq(row0_))->code, StatusCode::kOk);
  EXPECT_TRUE(server->ready());

  DrainReport first = server->Drain();
  EXPECT_TRUE(first.met_deadline);
  EXPECT_EQ(first.leaked_tickets, 0u);
  EXPECT_TRUE(first.admission_status.ok())
      << first.admission_status.ToString();
  EXPECT_TRUE(first.flush_status.ok()) << first.flush_status.ToString();
  EXPECT_FALSE(server->ready());

  // Second drain returns the same (already-computed) report.
  DrainReport second = server->Drain();
  EXPECT_EQ(second.met_deadline, first.met_deadline);
  EXPECT_EQ(second.leaked_tickets, first.leaked_tickets);

  // No new connections after drain.
  auto conn = transport_.Connect("srv", Deadline::AfterMillis(100));
  EXPECT_FALSE(conn.ok());

  server.reset();
  EXPECT_EQ(transport_.live_connections(), 0u) << "connection leak";
}

TEST_F(ServerTest, DrainDeadlineOverrunReportsLeakedTicket) {
  ServerOptions options;
  options.drain_deadline_millis = 100.0;
  auto server_or = StartServer(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = server_or.value();

  auto straggler = server->admission().Admit("slow");
  ASSERT_TRUE(straggler.ok());
  DrainReport report = server->Drain();
  EXPECT_FALSE(report.met_deadline);
  EXPECT_EQ(report.leaked_tickets, 1u);
  EXPECT_TRUE(report.admission_status.IsUnavailable());
  straggler->Release();
  EXPECT_EQ(server->admission().total_in_flight(), 0u);
}

TEST_F(ServerTest, DestructorDrainsWithoutExplicitCall) {
  auto server_or = StartServer(ServerOptions());
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  ASSERT_EQ(Call(QueryReq(row0_))->code, StatusCode::kOk);
  server_or.value().reset();  // must not hang or leak
  EXPECT_EQ(transport_.live_connections(), 0u);
}

TEST_F(ServerTest, PosixTransportSmoke) {
  PosixTransport tcp;
  ServerOptions options;
  options.address = "127.0.0.1:0";
  options.transport = &tcp;
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = server_or.value();
  ASSERT_NE(server->address(), "127.0.0.1:0") << "ephemeral port not resolved";

  auto index_or = BuildIndex("tcp.pf");
  ASSERT_TRUE(index_or.ok()) << index_or.status().ToString();
  ASSERT_TRUE(server->AddIndex("main", std::move(index_or).value()).ok());

  auto resp = Call(QueryReq(row0_), &tcp, server->address());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;

  DrainReport report = server->Drain();
  EXPECT_TRUE(report.met_deadline);
  EXPECT_EQ(report.leaked_tickets, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace c2lsh
