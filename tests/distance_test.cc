#include "src/vector/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace c2lsh {
namespace {

TEST(DistanceTest, SquaredL2Basics) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 6, 3};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b, 3), 9.0 + 16.0 + 0.0);
  EXPECT_DOUBLE_EQ(SquaredL2(a, a, 3), 0.0);
}

TEST(DistanceTest, L2IsSqrtOfSquared) {
  const float a[] = {0, 0};
  const float b[] = {3, 4};
  EXPECT_DOUBLE_EQ(L2(a, b, 2), 5.0);
}

TEST(DistanceTest, UnrolledTailHandling) {
  // Exercise d values around the unroll width of 4.
  for (size_t d : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u}) {
    std::vector<float> a(d), b(d);
    double expected = 0.0;
    for (size_t i = 0; i < d; ++i) {
      a[i] = static_cast<float>(i + 1);
      b[i] = static_cast<float>(2 * i);
      const double diff = static_cast<double>(a[i]) - b[i];
      expected += diff * diff;
    }
    EXPECT_DOUBLE_EQ(SquaredL2(a.data(), b.data(), d), expected) << "d=" << d;
  }
}

TEST(DistanceTest, DotAndNorm) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 32.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a, 3), 14.0);
}

TEST(DistanceTest, AngularIdenticalIsZero) {
  const float a[] = {1, 2, 3};
  EXPECT_NEAR(Angular(a, a, 3), 0.0, 1e-12);
}

TEST(DistanceTest, AngularScaleInvariant) {
  const float a[] = {1, 0, 2};
  const float b[] = {2, 0, 4};  // b = 2a
  EXPECT_NEAR(Angular(a, b, 3), 0.0, 1e-12);
}

TEST(DistanceTest, AngularOrthogonal) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  EXPECT_NEAR(Angular(a, b, 2), 1.0, 1e-12);
}

TEST(DistanceTest, AngularOpposite) {
  const float a[] = {1, 0};
  const float b[] = {-1, 0};
  EXPECT_NEAR(Angular(a, b, 2), 2.0, 1e-12);
}

TEST(DistanceTest, AngularZeroVector) {
  const float a[] = {0, 0};
  const float b[] = {1, 1};
  EXPECT_DOUBLE_EQ(Angular(a, b, 2), 1.0);
}

TEST(DistanceTest, DispatchMatchesKernels) {
  Rng rng(77);
  std::vector<float> a, b;
  rng.GaussianVector(33, &a);
  rng.GaussianVector(33, &b);
  EXPECT_DOUBLE_EQ(ComputeDistance(Metric::kEuclidean, a.data(), b.data(), 33),
                   L2(a.data(), b.data(), 33));
  EXPECT_DOUBLE_EQ(ComputeDistance(Metric::kSquaredEuclidean, a.data(), b.data(), 33),
                   SquaredL2(a.data(), b.data(), 33));
  EXPECT_DOUBLE_EQ(ComputeDistance(Metric::kAngular, a.data(), b.data(), 33),
                   Angular(a.data(), b.data(), 33));
}

TEST(DistanceTest, TriangleInequalityOnRandomVectors) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a, b, c;
    rng.GaussianVector(16, &a);
    rng.GaussianVector(16, &b);
    rng.GaussianVector(16, &c);
    const double ab = L2(a.data(), b.data(), 16);
    const double bc = L2(b.data(), c.data(), 16);
    const double ac = L2(a.data(), c.data(), 16);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(DistanceTest, MetricNames) {
  EXPECT_EQ(MetricToString(Metric::kEuclidean), "euclidean");
  EXPECT_EQ(MetricToString(Metric::kSquaredEuclidean), "squared_euclidean");
  EXPECT_EQ(MetricToString(Metric::kAngular), "angular");
}

}  // namespace
}  // namespace c2lsh
