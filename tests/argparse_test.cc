#include "src/util/argparse.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

// Builds argv from literals; keeps storage alive for the call.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

ArgParser MakeParser() {
  ArgParser p("test tool");
  p.AddString("name", "default", "a string flag");
  p.AddInt("count", 5, "an int flag");
  p.AddDouble("ratio", 1.5, "a double flag");
  p.AddBool("verbose", false, "a bool flag");
  return p;
}

TEST(ArgParseTest, DefaultsWhenNoArgs) {
  ArgParser p = MakeParser();
  Argv args({});
  ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(p.GetString("name"), "default");
  EXPECT_EQ(p.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio"), 1.5);
  EXPECT_FALSE(p.GetBool("verbose"));
}

TEST(ArgParseTest, EqualsForm) {
  ArgParser p = MakeParser();
  Argv args({"--name=x", "--count=42", "--ratio=2.25", "--verbose=true"});
  ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(p.GetString("name"), "x");
  EXPECT_EQ(p.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio"), 2.25);
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(ArgParseTest, SpaceForm) {
  ArgParser p = MakeParser();
  Argv args({"--count", "-3", "--name", "hello world"});
  ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(p.GetInt("count"), -3);
  EXPECT_EQ(p.GetString("name"), "hello world");
}

TEST(ArgParseTest, BareBooleanFlag) {
  ArgParser p = MakeParser();
  Argv args({"--verbose"});
  ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(ArgParseTest, BoolLiteralVariants) {
  for (const char* lit : {"1", "yes", "on"}) {
    ArgParser p = MakeParser();
    Argv args({std::string("--verbose=") + lit});
    ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok()) << lit;
    EXPECT_TRUE(p.GetBool("verbose")) << lit;
  }
  for (const char* lit : {"0", "no", "off", "false"}) {
    ArgParser p = MakeParser();
    Argv args({std::string("--verbose=") + lit});
    ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok()) << lit;
    EXPECT_FALSE(p.GetBool("verbose")) << lit;
  }
}

TEST(ArgParseTest, UnknownFlagRejected) {
  ArgParser p = MakeParser();
  Argv args({"--bogus=1"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, BadIntRejected) {
  ArgParser p = MakeParser();
  Argv args({"--count=abc"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, BadIntTrailingGarbageRejected) {
  ArgParser p = MakeParser();
  Argv args({"--count=12x"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, BadDoubleRejected) {
  ArgParser p = MakeParser();
  Argv args({"--ratio=1.2.3"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, BadBoolRejected) {
  ArgParser p = MakeParser();
  Argv args({"--verbose=maybe"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, PositionalRejected) {
  ArgParser p = MakeParser();
  Argv args({"stray"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, MissingValueRejected) {
  ArgParser p = MakeParser();
  Argv args({"--count"});
  EXPECT_TRUE(p.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(ArgParseTest, HelpRequested) {
  ArgParser p = MakeParser();
  Argv args({"--help"});
  ASSERT_TRUE(p.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(p.help_requested());
  const std::string help = p.HelpString();
  EXPECT_NE(help.find("test tool"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("an int flag"), std::string::npos);
}

}  // namespace
}  // namespace c2lsh
