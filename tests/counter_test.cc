#include "src/core/counter.h"

#include <gtest/gtest.h>

namespace c2lsh {
namespace {

TEST(CounterTest, StartsAtZero) {
  CollisionCounter c(10);
  c.NewQuery();
  for (ObjectId id = 0; id < 10; ++id) {
    EXPECT_EQ(c.Count(id), 0u);
  }
}

TEST(CounterTest, IncrementReturnsNewCount) {
  CollisionCounter c(4);
  c.NewQuery();
  EXPECT_EQ(c.Increment(2), 1u);
  EXPECT_EQ(c.Increment(2), 2u);
  EXPECT_EQ(c.Increment(2), 3u);
  EXPECT_EQ(c.Count(2), 3u);
  EXPECT_EQ(c.Count(1), 0u);
}

TEST(CounterTest, NewQueryResetsLazily) {
  CollisionCounter c(4);
  c.NewQuery();
  c.Increment(0);
  c.Increment(1);
  c.NewQuery();
  EXPECT_EQ(c.Count(0), 0u);
  EXPECT_EQ(c.Count(1), 0u);
  EXPECT_EQ(c.Increment(0), 1u);  // starts over
}

TEST(CounterTest, ManyQueriesIndependent) {
  CollisionCounter c(3);
  for (int q = 0; q < 1000; ++q) {
    c.NewQuery();
    EXPECT_EQ(c.Count(1), 0u);
    for (int i = 0; i <= q % 5; ++i) c.Increment(1);
    EXPECT_EQ(c.Count(1), static_cast<uint32_t>(q % 5 + 1));
  }
}

TEST(CounterTest, EnsureCapacityGrows) {
  CollisionCounter c(2);
  c.NewQuery();
  c.Increment(0);
  c.EnsureCapacity(10);
  EXPECT_EQ(c.capacity(), 10u);
  EXPECT_EQ(c.Count(0), 1u);  // existing counts preserved
  EXPECT_EQ(c.Count(9), 0u);
  EXPECT_EQ(c.Increment(9), 1u);
}

TEST(CounterTest, EnsureCapacityNeverShrinks) {
  CollisionCounter c(10);
  c.EnsureCapacity(3);
  EXPECT_EQ(c.capacity(), 10u);
}

TEST(CounterTest, ZeroCapacityThenGrow) {
  CollisionCounter c(0);
  c.NewQuery();
  c.EnsureCapacity(5);
  EXPECT_EQ(c.Increment(4), 1u);
}

}  // namespace
}  // namespace c2lsh
