#include "src/extensions/qalsh/qalsh.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/baselines/linear_scan.h"
#include "src/util/math.h"
#include "src/util/random.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

QalshOptions SmallOptions(double c = 2.0) {
  QalshOptions o;
  o.w = 2.0;  // query-aware windows: w/2 on each side of the query
  o.c = c;
  o.delta = 0.1;
  o.seed = 7;
  return o;
}

TEST(QalshProbTest, KnownValuesAndLimits) {
  EXPECT_DOUBLE_EQ(QalshCollisionProbability(0.0, 1.0), 1.0);
  // P[|N(0,1)| <= 0.5] = 2*Phi(0.5) - 1.
  EXPECT_NEAR(QalshCollisionProbability(1.0, 1.0), 2.0 * NormalCdf(0.5) - 1.0, 1e-12);
  EXPECT_LT(QalshCollisionProbability(1e9, 1.0), 1e-6);
}

TEST(QalshProbTest, MonotoneAndAboveQuantized) {
  double prev = 1.0;
  for (double s : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double p = QalshCollisionProbability(s, 2.0);
    EXPECT_LT(p, prev);
    prev = p;
    // Query-aware window beats the randomly-offset quantized bucket of the
    // same total width at every distance (no misalignment loss).
    EXPECT_GT(p, PStableCollisionProbability(s, 2.0));
  }
}

TEST(QalshParamsTest, Validation) {
  QalshOptions o = SmallOptions();
  EXPECT_TRUE(ComputeQalshParams(o, 0).status().IsInvalidArgument());
  o.c = 1.0;
  EXPECT_TRUE(ComputeQalshParams(o, 1000).status().IsInvalidArgument());
  o = SmallOptions();
  o.w = 0.0;
  EXPECT_TRUE(ComputeQalshParams(o, 1000).status().IsInvalidArgument());
  o = SmallOptions();
  o.max_rounds = 0;
  EXPECT_TRUE(ComputeQalshParams(o, 1000).status().IsInvalidArgument());
}

TEST(QalshParamsTest, NonIntegerCAccepted) {
  // The flexibility C2LSH lacks: any real c > 1.
  for (double c : {1.2, 1.5, 2.5, 3.7}) {
    auto d = ComputeQalshParams(SmallOptions(c), 10000);
    ASSERT_TRUE(d.ok()) << "c=" << c;
    EXPECT_GT(d->p1, d->p2);
    EXPECT_GT(d->counting.m, 0u);
    EXPECT_LE(d->counting.l, d->counting.m);
  }
}

TEST(QalshParamsTest, SmallerCNeedsMoreFunctions) {
  auto tight = ComputeQalshParams(SmallOptions(1.5), 10000);
  auto loose = ComputeQalshParams(SmallOptions(3.0), 10000);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_GT(tight->counting.m, loose->counting.m);
}

TEST(QalshIndexTest, FindsExactDuplicate) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 1, 3);
  ASSERT_TRUE(pd.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (ObjectId target : {1u, 999u, 1999u}) {
    auto r = index->Query(pd->data, pd->data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    EXPECT_EQ((*r)[0].id, target);
    EXPECT_EQ((*r)[0].dist, 0.0f);
  }
}

TEST(QalshIndexTest, HighRecall) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 4000, 16, 5);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  double hits = 0;
  for (size_t q = 0; q < 16; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
  }
  EXPECT_GT(hits / 160.0, 0.6);
}

TEST(QalshIndexTest, NonIntegerCEndToEnd) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2500, 8, 9);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 5);
  ASSERT_TRUE(gt.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions(1.5));
  ASSERT_TRUE(index.ok());
  double hits = 0;
  for (size_t q = 0; q < 8; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 5; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
  }
  // c = 1.5 uses more functions and should be at least as accurate.
  EXPECT_GT(hits / 40.0, 0.6);
}

TEST(QalshIndexTest, ResultsSortedUniqueExactDistances) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 8, 11);
  ASSERT_TRUE(pd.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 8; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> ids;
    for (size_t i = 0; i < r->size(); ++i) {
      ids.insert((*r)[i].id);
      if (i > 0) { EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist); }
      const double exact =
          L2(pd->queries.row(q), pd->data.object((*r)[i].id), pd->data.dim());
      EXPECT_NEAR((*r)[i].dist, exact, 1e-4);
    }
    EXPECT_EQ(ids.size(), r->size());
  }
}

TEST(QalshIndexTest, StatsPopulatedAndT2Caps) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 4, 13);
  ASSERT_TRUE(pd.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  for (size_t q = 0; q < 4; ++q) {
    QalshQueryStats stats;
    auto r = index->Query(pd->data, pd->queries.row(q), 10, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_GT(stats.final_radius, 0.0);
    EXPECT_GT(stats.collision_increments, 0u);
    EXPECT_GT(stats.candidates_verified, 0u);
    EXPECT_TRUE(stats.termination == Termination::kT1 ||
                stats.termination == Termination::kT2);
    EXPECT_LT(stats.candidates_verified, 3000u / 2);
  }
}

TEST(QalshIndexTest, ExhaustiveMatchesLinearScan) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 400, 4, 15);
  ASSERT_TRUE(pd.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  LinearScan scan;
  for (size_t q = 0; q < 4; ++q) {
    auto approx = index->Query(pd->data, pd->queries.row(q), 400);
    auto exact = scan.Search(pd->data, pd->queries.row(q), 400);
    ASSERT_TRUE(approx.ok() && exact.ok());
    ASSERT_EQ(approx->size(), exact->size());
    for (size_t i = 0; i < approx->size(); ++i) {
      EXPECT_EQ((*approx)[i].id, (*exact)[i].id);
    }
  }
}

TEST(QalshIndexTest, QueryValidation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 300, 1, 17);
  ASSERT_TRUE(pd.ok());
  auto index = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(
      index->Query(pd->data, pd->queries.row(0), 0).status().IsInvalidArgument());
  auto other = MakeProfileDataset(DatasetProfile::kMnist, 300, 1, 18);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(index->Query(other->data, pd->queries.row(0), 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(QalshIndexTest, DeterministicAcrossRebuilds) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 4, 19);
  ASSERT_TRUE(pd.ok());
  auto a = QalshIndex::Build(pd->data, SmallOptions());
  auto b = QalshIndex::Build(pd->data, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t q = 0; q < 4; ++q) {
    auto ra = a->Query(pd->data, pd->queries.row(q), 5);
    auto rb = b->Query(pd->data, pd->queries.row(q), 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
    }
  }
}

TEST(QalshL1Test, CauchyProbabilityKnownValuesAndMonotonicity) {
  // (2/pi) * arctan(w/(2s)): at s = w/2 this is (2/pi)*arctan(1) = 1/2.
  EXPECT_NEAR(QalshCollisionProbability(1.0, 2.0, 1.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(QalshCollisionProbability(0.0, 2.0, 1.0), 1.0);
  double prev = 1.0;
  for (double s : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double p = QalshCollisionProbability(s, 2.0, 1.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(QalshL1Test, InvalidPRejected) {
  QalshOptions o = SmallOptions();
  o.p = 3.0;
  EXPECT_TRUE(ComputeQalshParams(o, 1000).status().IsInvalidArgument());
  o.p = 0.5;
  EXPECT_TRUE(ComputeQalshParams(o, 1000).status().IsInvalidArgument());
}

TEST(QalshL1Test, ManhattanSearchMatchesL1GroundTruth) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 12, 21);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10, Metric::kManhattan);
  ASSERT_TRUE(gt.ok());

  QalshOptions o = SmallOptions();
  o.p = 1.0;
  // L1 distances are ~sqrt(d) larger than L2 on the same data; widen the
  // window so distance 1 (the guarantee unit) has a workable p1.
  o.w = 8.0;
  auto index = QalshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  double hits = 0;
  for (size_t q = 0; q < 12; ++q) {
    auto r = index->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
    // Reported distances are exact L1.
    for (const Neighbor& nb : *r) {
      const double exact =
          L1(pd->queries.row(q), pd->data.object(nb.id), pd->data.dim());
      EXPECT_NEAR(nb.dist, exact, 1e-3);
    }
  }
  EXPECT_GT(hits / 120.0, 0.5);
}

TEST(QalshL1Test, L1ExactDuplicateFound) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 23);
  ASSERT_TRUE(pd.ok());
  QalshOptions o = SmallOptions();
  o.p = 1.0;
  o.w = 8.0;
  auto index = QalshIndex::Build(pd->data, o);
  ASSERT_TRUE(index.ok());
  auto r = index->Query(pd->data, pd->data.object(321), 1);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_EQ((*r)[0].id, 321u);
}

// Statistical validation of the query-aware collision probability for both
// metrics: the measured frequency of |a.(o-q)| <= w/2 at a planted distance
// must match the analytic formula.
class QalshCollisionFrequencyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(QalshCollisionFrequencyTest, MatchesAnalyticProbability) {
  const double p = std::get<0>(GetParam());
  const double s = std::get<1>(GetParam());
  const double w = 2.0;
  const size_t dim = 16;
  const int trials = 20000;
  Rng rng(777 + static_cast<uint64_t>(p * 10 + s * 100));

  int collisions = 0;
  for (int t = 0; t < trials; ++t) {
    // One random projection of the requested stability.
    std::vector<double> a(dim);
    for (auto& v : a) {
      v = (p == 1.0) ? std::tan(M_PI * (rng.Uniform(0.0, 1.0) - 0.5)) : rng.Gaussian();
    }
    // Two points at l_p distance s: offset one coordinate by s (for l1 this
    // is exact; for l2 likewise since only one coordinate differs).
    std::vector<float> o(dim), q(dim);
    for (size_t j = 0; j < dim; ++j) {
      o[j] = static_cast<float>(rng.Gaussian());
      q[j] = o[j];
    }
    const size_t coord = rng.Index(dim);
    q[coord] += static_cast<float>(s);
    double diff = 0;
    for (size_t j = 0; j < dim; ++j) {
      diff += a[j] * (static_cast<double>(o[j]) - q[j]);
    }
    if (std::fabs(diff) <= w / 2.0) ++collisions;
  }
  const double freq = static_cast<double>(collisions) / trials;
  const double expected = QalshCollisionProbability(s, w, p);
  const double sigma = std::sqrt(expected * (1 - expected) / trials);
  EXPECT_NEAR(freq, expected, 4 * sigma + 0.01) << "p=" << p << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, QalshCollisionFrequencyTest,
    ::testing::Values(std::make_tuple(2.0, 0.5), std::make_tuple(2.0, 1.0),
                      std::make_tuple(2.0, 2.0), std::make_tuple(2.0, 4.0),
                      std::make_tuple(1.0, 0.5), std::make_tuple(1.0, 1.0),
                      std::make_tuple(1.0, 2.0), std::make_tuple(1.0, 4.0)));

TEST(QalshIndexTest, FewerFunctionsThanC2lshAtSameSettings) {
  // The query-aware family's larger (p1 - p2) gap shrinks m — the extension
  // paper's headline efficiency claim over C2LSH.
  auto qalsh = ComputeQalshParams(SmallOptions(), 10000);
  ASSERT_TRUE(qalsh.ok());
  C2lshOptions co;
  co.w = 2.0;
  co.c = 2.0;
  co.delta = 0.1;
  auto c2 = ComputeDerivedParams(co, 10000);
  ASSERT_TRUE(c2.ok());
  EXPECT_LT(qalsh->counting.m, c2->m);
}

}  // namespace
}  // namespace c2lsh
