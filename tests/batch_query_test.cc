// Concurrency tests: Searcher-based parallel queries must match the serial
// answers exactly (the index is immutable during queries; only scratch is
// per-thread).

#include <thread>

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/util/thread_annotations.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct BatchWorld {
  Dataset data;
  FloatMatrix queries;
  C2lshIndex index;
};

BatchWorld MakeBatchWorld() {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 3000, 32, 9);
  EXPECT_TRUE(pd.ok());
  C2lshOptions o;
  o.seed = 21;
  auto index = C2lshIndex::Build(pd->data, o);
  EXPECT_TRUE(index.ok());
  return BatchWorld{std::move(pd->data), std::move(pd->queries),
                    std::move(index).value()};
}

TEST(BatchQueryTest, MatchesSerialQueries) {
  BatchWorld w = MakeBatchWorld();
  std::vector<NeighborList> serial;
  for (size_t q = 0; q < w.queries.num_rows(); ++q) {
    auto r = w.index.Query(w.data, w.queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    serial.push_back(std::move(r).value());
  }
  auto batch = w.index.BatchQuery(w.data, w.queries, 10, 4);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), serial.size());
  for (size_t q = 0; q < serial.size(); ++q) {
    ASSERT_EQ((*batch)[q].size(), serial[q].size()) << "q=" << q;
    for (size_t i = 0; i < serial[q].size(); ++i) {
      EXPECT_EQ((*batch)[q][i].id, serial[q][i].id) << "q=" << q << " i=" << i;
      EXPECT_EQ((*batch)[q][i].dist, serial[q][i].dist);
    }
  }
}

TEST(BatchQueryTest, SingleThreadPath) {
  BatchWorld w = MakeBatchWorld();
  auto batch = w.index.BatchQuery(w.data, w.queries, 5, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), w.queries.num_rows());
}

TEST(BatchQueryTest, DimMismatchRejected) {
  BatchWorld w = MakeBatchWorld();
  auto wrong = FloatMatrix::Create(3, w.data.dim() + 1);
  ASSERT_TRUE(wrong.ok());
  EXPECT_TRUE(w.index.BatchQuery(w.data, wrong.value(), 5).status().IsInvalidArgument());
}

TEST(BatchQueryTest, PropagatesQueryErrors) {
  BatchWorld w = MakeBatchWorld();
  EXPECT_TRUE(w.index.BatchQuery(w.data, w.queries, 0).status().IsInvalidArgument());
}

TEST(BatchQueryTest, ManualSearchersRunConcurrently) {
  BatchWorld w = MakeBatchWorld();
  // Reference answers.
  std::vector<NeighborList> expected;
  for (size_t q = 0; q < 8; ++q) {
    auto r = w.index.Query(w.data, w.queries.row(q), 5);
    ASSERT_TRUE(r.ok());
    expected.push_back(std::move(r).value());
  }
  // 8 threads, each hammering its own query repeatedly through its own
  // Searcher. Any cross-thread scratch corruption shows up as a mismatch.
  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      C2lshIndex::Searcher searcher(&w.index);
      for (int rep = 0; rep < 20; ++rep) {
        auto r = searcher.Query(w.data, w.queries.row(t), 5);
        if (!r.ok() || r->size() != expected[t].size()) {
          ++failures[t];
          continue;
        }
        for (size_t i = 0; i < r->size(); ++i) {
          if ((*r)[i].id != expected[t][i].id) ++failures[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace c2lsh
