#include "src/baselines/lsb/lsb_forest.h"

#include <set>

#include <gtest/gtest.h>

#include "src/baselines/lsb/lsb_tree.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

LsbForestOptions SmallForest() {
  LsbForestOptions o;
  o.tree.u = 6;
  o.tree.v = 0;  // fit the grid to the data
  o.tree.w = 4.0;
  o.L = 8;
  o.c = 2.0;
  o.seed = 3;
  return o;
}

TEST(LsbTreeTest, BuildAndExpand) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 500, 4, 1);
  ASSERT_TRUE(pd.ok());
  LsbTreeOptions o;
  o.u = 4;
  o.v = 12;
  o.w = 4.0;
  o.seed = 5;
  auto tree = LsbTree::Build(pd->data, o);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 500u);

  IoCounter io;
  auto exp = tree->StartExpansion(pd->queries.row(0), &io);
  EXPECT_GT(io.index_pages(), 0u);  // the descent was charged

  // Exhausting the expansion yields every object exactly once.
  std::set<ObjectId> seen;
  size_t steps = 0;
  while (exp.HasNext()) {
    const auto item = exp.Next(&io);
    EXPECT_LE(item.llcp_bits, tree->encoder().key_bits());
    EXPECT_EQ(item.level, item.llcp_bits / 4);
    seen.insert(item.id);
    ++steps;
  }
  EXPECT_EQ(steps, 500u);
  EXPECT_EQ(seen.size(), 500u);
}

TEST(LsbTreeTest, ExpansionYieldsNonIncreasingLlcpPerSide) {
  // Globally the expansion takes the better side first, so the first item
  // has the maximum LLCP over the whole tree.
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 800, 1, 7);
  ASSERT_TRUE(pd.ok());
  LsbTreeOptions o;
  o.u = 4;
  o.v = 12;
  o.w = 4.0;
  o.seed = 9;
  auto tree = LsbTree::Build(pd->data, o);
  ASSERT_TRUE(tree.ok());
  auto exp = tree->StartExpansion(pd->queries.row(0), nullptr);
  ASSERT_TRUE(exp.HasNext());
  const auto first = exp.Next(nullptr);
  size_t max_rest = 0;
  while (exp.HasNext()) {
    max_rest = std::max(max_rest, exp.Next(nullptr).llcp_bits);
  }
  EXPECT_GE(first.llcp_bits, max_rest);
}

TEST(LsbForestTest, Validation) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 11);
  ASSERT_TRUE(pd.ok());
  LsbForestOptions o = SmallForest();
  o.c = 1.2;
  EXPECT_TRUE(LsbForest::Build(pd->data, o).status().IsInvalidArgument());
}

TEST(LsbForestTest, DefaultLMatchesPaperFormula) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 1, 13);
  ASSERT_TRUE(pd.ok());
  LsbForestOptions o = SmallForest();
  o.L = 0;  // auto
  auto forest = LsbForest::Build(pd->data, o);
  ASSERT_TRUE(forest.ok());
  // sqrt(d*n/B_entries) = sqrt(32 * 2000 / 1024) = sqrt(62.5) ~ 8.
  EXPECT_GE(forest->num_trees(), 7u);
  EXPECT_LE(forest->num_trees(), 9u);
}

TEST(LsbForestTest, FindsExactDuplicate) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1500, 1, 17);
  ASSERT_TRUE(pd.ok());
  auto forest = LsbForest::Build(pd->data, SmallForest());
  ASSERT_TRUE(forest.ok());
  for (ObjectId target : {3u, 700u, 1400u}) {
    auto r = forest->Query(pd->data, pd->data.object(target), 1);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->empty());
    // A duplicate has maximal LLCP in every tree; it must surface first.
    EXPECT_EQ((*r)[0].id, target);
    EXPECT_EQ((*r)[0].dist, 0.0f);
  }
}

TEST(LsbForestTest, ReasonableRecall) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 4000, 16, 19);
  ASSERT_TRUE(pd.ok());
  auto gt = ComputeGroundTruth(pd->data, pd->queries, 10);
  ASSERT_TRUE(gt.ok());
  auto forest = LsbForest::Build(pd->data, SmallForest());
  ASSERT_TRUE(forest.ok());
  double hits = 0;
  for (size_t q = 0; q < 16; ++q) {
    auto r = forest->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> truth;
    for (size_t i = 0; i < 10; ++i) truth.insert((*gt)[q][i].id);
    for (const Neighbor& nb : *r) hits += truth.count(nb.id);
  }
  EXPECT_GT(hits / 160.0, 0.4);
}

TEST(LsbForestTest, StatsAndTermination) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 2000, 4, 23);
  ASSERT_TRUE(pd.ok());
  auto forest = LsbForest::Build(pd->data, SmallForest());
  ASSERT_TRUE(forest.ok());
  for (size_t q = 0; q < 4; ++q) {
    LsbQueryStats stats;
    auto r = forest->Query(pd->data, pd->queries.row(q), 10, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(stats.candidates_verified, 0u);
    EXPECT_GT(stats.expansions, 0u);
    EXPECT_GT(stats.index_pages, 0u);
    EXPECT_TRUE(stats.terminated_by_quality || stats.terminated_by_budget ||
                stats.candidates_verified == 2000u);
  }
}

TEST(LsbForestTest, BudgetCapsCandidates) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 3000, 4, 29);
  ASSERT_TRUE(pd.ok());
  LsbForestOptions o = SmallForest();
  o.candidate_budget = 100;
  auto forest = LsbForest::Build(pd->data, o);
  ASSERT_TRUE(forest.ok());
  for (size_t q = 0; q < 4; ++q) {
    LsbQueryStats stats;
    auto r = forest->Query(pd->data, pd->queries.row(q), 10, &stats);
    ASSERT_TRUE(r.ok());
    // One sweep can overshoot by at most L candidates.
    EXPECT_LE(stats.candidates_verified, 100u + forest->num_trees());
  }
}

TEST(LsbForestTest, ResultsSortedUnique) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, 1000, 8, 31);
  ASSERT_TRUE(pd.ok());
  auto forest = LsbForest::Build(pd->data, SmallForest());
  ASSERT_TRUE(forest.ok());
  for (size_t q = 0; q < 8; ++q) {
    auto r = forest->Query(pd->data, pd->queries.row(q), 10);
    ASSERT_TRUE(r.ok());
    std::set<ObjectId> ids;
    for (size_t i = 0; i < r->size(); ++i) {
      ids.insert((*r)[i].id);
      if (i > 0) { EXPECT_LE((*r)[i - 1].dist, (*r)[i].dist); }
    }
    EXPECT_EQ(ids.size(), r->size());
  }
}

TEST(LsbForestTest, MoreTreesMoreMemory) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 1000, 1, 37);
  ASSERT_TRUE(pd.ok());
  LsbForestOptions small = SmallForest();
  small.L = 4;
  LsbForestOptions big = SmallForest();
  big.L = 16;
  auto a = LsbForest::Build(pd->data, small);
  auto b = LsbForest::Build(pd->data, big);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->MemoryBytes(), a->MemoryBytes() * 3);
}

TEST(LsbForestTest, KZeroRejected) {
  auto pd = MakeProfileDataset(DatasetProfile::kColor, 200, 1, 41);
  ASSERT_TRUE(pd.ok());
  auto forest = LsbForest::Build(pd->data, SmallForest());
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->Query(pd->data, pd->queries.row(0), 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace c2lsh
