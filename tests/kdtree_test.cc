#include "src/baselines/srs/kdtree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace c2lsh {
namespace {

std::vector<float> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> pts(n * dim);
  for (auto& v : pts) v = static_cast<float>(rng.Gaussian(0, 10));
  return pts;
}

TEST(KdTreeTest, BuildValidation) {
  EXPECT_TRUE(KdTree::Build({}, 0, 3).status().IsInvalidArgument());
  EXPECT_TRUE(KdTree::Build({1.0f}, 1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(KdTree::Build({1.0f, 2.0f}, 2, 3).status().IsInvalidArgument());
  EXPECT_TRUE(KdTree::Build({1.0f, 2.0f, 3.0f}, 1, 3).ok());
}

TEST(KdTreeTest, StreamYieldsEveryPointExactlyOnce) {
  const size_t n = 500;
  const size_t dim = 4;
  auto tree = KdTree::Build(RandomPoints(n, dim, 3), n, dim);
  ASSERT_TRUE(tree.ok());
  const float q[4] = {0, 0, 0, 0};
  auto stream = tree->StartStream(q);
  std::vector<int> seen(n, 0);
  size_t count = 0;
  while (stream.HasNext()) {
    const auto item = stream.Next();
    if (!std::isfinite(item.squared_dist)) break;
    ++seen[item.id];
    ++count;
  }
  EXPECT_EQ(count, n);
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(KdTreeTest, StreamOrderIsNonDecreasing) {
  const size_t n = 800;
  const size_t dim = 6;
  auto tree = KdTree::Build(RandomPoints(n, dim, 7), n, dim);
  ASSERT_TRUE(tree.ok());
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(dim);
    for (auto& v : q) v = static_cast<float>(rng.Gaussian(0, 10));
    auto stream = tree->StartStream(q.data());
    double prev = -1.0;
    while (stream.HasNext()) {
      const auto item = stream.Next();
      if (!std::isfinite(item.squared_dist)) break;
      EXPECT_GE(item.squared_dist, prev - 1e-9);
      prev = item.squared_dist;
    }
  }
}

TEST(KdTreeTest, StreamMatchesBruteForceOrder) {
  const size_t n = 300;
  const size_t dim = 5;
  const auto pts = RandomPoints(n, dim, 11);
  auto tree = KdTree::Build(pts, n, dim);
  ASSERT_TRUE(tree.ok());
  Rng rng(13);
  std::vector<float> q(dim);
  for (auto& v : q) v = static_cast<float>(rng.Gaussian(0, 10));

  // Brute-force sorted distances.
  std::vector<std::pair<double, ObjectId>> expected;
  for (size_t i = 0; i < n; ++i) {
    double d = 0;
    for (size_t j = 0; j < dim; ++j) {
      const double diff = static_cast<double>(pts[i * dim + j]) - q[j];
      d += diff * diff;
    }
    expected.emplace_back(d, static_cast<ObjectId>(i));
  }
  std::sort(expected.begin(), expected.end());

  auto stream = tree->StartStream(q.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(stream.HasNext());
    const auto item = stream.Next();
    EXPECT_NEAR(item.squared_dist, expected[i].first, 1e-6)
        << "position " << i;
  }
}

TEST(KdTreeTest, PeekLowerBoundsNext) {
  const size_t n = 400;
  const size_t dim = 3;
  auto tree = KdTree::Build(RandomPoints(n, dim, 17), n, dim);
  ASSERT_TRUE(tree.ok());
  const float q[3] = {1, 2, 3};
  auto stream = tree->StartStream(q);
  while (stream.HasNext()) {
    const double bound = stream.PeekSquaredDist();
    const auto item = stream.Next();
    if (!std::isfinite(item.squared_dist)) break;
    EXPECT_LE(bound, item.squared_dist + 1e-9);
  }
}

TEST(KdTreeTest, DuplicatePointsAllYielded) {
  std::vector<float> pts = {1, 1, 1, 1, 1, 1, 5, 5};  // 4 points in 2-d
  auto tree = KdTree::Build(pts, 4, 2);
  ASSERT_TRUE(tree.ok());
  const float q[2] = {1, 1};
  auto stream = tree->StartStream(q);
  size_t zeros = 0;
  size_t total = 0;
  while (stream.HasNext()) {
    const auto item = stream.Next();
    if (!std::isfinite(item.squared_dist)) break;
    ++total;
    if (item.squared_dist == 0.0) ++zeros;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(zeros, 3u);
}

TEST(KdTreeTest, SinglePoint) {
  std::vector<float> pts = {2, 3};
  auto tree = KdTree::Build(pts, 1, 2);
  ASSERT_TRUE(tree.ok());
  const float q[2] = {0, 0};
  auto stream = tree->StartStream(q);
  ASSERT_TRUE(stream.HasNext());
  const auto item = stream.Next();
  EXPECT_EQ(item.id, 0u);
  EXPECT_NEAR(item.squared_dist, 13.0, 1e-9);
}

}  // namespace
}  // namespace c2lsh
