#include "src/core/cost_model.h"

#include <gtest/gtest.h>

#include "src/core/index.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

struct ModelWorld {
  Dataset data;
  FloatMatrix queries;
};

ModelWorld MakeModelWorld(size_t n, uint64_t seed) {
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, n, 24, seed);
  EXPECT_TRUE(pd.ok());
  return ModelWorld{std::move(pd->data), std::move(pd->queries)};
}

TEST(DistanceProfileTest, Validation) {
  ModelWorld w = MakeModelWorld(500, 1);
  EXPECT_TRUE(SampleDistanceProfile(w.data, 0, 10, 5, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SampleDistanceProfile(w.data, 10, 0, 5, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SampleDistanceProfile(w.data, 10, 10, 0, 1).status().IsInvalidArgument());
}

TEST(DistanceProfileTest, ShapeAndMonotoneKnn) {
  ModelWorld w = MakeModelWorld(1000, 2);
  auto profile = SampleDistanceProfile(w.data, 16, 64, 20, 7);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->distances.size(), 16u * 64u);
  EXPECT_EQ(profile->n, 1000u);
  ASSERT_EQ(profile->kth_nn_distance.size(), 20u);
  for (size_t i = 1; i < 20; ++i) {
    EXPECT_GE(profile->kth_nn_distance[i], profile->kth_nn_distance[i - 1]);
  }
  // The profiles normalize NN distance to ~8 data units.
  EXPECT_GT(profile->kth_nn_distance[0], 1.0);
  EXPECT_LT(profile->kth_nn_distance[0], 40.0);
  for (double d : profile->distances) EXPECT_GE(d, 0.0);
}

TEST(DistanceProfileTest, Deterministic) {
  ModelWorld w = MakeModelWorld(400, 3);
  auto a = SampleDistanceProfile(w.data, 8, 32, 10, 5);
  auto b = SampleDistanceProfile(w.data, 8, 32, 10, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->distances, b->distances);
  EXPECT_EQ(a->kth_nn_distance, b->kth_nn_distance);
}

TEST(CostModelTest, PredictionValidation) {
  ModelWorld w = MakeModelWorld(500, 4);
  C2lshOptions o;
  auto derived = ComputeDerivedParams(o, 500);
  ASSERT_TRUE(derived.ok());
  DistanceProfile empty;
  EXPECT_TRUE(PredictQueryCost(*derived, empty, 5).status().IsInvalidArgument());
  auto profile = SampleDistanceProfile(w.data, 8, 32, 10, 5);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(PredictQueryCost(*derived, *profile, 0).status().IsInvalidArgument());
}

TEST(CostModelTest, PredictsMeasuredBehaviourWithinFactor) {
  // The headline test: the analytic model must land within a small factor of
  // measured query stats — terminating radius within one round, candidates
  // and increments within ~3x.
  const size_t n = 6000;
  ModelWorld w = MakeModelWorld(n, 6);
  C2lshOptions options;
  options.seed = 9;
  auto derived = ComputeDerivedParams(options, n);
  ASSERT_TRUE(derived.ok());
  auto profile = SampleDistanceProfile(w.data, 16, 128, 10, 11);
  ASSERT_TRUE(profile.ok());
  const size_t k = 10;
  auto pred = PredictQueryCost(*derived, *profile, k);
  ASSERT_TRUE(pred.ok());

  auto index = C2lshIndex::Build(w.data, options);
  ASSERT_TRUE(index.ok());
  double measured_radius = 0, measured_candidates = 0, measured_increments = 0;
  const size_t nq = w.queries.num_rows();
  for (size_t q = 0; q < nq; ++q) {
    C2lshQueryStats stats;
    auto r = index->Query(w.data, w.queries.row(q), k, &stats);
    ASSERT_TRUE(r.ok());
    measured_radius += static_cast<double>(stats.final_radius);
    measured_candidates += static_cast<double>(stats.candidates_verified);
    measured_increments += static_cast<double>(stats.collision_increments);
  }
  measured_radius /= static_cast<double>(nq);
  measured_candidates /= static_cast<double>(nq);
  measured_increments /= static_cast<double>(nq);

  // Terminating radius: within a factor of the radius step (c = 2) of the
  // measured geometric mean round.
  EXPECT_GE(static_cast<double>(pred->terminating_radius), measured_radius / 4.0);
  EXPECT_LE(static_cast<double>(pred->terminating_radius), measured_radius * 4.0);
  // Candidates and increments: same order of magnitude.
  EXPECT_GE(pred->expected_candidates, measured_candidates / 4.0);
  EXPECT_LE(pred->expected_candidates, measured_candidates * 4.0);
  EXPECT_GE(pred->expected_increments, measured_increments / 4.0);
  EXPECT_LE(pred->expected_increments, measured_increments * 4.0);
}

TEST(CostModelTest, LargerKNeedsNoSmallerRadius) {
  ModelWorld w = MakeModelWorld(3000, 8);
  C2lshOptions options;
  auto derived = ComputeDerivedParams(options, 3000);
  ASSERT_TRUE(derived.ok());
  auto profile = SampleDistanceProfile(w.data, 16, 64, 50, 13);
  ASSERT_TRUE(profile.ok());
  auto p1 = PredictQueryCost(*derived, *profile, 1);
  auto p50 = PredictQueryCost(*derived, *profile, 50);
  ASSERT_TRUE(p1.ok() && p50.ok());
  EXPECT_LE(p1->terminating_radius, p50->terminating_radius);
  EXPECT_LE(p1->expected_candidates, p50->expected_candidates * 1.01);
}

TEST(CostModelTest, CandidatesGrowWithRadius) {
  // Internal consistency: evaluating the model at k with a farther k-th NN
  // must not shrink expected work.
  ModelWorld w = MakeModelWorld(2000, 10);
  C2lshOptions options;
  auto derived = ComputeDerivedParams(options, 2000);
  ASSERT_TRUE(derived.ok());
  auto profile = SampleDistanceProfile(w.data, 8, 64, 20, 17);
  ASSERT_TRUE(profile.ok());
  auto pred = PredictQueryCost(*derived, *profile, 10);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->expected_candidates, 0.0);
  EXPECT_GT(pred->expected_increments, pred->expected_candidates);
  EXPECT_GE(pred->expected_rounds, 1.0);
}

}  // namespace
}  // namespace c2lsh
