// Lint fixture: intrinsics and <chrono> includes outside their sanctioned
// homes — must trip isa-header and chrono-include (this file is not under
// src/vector/ or the chrono allowlist).

#include <immintrin.h>
#include <chrono>

namespace fixture {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
