// Lint fixture: deliberately violates the socket confinement rules.
// Expected: 2x [socket-header] (the two includes), 3x [raw-socket] (the
// socket(), ::connect(), and connect() calls). The NOLINT line, the method
// call, the namespace-qualified name, and the commented/quoted mentions
// must all stay clean.
#include <sys/socket.h>   // socket-header
#include <netinet/in.h>   // socket-header

struct Conn {
  void Shutdown();
};

int Rogue() {
  int fd = socket(2, 1, 0);   // raw-socket
  ::connect(fd, nullptr, 0);  // raw-socket: global scope doesn't escape
  connect(fd, nullptr, 0);    // raw-socket
  return fd;
}

int Escaped(int fd) {
  return accept(fd, nullptr, nullptr);  // NOLINT(raw-socket)
}

void Clean(Conn* c) {
  c->Shutdown();                 // member call, not the syscall
  auto f = std::bind(&Clean, c);  // namespace-qualified: not the syscall
  (void)f;
  // calling listen( in a comment is fine, so is "socket(" in a string:
  const char* s = "socket(";
  (void)s;
}
