// Lint fixture: banned functions. Four violations, one NOLINT exemption,
// and lookalikes that must NOT fire (prefixed identifiers, strings,
// comments).

#include <cstdio>
#include <cstring>

namespace fixture {

int my_rand() { return 4; }

int Roll() {
  int bad = rand();                       // banned-function
  char buf[16];
  strcpy(buf, "x");                       // banned-function
  sprintf(buf, "%d", bad);                // banned-function
  int* leak = new int(7);                 // banned-function (naked new)
  int ok = rand();  // NOLINT(banned-function) — fixture exemption
  int fine = my_rand();                   // prefixed identifier — clean
  // rand() in a comment is clean, as is "rand()" in a string:
  const char* s = "rand()";
  (void)s;
  return bad + ok + fine + *leak;
}

}  // namespace fixture
