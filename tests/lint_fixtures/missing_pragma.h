// Lint fixture: a header relying on classic include guards alone — must
// trip the pragma-once rule (careful: naming the missing directive here
// verbatim would satisfy the substring check).
#ifndef C2LSH_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_
#define C2LSH_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_

namespace fixture {
inline int Answer() { return 42; }
}  // namespace fixture

#endif  // C2LSH_TESTS_LINT_FIXTURES_MISSING_PRAGMA_H_
