// Lint fixture: spawns std::thread without including the thread-annotation
// or mutex header — must trip thread-header.

#include <thread>

namespace fixture {

void Spawn() {
  std::thread t([] {});
  t.join();
}

}  // namespace fixture
