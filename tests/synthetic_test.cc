#include "src/vector/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/vector/distance.h"

namespace c2lsh {
namespace {

TEST(MixtureTest, ShapeAndDeterminism) {
  MixtureConfig cfg;
  cfg.n = 500;
  cfg.dim = 16;
  cfg.num_clusters = 5;
  cfg.seed = 3;
  auto a = GenerateGaussianMixture(cfg);
  auto b = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_rows(), 500u);
  EXPECT_EQ(a->dim(), 16u);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(a->at(i, j), b->at(i, j));
    }
  }
}

TEST(MixtureTest, DifferentSeedsDiffer) {
  MixtureConfig cfg;
  cfg.n = 100;
  cfg.dim = 8;
  cfg.seed = 1;
  auto a = GenerateGaussianMixture(cfg);
  cfg.seed = 2;
  auto b = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (size_t j = 0; j < 8; ++j) any_diff |= (a->at(0, j) != b->at(0, j));
  EXPECT_TRUE(any_diff);
}

TEST(MixtureTest, ClusterMatesAreCloserThanStrangers) {
  MixtureConfig cfg;
  cfg.n = 400;
  cfg.dim = 32;
  cfg.num_clusters = 4;
  cfg.center_spread = 5.0;
  cfg.cluster_stddev = 0.1;
  cfg.seed = 9;
  auto m = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(m.ok());
  // Round-robin assignment: rows i and i+4 share a cluster; i and i+1 don't.
  double same_sum = 0.0;
  double diff_sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i + 4 < 200; i += 4) {
    same_sum += L2(m->row(i), m->row(i + 4), 32);
    diff_sum += L2(m->row(i), m->row(i + 1), 32);
    ++pairs;
  }
  EXPECT_LT(same_sum / pairs, diff_sum / pairs * 0.5);
}

TEST(MixtureTest, RejectsZeroClusters) {
  MixtureConfig cfg;
  cfg.num_clusters = 0;
  EXPECT_TRUE(GenerateGaussianMixture(cfg).status().IsInvalidArgument());
}

TEST(UniformTest, RangeAndShape) {
  auto m = GenerateUniform(200, 6, 5);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_rows(), 200u);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_GE(m->at(i, j), 0.0f);
      EXPECT_LT(m->at(i, j), 1.0f);
    }
  }
}

TEST(QueryGenTest, QueriesStayNearData) {
  MixtureConfig cfg;
  cfg.n = 300;
  cfg.dim = 12;
  cfg.seed = 11;
  auto data = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(data.ok());
  auto queries = GenerateQueriesNearData(data.value(), 20, 0.01, 13);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->num_rows(), 20u);
  // Every query must be within jitter distance of some data point —
  // generously bounded by 6 sigma per coordinate accumulated.
  for (size_t q = 0; q < 20; ++q) {
    double best = 1e30;
    for (size_t i = 0; i < 300; ++i) {
      best = std::min(best, L2(queries->row(q), data->row(i), 12));
    }
    EXPECT_LT(best, 0.01 * 6 * std::sqrt(12.0));
  }
}

TEST(QueryGenTest, EmptyDataRejected) {
  FloatMatrix empty;
  EXPECT_TRUE(GenerateQueriesNearData(empty, 5, 0.1, 1).status().IsInvalidArgument());
}

TEST(NnEstimateTest, DetectsScale) {
  MixtureConfig cfg;
  cfg.n = 500;
  cfg.dim = 8;
  cfg.cluster_stddev = 0.05;
  cfg.seed = 21;
  auto m = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(m.ok());
  const double nn1 = EstimateNearestNeighborDistance(m.value(), 32, 0, 1);
  ASSERT_GT(nn1, 0.0);
  // Double every coordinate: the NN estimate must double too.
  FloatMatrix scaled = m.value();
  for (size_t i = 0; i < scaled.num_rows(); ++i) {
    for (size_t j = 0; j < scaled.dim(); ++j) {
      scaled.set(i, j, scaled.at(i, j) * 2.0f);
    }
  }
  const double nn2 = EstimateNearestNeighborDistance(scaled, 32, 0, 1);
  EXPECT_NEAR(nn2 / nn1, 2.0, 0.05);
}

TEST(RescaleTest, HitsTarget) {
  MixtureConfig cfg;
  cfg.n = 600;
  cfg.dim = 10;
  cfg.seed = 31;
  auto m = GenerateGaussianMixture(cfg);
  ASSERT_TRUE(m.ok());
  RescaleToTargetNN(&m.value(), 8.0, 7);
  const double nn = EstimateNearestNeighborDistance(m.value(), 64, 0, 7);
  EXPECT_NEAR(nn, 8.0, 2.5);  // sampled estimate; loose tolerance
}

TEST(ProfileTest, AllProfilesMaterialize) {
  for (DatasetProfile p : AllDatasetProfiles()) {
    auto r = MakeProfileDataset(p, 1000, 10, 42);
    ASSERT_TRUE(r.ok()) << DatasetProfileName(p);
    EXPECT_EQ(r->data.size(), 1000u);
    EXPECT_EQ(r->queries.num_rows(), 10u);
    EXPECT_EQ(r->queries.dim(), r->data.dim());
    EXPECT_EQ(r->data.name(), DatasetProfileName(p));
  }
}

TEST(ProfileTest, DimensionsMatchPublishedDatasets) {
  auto audio = MakeProfileDataset(DatasetProfile::kAudio, 200, 2, 1);
  auto mnist = MakeProfileDataset(DatasetProfile::kMnist, 200, 2, 1);
  auto color = MakeProfileDataset(DatasetProfile::kColor, 200, 2, 1);
  auto labelme = MakeProfileDataset(DatasetProfile::kLabelMe, 200, 2, 1);
  ASSERT_TRUE(audio.ok() && mnist.ok() && color.ok() && labelme.ok());
  EXPECT_EQ(audio->data.dim(), 192u);
  EXPECT_EQ(mnist->data.dim(), 50u);
  EXPECT_EQ(color->data.dim(), 32u);
  EXPECT_EQ(labelme->data.dim(), 512u);
}

TEST(ProfileTest, NnDistanceNormalizedNearTarget) {
  auto r = MakeProfileDataset(DatasetProfile::kColor, 2000, 5, 17);
  ASSERT_TRUE(r.ok());
  const double nn = EstimateNearestNeighborDistance(r->data.vectors(), 64, 0, 99);
  EXPECT_GT(nn, 3.0);
  EXPECT_LT(nn, 20.0);
}

}  // namespace
}  // namespace c2lsh
