#!/usr/bin/env python3
"""Project lint for the c2lsh tree — the static rules the compilers can't
(or don't reliably) enforce, wired into tools/check.sh as a pre-merge gate.

Rules (each failure prints `file:line: [rule] message` and exits non-zero):

  pragma-once       every header must contain `#pragma once` (the C2LSH_*_H_
                    guards stay for belt-and-suspenders, but the pragma is
                    what this gate checks).
  banned-function   rand(), strcpy(), sprintf() and naked `new` are
                    forbidden: the library uses <random> Rng, bounded string
                    ops, and std::make_unique/containers. Placement new and
                    make_unique/make_shared internals don't match.
  thread-header     any file spawning std::thread must include
                    src/util/thread_annotations.h or src/util/mutex.h, so
                    its cross-thread state is either annotated or documented
                    disjoint under the annotation regime.
  isa-header        ISA intrinsics headers (<immintrin.h>, <arm_neon.h>, ...)
                    may only be included under src/vector/ — every other
                    layer must go through the dispatched kernel table in
                    src/vector/simd.h, so no TU outside the kernel layer can
                    accidentally depend on -m flags it isn't compiled with.
  chrono-include    <chrono> may only be included by src/util/timer.h,
                    src/util/retry.h, src/util/query_context.h, src/obs/,
                    and src/serve/ — everywhere else, timing goes through
                    util::Timer, deadlines through Deadline, and observations
                    through the metrics registry, so clock reads stay
                    auditable in one place instead of scattered ad-hoc
                    steady_clock calls.
  raw-sleep         std::this_thread::sleep_for/sleep_until are banned in
                    src/ outside the retry backoff seam (src/util/retry.h)
                    and src/util/timer.h: a sleeping library call can't be
                    cancelled and wrecks deadline budgets. Waits belong on a
                    condition variable (wakeable) or in the deadline-aware
                    retry loop; tests may sleep freely.
  raw-thread        std::thread construction (and std::vector<std::thread>
                    pools) is banned in src/ outside src/util/thread_pool.h
                    and .cc: parallel work runs on ThreadPool::ParallelFor so
                    thread lifecycle, hardware clamping, and TSan-clean
                    handoff live in one audited place. Scope-resolution uses
                    (std::thread::hardware_concurrency(), std::thread::id)
                    stay legal everywhere; tests, tools, and bench binaries
                    may spawn their own threads.
  socket-header     BSD socket headers (<sys/socket.h>, <netinet/*.h>,
                    <arpa/inet.h>, <sys/un.h>, <netdb.h>, <poll.h>) are
                    confined to src/serve/transport_posix.cc — everything
                    else, tests included, talks to the network through the
                    Transport/Connection seam (src/util/socket.h), the same
                    way storage code reaches the filesystem only through Env.
  raw-socket        raw socket syscalls (socket, bind, listen, accept,
                    connect, setsockopt, getaddrinfo, recv, send, poll,
                    shutdown, ...) are likewise confined to the transport
                    seam: one file owns fd lifecycle, deadline slicing, and
                    EINTR handling, so fault injection (InprocTransport) and
                    the real network cannot drift apart. Method calls
                    (conn->Shutdown()) and std::bind don't match.
  tsc-read          raw cycle/clock reads (__rdtsc, __builtin_ia32_rdtsc,
                    __builtin_readcyclecounter, clock_gettime, gettimeofday)
                    are confined to src/obs/ within src/ — the span tracer's
                    TraceClock is the one calibrated tick source, so every
                    other layer's timing goes through util::Timer, Deadline,
                    or a ScopedSpan and stays attributable in trace exports.
  unchecked-status  a statement that calls a Status-returning function and
                    ignores the result. The [[nodiscard]] attribute makes the
                    compiler catch the same thing; the lint also runs on
                    files a given build config might skip, and rejects
                    `(void)` casts that lack an explanatory comment. The set
                    of Status-returning names is harvested from declarations
                    in src/ headers, so the rule updates itself; names that
                    are *also* declared with a non-Status return type
                    somewhere (e.g. Insert/Delete exist on both C2lshIndex,
                    returning Status, and BucketTable, returning void) are
                    skipped — this lint has no type information, and the
                    compiler's [[nodiscard]] already resolves those
                    precisely.

The mutation-seam rule that used to live here (a file-path allowlist for
WritePage/AllocatePage/SetUserRoot) has moved to tools/analyze, which
confines the primitives at function granularity over the call graph — see
the mutation-seam check there.

A line ending in `// NOLINT` or `// NOLINT(rule)` is exempt from that rule
(use sparingly, with justification in the surrounding comment).

Usage: tools/lint.py [--root DIR] [paths...]
Default paths: src/ tests/ tools/ bench/ fuzz/ under the repo root.
Directories named `*_fixtures` are skipped — they hold deliberately broken
inputs for the lint/analyzer self-tests.
"""

import argparse
import os
import re
import sys

DEFAULT_DIRS = ["src", "tests", "tools", "bench", "fuzz"]
SOURCE_EXTS = {".cc", ".cpp", ".h", ".hpp"}
HEADER_EXTS = {".h", ".hpp"}

BANNED_CALLS = [
    # (rule-regex, message)
    (re.compile(r"(?<![\w:.])rand\s*\("),
     "rand() is banned: use c2lsh::Rng (src/util/random.h)"),
    (re.compile(r"(?<![\w:.])srand\s*\("),
     "srand() is banned: use c2lsh::Rng (src/util/random.h)"),
    (re.compile(r"(?<![\w:.])strcpy\s*\("),
     "strcpy() is banned: use std::string or bounded copies"),
    (re.compile(r"(?<![\w:.])sprintf\s*\("),
     "sprintf() is banned: use snprintf or std::string formatting"),
]

NAKED_NEW = re.compile(r"(?<![\w:.])new\s+[A-Za-z_(]")
THREAD_USE = re.compile(r"std::thread\b")
THREAD_HEADERS = ("src/util/thread_annotations.h", "src/util/mutex.h")

# Intrinsics headers are confined to the SIMD kernel layer (src/vector/),
# whose translation units carry the matching -m target flags.
ISA_HEADER_INCLUDE = re.compile(
    r'^\s*#\s*include\s*[<"]'
    r"(?:immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|tmmintrin|"
    r"smmintrin|nmmintrin|wmmintrin|avxintrin|avx2intrin|avx512\w*|"
    r"arm_neon|arm_sve|arm_acle)\.h"
    r'[>"]')
ISA_HEADER_ALLOWED_PREFIX = os.path.join("src", "vector") + os.sep

# Clock reads are confined to the timing/backoff/observability primitives;
# everything else uses util::Timer or the metrics registry.
CHRONO_INCLUDE = re.compile(r'^\s*#\s*include\s*[<"]chrono[>"]')
CHRONO_ALLOWED_FILES = {
    os.path.join("src", "util", "timer.h"),
    os.path.join("src", "util", "retry.h"),
    os.path.join("src", "util", "query_context.h"),
}
CHRONO_ALLOWED_PREFIXES = (
    os.path.join("src", "obs") + os.sep,
    os.path.join("src", "serve") + os.sep,
)

# Library code must never block the thread uncancellably: sleeps live only in
# the deadline-aware retry backoff (and timer.h, the clock seam). Tests and
# tools may sleep.
RAW_SLEEP = re.compile(r"std::this_thread::sleep_(?:for|until)\b")
RAW_SLEEP_ALLOWED_FILES = {
    os.path.join("src", "util", "retry.h"),
    os.path.join("src", "util", "timer.h"),
}
RAW_SLEEP_SCOPE_PREFIX = "src" + os.sep

# Thread construction is confined to the shared worker pool. The negative
# lookahead exempts scope-resolution uses (std::thread::hardware_concurrency,
# std::thread::id), which query the platform without spawning anything.
RAW_THREAD = re.compile(r"std::thread\b(?!\s*::)")
RAW_THREAD_ALLOWED_FILES = {
    os.path.join("src", "util", "thread_pool.h"),
    os.path.join("src", "util", "thread_pool.cc"),
}
RAW_THREAD_SCOPE_PREFIX = "src" + os.sep

# The network is reached only through the Transport seam; the one file that
# may see BSD sockets is the POSIX transport implementation. Applies to every
# linted tree (tests and tools mock with InprocTransport, not real sockets).
SOCKET_HEADER_INCLUDE = re.compile(
    r'^\s*#\s*include\s*[<"]'
    r"(?:sys/socket|netinet/in|netinet/tcp|arpa/inet|sys/un|netdb|poll)\.h"
    r'[>"]')
# Matches `socket(` and the global-scope `::socket(`, but not member calls
# (obj.connect), namespace-qualified names (std::bind), or Foo::connect.
RAW_SOCKET = re.compile(
    r"(?<![\w.:])(?:::)?(?:socket|bind|listen|accept4?|connect|setsockopt|"
    r"getsockname|getaddrinfo|freeaddrinfo|recv|send|poll|shutdown)\s*\(")
SOCKET_ALLOWED_FILES = {
    os.path.join("src", "serve", "transport_posix.cc"),
}

# Raw cycle-counter and syscall clock reads are confined to the span
# tracer's TraceClock (src/obs/): one calibrated tick source, auditable in
# one place. Tests, tools, and bench binaries stay free to read clocks.
TSC_READ = re.compile(
    r"(?<![\w:.])(?:__rdtsc|__builtin_ia32_rdtsc|__builtin_readcyclecounter|"
    r"clock_gettime|gettimeofday)\s*\(")
TSC_READ_SCOPE_PREFIX = "src" + os.sep
TSC_READ_ALLOWED_PREFIX = os.path.join("src", "obs") + os.sep

# Declarations like `Status Foo(`, `static Status Foo(`, `virtual Status Foo(`
# in src/ headers; also the factory helpers `static Status IOError(` etc.
STATUS_DECL = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)*Status\s+([A-Za-z_]\w*)\s*\(")
# Same shape with any other return type — used to drop ambiguous names.
OTHER_DECL = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)*"
    r"(?!Status\b)[A-Za-z_][\w:<>]*(?:[&*]|\s)\s*([A-Za-z_]\w*)\s*\(")

# Lines that legitimately consume a Status: assignment/decl, return, macro
# wrappers, test assertions, explicit (void).
CONSUMED = re.compile(
    r"=|\breturn\b|C2LSH_RETURN_IF_ERROR|C2LSH_ASSIGN_OR_RETURN|"
    r"\bASSERT_|\bEXPECT_|\(void\)|\.ok\(\)|\.Is[A-Z]|\.code\(\)|\.ToString\(\)")

VOID_CAST = re.compile(r"\(void\)\s*[A-Za-z_]")


def iter_files(root, paths):
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            yield full
            continue
        for dirpath, dirnames, names in os.walk(full):
            # *_fixtures directories hold deliberately broken inputs for the
            # lint/analyzer self-tests.
            dirnames[:] = [d for d in dirnames if not d.endswith("_fixtures")]
            for name in sorted(names):
                if os.path.splitext(name)[1] in SOURCE_EXTS:
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(line):
    """Best-effort removal of // comments and string/char literals so the
    regexes don't fire on prose or formats. Block comments are handled by
    the caller tracking state."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def harvest_status_names(root):
    """Collect names of functions declared to return Status in src/ headers,
    minus names that some other declaration gives a non-Status return type
    (the lint cannot tell receivers apart; the compiler can)."""
    names = set()
    ambiguous = set()
    for f in iter_files(root, ["src"]):
        if os.path.splitext(f)[1] not in HEADER_EXTS:
            continue
        with open(f, encoding="utf-8") as fh:
            for line in fh:
                m = STATUS_DECL.match(line)
                if m:
                    names.add(m.group(1))
                    continue
                m = OTHER_DECL.match(line)
                if m:
                    ambiguous.add(m.group(1))
    # `Status` the type itself can appear as a constructor-style cast.
    names.discard("Status")
    return names - ambiguous


def lint_file(path, rel, status_names, errors):
    with open(path, encoding="utf-8") as fh:
        raw_lines = fh.readlines()
    text = "".join(raw_lines)
    ext = os.path.splitext(path)[1]

    if ext in HEADER_EXTS and "#pragma once" not in text:
        errors.append(f"{rel}:1: [pragma-once] header is missing '#pragma once'")

    uses_thread = False
    status_call = re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\(\))?(?:\.|->|::))*(?:" +
        "|".join(sorted(map(re.escape, status_names))) + r")\s*\(") if status_names else None

    in_block_comment = False
    for lineno, raw in enumerate(raw_lines, 1):
        line = raw.rstrip("\n")
        # Track /* ... */ state (coarse: one transition per line is enough
        # for this codebase's comment style).
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        code = strip_comments_and_strings(line)
        if not code.strip():
            continue
        nolint = re.search(r"//\s*NOLINT(?:\(([\w-]+)\))?", line)

        def allowed(rule):
            return nolint is not None and nolint.group(1) in (None, rule)

        for pattern, msg in BANNED_CALLS:
            if pattern.search(code) and not allowed("banned-function"):
                errors.append(f"{rel}:{lineno}: [banned-function] {msg}")
        if (ISA_HEADER_INCLUDE.match(code) and
                not rel.startswith(ISA_HEADER_ALLOWED_PREFIX) and
                not allowed("isa-header")):
            errors.append(
                f"{rel}:{lineno}: [isa-header] intrinsics headers are confined "
                "to src/vector/ — call through the dispatch table in "
                "src/vector/simd.h instead")
        if (CHRONO_INCLUDE.match(code) and
                rel not in CHRONO_ALLOWED_FILES and
                not rel.startswith(CHRONO_ALLOWED_PREFIXES) and
                not allowed("chrono-include")):
            errors.append(
                f"{rel}:{lineno}: [chrono-include] <chrono> is confined to "
                "src/util/{timer,retry,query_context}.h, src/obs/, and "
                "src/serve/ — time with util::Timer, bound with Deadline "
                "(src/util/query_context.h)")
        if (RAW_SLEEP.search(code) and
                rel.startswith(RAW_SLEEP_SCOPE_PREFIX) and
                rel not in RAW_SLEEP_ALLOWED_FILES and
                not allowed("raw-sleep")):
            errors.append(
                f"{rel}:{lineno}: [raw-sleep] std::this_thread::sleep_* is "
                "banned in library code — it cannot be cancelled and blows "
                "deadline budgets; wait on a condition variable or go through "
                "the deadline-aware retry loop (src/util/retry.h)")
        if (RAW_THREAD.search(code) and
                rel.startswith(RAW_THREAD_SCOPE_PREFIX) and
                rel not in RAW_THREAD_ALLOWED_FILES and
                not allowed("raw-thread")):
            errors.append(
                f"{rel}:{lineno}: [raw-thread] raw std::thread is confined to "
                "src/util/thread_pool.{h,cc} — run parallel work on "
                "ThreadPool::ParallelFor (std::thread::hardware_concurrency() "
                "and std::thread::id stay legal)")
        if (SOCKET_HEADER_INCLUDE.match(code) and
                rel not in SOCKET_ALLOWED_FILES and
                not allowed("socket-header")):
            errors.append(
                f"{rel}:{lineno}: [socket-header] BSD socket headers are "
                "confined to src/serve/transport_posix.cc — use the "
                "Transport/Connection seam (src/util/socket.h)")
        if (RAW_SOCKET.search(code) and
                rel not in SOCKET_ALLOWED_FILES and
                not allowed("raw-socket")):
            errors.append(
                f"{rel}:{lineno}: [raw-socket] raw socket syscalls are "
                "confined to src/serve/transport_posix.cc — go through "
                "Transport/Connection (src/util/socket.h) so tests can "
                "fault-inject the wire")
        if (TSC_READ.search(code) and
                rel.startswith(TSC_READ_SCOPE_PREFIX) and
                not rel.startswith(TSC_READ_ALLOWED_PREFIX) and
                not allowed("tsc-read")):
            errors.append(
                f"{rel}:{lineno}: [tsc-read] raw cycle/clock reads are "
                "confined to src/obs/ (TraceClock) — time with util::Timer, "
                "bound with Deadline, or emit a ScopedSpan")
        if NAKED_NEW.search(code) and not allowed("banned-function"):
            errors.append(
                f"{rel}:{lineno}: [banned-function] naked 'new' is banned: use "
                "std::make_unique / std::make_shared / containers")
        if THREAD_USE.search(code):
            uses_thread = True

        if status_call and status_call.match(code) and code.rstrip().endswith(";"):
            if not CONSUMED.search(code) and not allowed("unchecked-status"):
                errors.append(
                    f"{rel}:{lineno}: [unchecked-status] result of a "
                    "Status-returning call is dropped — check it, use "
                    "C2LSH_RETURN_IF_ERROR, or cast to (void) with a comment")
        if VOID_CAST.search(code) and any(n + "(" in code for n in status_names):
            # (void)-dropping a Status requires a same-line or previous-line
            # comment saying why it's safe.
            prev = raw_lines[lineno - 2] if lineno >= 2 else ""
            if ("//" not in raw and "//" not in prev and "*/" not in prev and
                    not allowed("unchecked-status")):
                errors.append(
                    f"{rel}:{lineno}: [unchecked-status] (void)-discarded Status "
                    "needs a comment explaining why dropping the error is safe")

    if uses_thread and not any(h in text for h in THREAD_HEADERS):
        errors.append(
            f"{rel}:1: [thread-header] file uses std::thread but includes neither "
            "src/util/thread_annotations.h nor src/util/mutex.h")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("paths", nargs="*", default=DEFAULT_DIRS)
    args = parser.parse_args()

    status_names = harvest_status_names(args.root)
    errors = []
    nfiles = 0
    for path in iter_files(args.root, args.paths or DEFAULT_DIRS):
        rel = os.path.relpath(path, args.root)
        nfiles += 1
        lint_file(path, rel, status_names, errors)

    for e in errors:
        print(e)
    print(f"lint: {nfiles} files, {len(errors)} error(s), "
          f"{len(status_names)} Status-returning functions tracked",
          file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
