// c2lsh_tool — command-line driver for building, persisting, inspecting and
// querying C2LSH indexes over .fvecs datasets.
//
//   # build an index over a dataset and save it
//   c2lsh_tool --mode=build --data=base.fvecs --index=base.c2lsh [--c=2 ...]
//
//   # inspect a saved index
//   c2lsh_tool --mode=info --index=base.c2lsh
//
//   # query: top-k for every vector in a query file, results as .ivecs
//   c2lsh_tool --mode=query --data=base.fvecs --index=base.c2lsh
//              --queries=query.fvecs --k=10 --out=results.ivecs
//
//   # exact ground truth (brute force), same output format
//   c2lsh_tool --mode=exact --data=base.fvecs --queries=query.fvecs --k=10
//              --out=gt.ivecs

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/linear_scan.h"
#include "src/core/index.h"
#include "src/core/serialize.h"
#include "src/eval/table.h"
#include "src/util/argparse.h"
#include "src/util/timer.h"
#include "src/vector/io.h"

namespace c2lsh {
namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(),
                                                suffix.size(), suffix) == 0;
}

Result<Dataset> LoadDataset(const std::string& path) {
  if (EndsWith(path, ".bvecs")) {
    C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, ReadBvecs(path));
    return Dataset::Create(path, std::move(m));
  }
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, ReadFvecs(path));
  return Dataset::Create(path, std::move(m));
}

int RunBuild(const ArgParser& args) {
  auto data = LoadDataset(args.GetString("data"));
  if (!data.ok()) return Fail(data.status());
  std::printf("loaded %zu vectors of dim %zu\n", data->size(), data->dim());

  C2lshOptions options;
  options.w = args.GetDouble("w");
  options.c = args.GetDouble("c");
  options.delta = args.GetDouble("delta");
  options.beta = args.GetDouble("beta");
  options.seed = static_cast<uint64_t>(args.GetInt("seed"));

  Timer timer;
  auto index = C2lshIndex::Build(data.value(), options);
  if (!index.ok()) return Fail(index.status());
  std::printf("built in %.2fs: %s\n", timer.ElapsedSeconds(),
              index->derived().ToString().c_str());

  if (Status s = SaveIndex(args.GetString("index"), &index.value()); !s.ok()) {
    return Fail(s);
  }
  std::printf("saved to %s (%s resident)\n", args.GetString("index").c_str(),
              TablePrinter::FmtBytes(index->MemoryBytes()).c_str());
  return 0;
}

int RunInfo(const ArgParser& args) {
  auto index = LoadIndex(args.GetString("index"));
  if (!index.ok()) return Fail(index.status());
  std::printf("C2LSH index: %s\n", args.GetString("index").c_str());
  std::printf("  objects:     %zu\n", index->num_objects());
  std::printf("  dim:         %zu\n", index->dim());
  std::printf("  tables (m):  %zu\n", index->num_tables());
  std::printf("  threshold l: %zu\n", index->derived().l);
  std::printf("  params:      %s\n", index->derived().ToString().c_str());
  std::printf("  radius cap:  %lld\n", index->radius_cap());
  std::printf("  resident:    %s\n", TablePrinter::FmtBytes(index->MemoryBytes()).c_str());
  const auto stats = index->ComputeStats();
  std::printf("  buckets/table: %.0f mean (min %zu, max %zu)\n",
              stats.mean_buckets_per_table, stats.min_buckets, stats.max_buckets);
  std::printf("  bucket size:   %.2f mean, %zu max\n", stats.mean_bucket_size,
              stats.max_bucket_size);
  if (stats.overlay_entries > 0) {
    std::printf("  overlay:       %zu entries awaiting compaction\n",
                stats.overlay_entries);
  }
  return 0;
}

int RunQuery(const ArgParser& args, bool exact) {
  auto data = LoadDataset(args.GetString("data"));
  if (!data.ok()) return Fail(data.status());
  const std::string qpath = args.GetString("queries");
  auto queries = EndsWith(qpath, ".bvecs") ? ReadBvecs(qpath) : ReadFvecs(qpath);
  if (!queries.ok()) return Fail(queries.status());
  const size_t k = static_cast<size_t>(args.GetInt("k"));

  std::vector<std::vector<int32_t>> out_rows;
  out_rows.reserve(queries->num_rows());
  Timer timer;
  double total_candidates = 0;

  if (exact) {
    LinearScan scan;
    for (size_t q = 0; q < queries->num_rows(); ++q) {
      auto r = scan.Search(data.value(), queries->row(q), k);
      if (!r.ok()) return Fail(r.status());
      std::vector<int32_t> row;
      for (const Neighbor& nb : *r) row.push_back(static_cast<int32_t>(nb.id));
      out_rows.push_back(std::move(row));
    }
  } else {
    auto index = LoadIndex(args.GetString("index"));
    if (!index.ok()) return Fail(index.status());
    if (index->num_objects() > data->size() || index->dim() != data->dim()) {
      return Fail(Status::InvalidArgument(
          "index was not built over this dataset (size/dim mismatch)"));
    }
    for (size_t q = 0; q < queries->num_rows(); ++q) {
      C2lshQueryStats stats;
      auto r = index->Query(data.value(), queries->row(q), k, &stats);
      if (!r.ok()) return Fail(r.status());
      total_candidates += static_cast<double>(stats.candidates_verified);
      std::vector<int32_t> row;
      for (const Neighbor& nb : *r) row.push_back(static_cast<int32_t>(nb.id));
      out_rows.push_back(std::move(row));
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  if (Status s = WriteIvecs(args.GetString("out"), out_rows); !s.ok()) {
    return Fail(s);
  }
  std::printf("%zu queries in %.3fs (%.2f ms/query", out_rows.size(), elapsed,
              1e3 * elapsed / std::max<size_t>(1, out_rows.size()));
  if (!exact) {
    std::printf(", %.1f candidates/query",
                total_candidates / std::max<size_t>(1, out_rows.size()));
  }
  std::printf(") -> %s\n", args.GetString("out").c_str());
  return 0;
}

int Run(int argc, char** argv) {
  ArgParser args(
      "c2lsh_tool: build, inspect and query C2LSH indexes over .fvecs files");
  args.AddString("mode", "", "one of: build, info, query, exact");
  args.AddString("data", "", "dataset .fvecs path");
  args.AddString("queries", "", "query .fvecs path");
  args.AddString("index", "", "index file path");
  args.AddString("out", "results.ivecs", "output .ivecs path (query/exact)");
  args.AddInt("k", 10, "neighbors per query");
  args.AddDouble("w", 1.0, "bucket width");
  args.AddDouble("c", 2.0, "approximation ratio (integer >= 2)");
  args.AddDouble("delta", 0.1, "error probability");
  args.AddDouble("beta", 0.0, "false-positive frequency (0 = 100/n)");
  args.AddInt("seed", 1, "hash sampling seed");

  if (Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), args.HelpString().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.HelpString().c_str());
    return 0;
  }
  const std::string mode = args.GetString("mode");
  if (mode == "build") return RunBuild(args);
  if (mode == "info") return RunInfo(args);
  if (mode == "query") return RunQuery(args, /*exact=*/false);
  if (mode == "exact") return RunQuery(args, /*exact=*/true);
  std::fprintf(stderr, "unknown --mode '%s'\n%s", mode.c_str(),
               args.HelpString().c_str());
  return 1;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
