#!/usr/bin/env python3
"""Self-tests for tools/lint.py — stdlib unittest only. Run directly or via
ctest:

  python3 tools/test_lint.py

Two styles:
  - subprocess runs over tests/lint_fixtures/ pin the end-to-end behavior
    (rule firing, NOLINT exemptions, exit codes);
  - direct lint_file() calls with a synthetic repo-relative path exercise
    the path-scoped rules (raw-sleep and the chrono/isa allowlists key off
    where a file pretends to live, which fixture files cannot).
"""

import importlib.util
import os
import subprocess
import sys
import tempfile
import unittest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join("tests", "lint_fixtures")

_spec = importlib.util.spec_from_file_location(
    "lint", os.path.join(ROOT, "tools", "lint.py"))
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def run_lint(*paths):
    return subprocess.run(
        [sys.executable, os.path.join("tools", "lint.py"), *paths],
        cwd=ROOT, capture_output=True, text=True)


def lint_text(text, rel, status_names=frozenset()):
    """Runs lint_file on `text` pretending it lives at repo path `rel`."""
    errors = []
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, os.path.basename(rel))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        lint.lint_file(path, rel, status_names, errors)
    return errors


class FixtureRules(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        proc = run_lint(FIXTURES)
        cls.exit = proc.returncode
        cls.out = proc.stdout

    def rule_lines(self, rule, filename):
        return [ln for ln in self.out.splitlines()
                if f"[{rule}]" in ln and filename in ln]

    def test_fixtures_fail_the_gate(self):
        self.assertEqual(self.exit, 1)

    def test_pragma_once(self):
        self.assertEqual(len(self.rule_lines("pragma-once",
                                             "missing_pragma.h")), 1)

    def test_banned_functions_fire_exactly_four_times(self):
        # rand, strcpy, sprintf, naked new — the NOLINT line, the member
        # call, the string literal and the comment must all stay clean.
        self.assertEqual(len(self.rule_lines("banned-function",
                                             "banned_calls.cc")), 4)

    def test_thread_header(self):
        self.assertEqual(len(self.rule_lines("thread-header",
                                             "thread_no_header.cc")), 1)

    def test_isa_and_chrono_confinement(self):
        self.assertEqual(len(self.rule_lines("isa-header",
                                             "isa_and_chrono.cc")), 1)
        self.assertEqual(len(self.rule_lines("chrono-include",
                                             "isa_and_chrono.cc")), 1)

    def test_socket_confinement(self):
        self.assertEqual(len(self.rule_lines("socket-header",
                                             "raw_socket.cc")), 2)
        self.assertEqual(len(self.rule_lines("raw-socket",
                                             "raw_socket.cc")), 3)

    def test_default_run_skips_fixture_dirs(self):
        proc = run_lint()  # default paths: src tests tools bench
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertNotIn("lint_fixtures", proc.stdout)
        self.assertNotIn("analyze_fixtures", proc.stdout)


class PathScopedRules(unittest.TestCase):
    SLEEP = ("#pragma once\n"
             "#include <thread>\n"
             "#include \"util/mutex.h\"\n"
             "void Nap() { std::this_thread::sleep_for(x); }\n")

    def test_raw_sleep_banned_in_library_code(self):
        errors = lint_text(self.SLEEP, os.path.join("src", "core", "nap.h"))
        self.assertTrue(any("[raw-sleep]" in e for e in errors), errors)

    def test_raw_sleep_allowed_in_retry_seam_and_tests(self):
        for rel in (os.path.join("src", "util", "retry.h"),
                    os.path.join("tests", "nap_test.cc")):
            errors = lint_text(self.SLEEP, rel)
            self.assertFalse(any("[raw-sleep]" in e for e in errors),
                             (rel, errors))

    SPAWN = ("#include <thread>\n"
             "#include \"src/util/mutex.h\"\n"
             "void Go() { std::thread t([] {}); t.join(); }\n")

    def test_raw_thread_banned_in_library_code(self):
        errors = lint_text(self.SPAWN, os.path.join("src", "core", "go.cc"))
        self.assertTrue(any("[raw-thread]" in e for e in errors), errors)

    def test_raw_thread_allowed_in_pool_and_tests(self):
        for rel in (os.path.join("src", "util", "thread_pool.cc"),
                    os.path.join("tests", "go_test.cc")):
            errors = lint_text(self.SPAWN, rel)
            self.assertFalse(any("[raw-thread]" in e for e in errors),
                             (rel, errors))

    def test_raw_thread_scope_resolution_exempt(self):
        text = ("#include \"src/util/mutex.h\"\n"
                "size_t Hw() { return std::thread::hardware_concurrency(); }\n")
        errors = lint_text(text, os.path.join("src", "core", "hw.cc"))
        self.assertFalse(any("[raw-thread]" in e for e in errors), errors)

    def test_chrono_allowed_in_obs(self):
        text = "#pragma once\n#include <chrono>\n"
        errors = lint_text(text, os.path.join("src", "obs", "span.h"))
        self.assertFalse(any("[chrono-include]" in e for e in errors), errors)

    def test_isa_header_allowed_under_src_vector(self):
        text = "#pragma once\n#include <immintrin.h>\n"
        errors = lint_text(text, os.path.join("src", "vector", "avx2.h"))
        self.assertFalse(any("[isa-header]" in e for e in errors), errors)

    TSC = ("uint64_t Ticks() { return __builtin_ia32_rdtsc(); }\n"
           "void Now(struct timespec* ts) {\n"
           "  clock_gettime(CLOCK_MONOTONIC, ts);\n"
           "}\n")

    def test_tsc_read_banned_in_library_code(self):
        errors = lint_text(self.TSC, os.path.join("src", "core", "tick.cc"))
        self.assertEqual(
            2, sum("[tsc-read]" in e for e in errors), errors)

    def test_tsc_read_allowed_in_obs_tests_and_tools(self):
        for rel in (os.path.join("src", "obs", "span.cc"),
                    os.path.join("tests", "tick_test.cc"),
                    os.path.join("tools", "tick_tool.cpp")):
            errors = lint_text(self.TSC, rel)
            self.assertFalse(any("[tsc-read]" in e for e in errors),
                             (rel, errors))

    def test_tsc_read_nolint_escape(self):
        text = ("uint64_t Ticks() {\n"
                "  return __builtin_ia32_rdtsc();  // NOLINT(tsc-read)\n"
                "}\n")
        errors = lint_text(text, os.path.join("src", "core", "tick.cc"))
        self.assertFalse(any("[tsc-read]" in e for e in errors), errors)

    def test_tsc_read_member_call_exempt(self):
        # Only free-function reads count; a method named clock_gettime on
        # some wrapper object (obj.clock_gettime(...)) is not a raw read.
        text = "void F(Env* e) { e->Now(); my.clock_gettime(x, y); }\n"
        errors = lint_text(text, os.path.join("src", "core", "tick.cc"))
        self.assertFalse(any("[tsc-read]" in e for e in errors), errors)


class SocketSeamRule(unittest.TestCase):
    SOCKETS = ("#include <sys/socket.h>\n"
               "#include <netdb.h>\n"
               "int Go() { return ::socket(2, 1, 0); }\n")

    def test_sockets_banned_everywhere_else(self):
        # Unlike the src/-scoped rules, the seam binds tests and tools too:
        # they exercise the wire through InprocTransport or PosixTransport.
        for rel in (os.path.join("src", "core", "net.cc"),
                    os.path.join("src", "serve", "server.cc"),
                    os.path.join("tests", "net_test.cc"),
                    os.path.join("tools", "net_tool.cpp")):
            errors = lint_text(self.SOCKETS, rel)
            self.assertEqual(
                2, sum("[socket-header]" in e for e in errors), (rel, errors))
            self.assertEqual(
                1, sum("[raw-socket]" in e for e in errors), (rel, errors))

    def test_sockets_allowed_in_the_posix_transport(self):
        rel = os.path.join("src", "serve", "transport_posix.cc")
        errors = lint_text(self.SOCKETS, rel)
        self.assertFalse(any("[socket-header]" in e or "[raw-socket]" in e
                             for e in errors), errors)

    def test_seam_calls_do_not_match(self):
        text = ("void F(Connection* c, Transport* t) {\n"
                "  c->Shutdown();\n"
                "  (void)t->Connect(addr, deadline);\n"
                "  listener->Accept();\n"
                "}\n")
        errors = lint_text(text, os.path.join("src", "serve", "server.cc"))
        self.assertFalse(any("[raw-socket]" in e for e in errors), errors)


class StatusRule(unittest.TestCase):
    def test_dropped_status_flagged(self):
        text = "void F() {\n  Persist();\n}\n"
        errors = lint_text(text, os.path.join("src", "x.cc"),
                           status_names={"Persist"})
        self.assertTrue(any("[unchecked-status]" in e for e in errors),
                        errors)

    def test_consumed_status_clean(self):
        text = ("void F() {\n"
                "  Status s = Persist();\n"
                "  if (!s.ok()) return;\n"
                "  // best effort — shutdown path\n"
                "  (void)Persist();\n"
                "}\n")
        errors = lint_text(text, os.path.join("src", "x.cc"),
                           status_names={"Persist"})
        self.assertFalse(any("[unchecked-status]" in e for e in errors),
                         errors)

    def test_void_cast_without_comment_flagged(self):
        text = "void F() {\n  int a = 0;\n  (void)Persist();\n  ++a;\n}\n"
        errors = lint_text(text, os.path.join("src", "x.cc"),
                           status_names={"Persist"})
        self.assertTrue(any("[unchecked-status]" in e for e in errors),
                        errors)

    def test_harvest_finds_status_declarations(self):
        names = lint.harvest_status_names(ROOT)
        self.assertIn("FlushAll", names)


class SeamRuleRetired(unittest.TestCase):
    def test_mutation_seam_moved_to_analyzer(self):
        """The file-path seam heuristic is retired here; tools/analyze owns
        the invariant at function granularity."""
        text = ("void F(PageFile* f) {\n"
                "  f->WritePage(1, nullptr);\n"
                "}\n")
        errors = lint_text(text, os.path.join("src", "core", "rogue.cc"))
        self.assertFalse(any("[mutation-seam]" in e for e in errors), errors)


if __name__ == "__main__":
    unittest.main(verbosity=2)
