#!/usr/bin/env python3
"""Golden tests for tools/analyze — stdlib unittest only (the container has
no pytest). Run directly or via ctest:

  python3 tools/test_analyze.py

The fixture suite under tests/analyze_fixtures/ exercises every check in
both directions: the finding the check exists for, and the neighboring shape
that must stay clean (suppressions, release-before-block, polled loops,
allowlisted seam functions). expected.json pins the exact findings; update
it deliberately with
  python3 tools/analyze --paths tests/analyze_fixtures --frontend tokens --json
whenever a check's behavior intentionally changes.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join("tests", "analyze_fixtures")
GOLDEN = os.path.join(ROOT, FIXTURES, "expected.json")


def run_analyze(*args):
    return subprocess.run(
        [sys.executable, "tools/analyze", *args],
        cwd=ROOT, capture_output=True, text=True)


class GoldenFindings(unittest.TestCase):
    def test_fixture_findings_match_golden(self):
        proc = run_analyze("--paths", FIXTURES, "--frontend", "tokens",
                           "--json")
        self.assertEqual(proc.returncode, 1, proc.stderr)
        got = json.loads(proc.stdout)
        with open(GOLDEN, encoding="utf-8") as fh:
            want = json.load(fh)
        self.assertEqual(got, want)

    def test_clean_fixture_is_clean(self):
        proc = run_analyze("--paths",
                           os.path.join(FIXTURES, "clean.cc"),
                           "--frontend", "tokens", "--json")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(json.loads(proc.stdout), [])

    def test_check_subset_selection(self):
        proc = run_analyze("--paths", FIXTURES, "--frontend", "tokens",
                           "--json", "--checks", "mutation-seam")
        self.assertEqual(proc.returncode, 1)
        got = json.loads(proc.stdout)
        self.assertTrue(got)
        self.assertTrue(all(f["check"] == "mutation-seam" for f in got))


class CliContract(unittest.TestCase):
    def test_missing_compile_commands_is_exit_2(self):
        with tempfile.TemporaryDirectory() as empty:
            proc = run_analyze("-p", empty)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("compile_commands.json", proc.stderr)
        self.assertIn("CMAKE_EXPORT_COMPILE_COMMANDS", proc.stderr)

    def test_unknown_check_is_exit_2(self):
        proc = run_analyze("--paths", FIXTURES, "--checks", "no-such-check")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown checks", proc.stderr)

    def test_list_names_every_check(self):
        proc = run_analyze("--list")
        self.assertEqual(proc.returncode, 0)
        names = proc.stdout.split()
        for expected in ("lock-order", "cancellation-cadence",
                         "unchecked-status", "mutation-seam"):
            self.assertIn(expected, names)


class SuppressionContract(unittest.TestCase):
    def test_bare_marker_without_justification_errors(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "bare.cc")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("void F() {\n"
                         "  // analyze-ok(lock-order)\n"
                         "  int x = 0;\n"
                         "}\n")
            proc = run_analyze("--paths", path)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no justification", proc.stdout)

    def test_justified_marker_suppresses(self):
        # The same blocking shape with and without the marker; only the
        # unmarked one may be reported.
        src = ("class J {\n"
               " public:\n"
               "  Status A() {\n"
               "    MutexLock lock(&mu_);\n"
               "    return file_->Sync();\n"
               "  }\n"
               "  Status B() {\n"
               "    MutexLock lock(&mu_);\n"
               "    // analyze-ok(lock-order): fixture justification\n"
               "    return file_->Sync();\n"
               "  }\n"
               " private:\n"
               "  Mutex mu_;\n"
               "  File* file_;\n"
               "};\n")
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "supp.cc")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(src)
            proc = run_analyze("--paths", path, "--json")
        findings = json.loads(proc.stdout)
        self.assertEqual(len(findings), 1, findings)
        self.assertEqual(findings[0]["line"], 5)


class TreeIsClean(unittest.TestCase):
    def test_src_tree_has_no_findings(self):
        """The acceptance bar for the whole tree: every pre-existing true
        positive is fixed or suppressed with a justification."""
        proc = run_analyze("--paths", "src", "--frontend", "tokens", "--json")
        self.assertEqual(proc.returncode, 0,
                         "analyzer found regressions in src/:\n" + proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
