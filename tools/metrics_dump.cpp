// metrics_dump — exercises the full stack (in-memory C2LSH, the disk index
// through the BufferPool/PageFile path, and the QALSH extension) on a small
// synthetic workload, then prints the process-wide metrics registry in one
// of the three exporter formats. The fastest way to see what every counter,
// gauge, and histogram in the library looks like with real traffic behind it.
//
//   metrics_dump [--format=table|json|prometheus] [--n=2000] [--queries=8]
//                [--scratch=/tmp/c2lsh_metrics_dump.pages] [--trace]
//
// Prometheus output is self-checked against the text-exposition grammar
// before printing; a formatting regression exits non-zero.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/extensions/qalsh/qalsh.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/util/argparse.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Run(int argc, char** argv) {
  ArgParser parser(
      "metrics_dump: run a demo workload through every instrumented layer and "
      "print the metrics registry");
  parser.AddString("format", "table", "output format: table, json, or prometheus");
  parser.AddInt("n", 2000, "synthetic dataset size");
  parser.AddInt("queries", 8, "queries per index flavor");
  parser.AddString("scratch", "/tmp/c2lsh_metrics_dump.pages",
                   "scratch file for the disk index (removed on exit)");
  parser.AddBool("trace", false, "also print the first query's rehash trace JSON");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), parser.HelpString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const std::string format = parser.GetString("format");
  if (format != "table" && format != "json" && format != "prometheus") {
    std::fprintf(stderr, "error: unknown --format '%s'\n", format.c_str());
    return 1;
  }
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const std::string scratch = parser.GetString("scratch");

  auto pd = MakeProfileDataset(DatasetProfile::kColor, n, nq, /*seed=*/42);
  if (!pd.ok()) return Fail(pd.status());

  C2lshOptions options;
  options.w = 1.0;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 42;

  // In-memory index: populates the c2lsh_* family and the SIMD gauge.
  auto mem = C2lshIndex::Build(pd->data, options);
  if (!mem.ok()) return Fail(mem.status());
  obs::QueryTrace first_trace;
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto r = mem->Query(pd->data, pd->queries.row(q), 10, /*stats=*/nullptr,
                        q == 0 ? &first_trace : nullptr);
    if (!r.ok()) return Fail(r.status());
  }

  // Disk index: populates disk_c2lsh_*, buffer_pool_*, page_file_*, retry_*.
  auto disk = DiskC2lshIndex::Build(pd->data, options, scratch, /*pool_pages=*/64);
  if (disk.ok()) {
    for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
      auto r = disk->Query(pd->queries.row(q), 10);
      if (!r.ok()) return Fail(r.status());
    }
  } else {
    std::fprintf(stderr, "note: disk index skipped (%s)\n",
                 disk.status().ToString().c_str());
  }
  std::remove(scratch.c_str());

  // QALSH: populates qalsh_*.
  QalshOptions qopt;
  qopt.seed = 42;
  auto qalsh = QalshIndex::Build(pd->data, qopt);
  if (!qalsh.ok()) return Fail(qalsh.status());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto r = qalsh->Query(pd->data, pd->queries.row(q), 10);
    if (!r.ok()) return Fail(r.status());
  }

  if (parser.GetBool("trace")) {
    std::fprintf(stderr, "first query trace: %s\n", first_trace.ToJson().c_str());
  }

  const std::vector<obs::MetricSnapshot> snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  std::string out;
  if (format == "table") {
    out = obs::FormatTable(snapshot);
  } else if (format == "json") {
    out = obs::FormatJson(snapshot);
  } else {
    out = obs::FormatPrometheus(snapshot);
    if (Status s = obs::ValidatePrometheusText(out); !s.ok()) {
      std::fprintf(stderr, "Prometheus output failed its own grammar check:\n");
      return Fail(s);
    }
  }
  std::printf("%s", out.c_str());
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
