// trace_dump — runs a small synthetic workload with span tracing armed and
// writes (or prints) the resulting Chrome trace-event JSON. Load the output
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing. With
// --simulate_anomaly the workload also runs a deadline-doomed disk query so
// the flight recorder produces a dump, and the tool prints where it landed.
//
//   trace_dump [--out=trace.json] [--mode=always|nth] [--nth=4]
//              [--n=2000] [--queries=8]
//              [--scratch=/tmp/c2lsh_trace_dump.pages]
//              [--flight_dir=] [--simulate_anomaly]
//
// The JSON is self-checked with ValidateChromeTraceJson before it is
// written; a formatting regression exits non-zero.

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span.h"
#include "src/util/argparse.h"
#include "src/util/env.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Run(int argc, char** argv) {
  ArgParser parser(
      "trace_dump: run a demo workload with span tracing on and emit "
      "Perfetto-loadable Chrome trace JSON");
  parser.AddString("out", "", "write the trace JSON here (default: stdout)");
  parser.AddString("mode", "always", "sampling mode: always or nth");
  parser.AddInt("nth", 4, "sample every Nth query in --mode=nth");
  parser.AddInt("n", 2000, "synthetic dataset size");
  parser.AddInt("queries", 8, "queries per index flavor");
  parser.AddString("scratch", "/tmp/c2lsh_trace_dump.pages",
                   "scratch file for the disk index (removed on exit)");
  parser.AddString("flight_dir", "",
                   "arm the flight recorder with dumps in this directory");
  parser.AddBool("simulate_anomaly", false,
                 "run one deadline-doomed disk query to trigger a flight dump");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), parser.HelpString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const std::string mode = parser.GetString("mode");
  if (mode != "always" && mode != "nth") {
    std::fprintf(stderr, "error: unknown --mode '%s'\n", mode.c_str());
    return 1;
  }
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const std::string scratch = parser.GetString("scratch");
  const std::string flight_dir = parser.GetString("flight_dir");

  obs::Tracer::Global().SetMode(
      mode == "always" ? obs::TraceMode::kAlways : obs::TraceMode::kEveryNth,
      static_cast<uint64_t>(parser.GetInt("nth")));
  if (!flight_dir.empty()) {
    ::mkdir(flight_dir.c_str(), 0755);  // Env has no mkdir; dir must exist
    obs::FlightRecorderOptions fopt;
    fopt.dir = flight_dir;
    if (Status s = obs::FlightRecorder::Global().Configure(fopt); !s.ok()) {
      return Fail(s);
    }
  }

  auto pd = MakeProfileDataset(DatasetProfile::kColor, n, nq, /*seed=*/42);
  if (!pd.ok()) return Fail(pd.status());

  C2lshOptions options;
  options.w = 1.0;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 42;

  // In-memory index: kQuery/kRound spans plus the ThreadPool hook spans
  // when QueryBatch fans out.
  auto mem = C2lshIndex::Build(pd->data, options);
  if (!mem.ok()) return Fail(mem.status());
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    auto r = mem->Query(pd->data, pd->queries.row(q), 10);
    if (!r.ok()) return Fail(r.status());
  }

  // Disk index: kBufferPool/kPageFile/kWal/kRetry spans under real I/O.
  auto disk = DiskC2lshIndex::Build(pd->data, options, scratch, /*pool_pages=*/64);
  if (disk.ok()) {
    for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
      auto r = disk->Query(pd->queries.row(q), 10);
      if (!r.ok()) return Fail(r.status());
    }
    if (parser.GetBool("simulate_anomaly")) {
      // A pre-expired deadline: the query runs zero rounds, terminates
      // kDeadline, and (with --flight_dir) the recorder writes a dump.
      QueryContext ctx;
      ctx.deadline = Deadline::AfterMicros(0);
      auto r = disk->Query(pd->queries.row(0), 10, /*stats=*/nullptr,
                           /*trace=*/nullptr, &ctx);
      if (!r.ok()) return Fail(r.status());
    }
  } else {
    std::fprintf(stderr, "note: disk index skipped (%s)\n",
                 disk.status().ToString().c_str());
  }
  std::remove(scratch.c_str());

  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().SnapshotAll();
  const std::string json = obs::ExportChromeTrace(events, "c2lsh-trace_dump");
  if (Status s = obs::ValidateChromeTraceJson(json); !s.ok()) {
    std::fprintf(stderr, "trace JSON failed its own validator:\n");
    return Fail(s);
  }

  const std::string out_path = parser.GetString("out");
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    auto file = Env::Default()->NewFile(out_path);
    Status io = file.status();
    if (io.ok()) io = (*file)->WriteAt(0, json.data(), json.size());
    if (io.ok()) io = (*file)->Sync();
    if (!io.ok()) return Fail(io);
    std::fprintf(stderr, "wrote %zu events (%zu bytes) to %s\n", events.size(),
                 json.size(), out_path.c_str());
  }
  if (!flight_dir.empty()) {
    std::fprintf(stderr, "flight recorder dumps written: %llu (under %s)\n",
                 static_cast<unsigned long long>(
                     obs::FlightRecorder::Global().dumps_written()),
                 flight_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
