#!/usr/bin/env bash
# tools/check.sh — the pre-merge gate: lint + analyze + every build/test lane.
#
# Lanes (all builds with -DC2LSH_WERROR=ON, so warnings — including discarded
# [[nodiscard]] Status/Result — are hard failures):
#
#   lint      tools/lint.py over src/ tests/ tools/ bench/
#   default   plain build, full ctest (includes the analyzer/lint self-test
#             suites, registered under the `analysis` label)
#   analyze   tools/analyze over src/ using the default lane's
#             compile_commands.json (fails with a pointer at CMake's
#             CMAKE_EXPORT_COMPILE_COMMANDS if the database is missing)
#   metrics   ctest -L metrics in the default tree, then metrics_dump in all
#             three exporter formats (the prometheus run self-validates
#             against the text-exposition grammar)
#   deadline  ctest -L deadline in the default tree — deadline, cancellation
#             and admission-control behavior (the same tests also run under
#             TSan via the race label)
#   mutate    ctest -L mutate in the default tree — WAL durability, crash
#             replay, and mutate/build equivalence (the concurrent-mutation
#             tests also run under TSan via the race label)
#   batch     ctest -L batch under -DC2LSH_SANITIZE=thread in both ISA
#             dispatch modes (shares the tsan tree) — the batched/sharded
#             QueryBatch engine's bitwise-determinism and thread-pool suite;
#             the same tests also run unsanitized in the default lane
#   trace     ctest -L trace under -DC2LSH_SANITIZE=thread in both ISA
#             dispatch modes (shares the tsan tree) — the span-tracing ring
#             buffers and flight recorder under concurrent churn; the same
#             tests also run unsanitized in the default lane
#   serve     ctest -L serve under -DC2LSH_SANITIZE=thread in both ISA
#             dispatch modes (shares the tsan tree) — the TCP front end:
#             protocol codecs, admission/drain races, end-to-end server
#             tests — then the chaos_soak binary in short mode (fault
#             bursts + overload + drain/restart + crash-restart, invariant
#             ledger checked); the same tests also run unsanitized in the
#             default lane
#   scalar    -DC2LSH_DISABLE_SIMD=ON build (only the scalar kernel TU is
#             compiled), full ctest — keeps the portable fallback tested
#   asan      -DC2LSH_SANITIZE=address,   full ctest, rerun w/ C2LSH_SIMD=scalar
#   ubsan     -DC2LSH_SANITIZE=undefined, full ctest, rerun w/ C2LSH_SIMD=scalar
#   tsan      -DC2LSH_SANITIZE=thread,    ctest -L race (concurrent stress
#             suite; any TSan report fails the test)
#   fuzz      -DC2LSH_FUZZ=ON -DC2LSH_SANITIZE=address,undefined: builds the
#             fuzz/ harnesses, regenerates the seed corpora with make_seeds,
#             and soaks each harness for FUZZ_SECONDS (default 60) of
#             deterministic seeded mutation — any abort or sanitizer report
#             fails the lane
#   clang     clang++ build with -Wthread-safety (annotation check) — SKIP
#             when clang++ is not installed
#   tidy      clang-tidy (>= TIDY_MIN_VERSION) over src/ with the checked-in
#             .clang-tidy — SKIP when clang-tidy is missing or too old; a
#             finding from an installed, current clang-tidy FAILS the lane
#
# The sanitizer lanes run their ctest suite twice: once on the CPU's best
# SIMD dispatch target and once with the C2LSH_SIMD=scalar runtime override,
# so both sides of the kernel dispatch stay sanitizer-clean without an extra
# build tree.
#
# Every lane's verdict (PASS/FAIL/SKIP + duration) is collected into a
# summary table; the script exits with the FIRST failing lane's exit code,
# so CI surfaces the root cause, not whatever ran last.  Build trees live
# under build-check/ so they never collide with a developer's ./build.
#
# Usage: tools/check.sh [--fast]
#   --fast: lint + default + analyze + the default-tree ctest sublanes;
#           skips the scalar, sanitizer, fuzz, clang and tidy lanes.

set -u
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1
FUZZ_SECONDS="${FUZZ_SECONDS:-60}"
TIDY_MIN_VERSION=14

# --- lane bookkeeping -------------------------------------------------------
lane_names=()
lane_status=()   # PASS / FAIL / SKIP
lane_secs=()
lane_notes=()
first_fail_code=0
first_fail_name=""

note() { printf '\n==== %s ====\n' "$*"; }

record_lane() {  # record_lane <name> <status> <secs> <code> [note]
  lane_names+=("$1"); lane_status+=("$2"); lane_secs+=("$3")
  lane_notes+=("${5:-}")
  if [[ "$2" == "FAIL" && "${first_fail_code}" -eq 0 ]]; then
    first_fail_code="$4"
    first_fail_name="$1"
  fi
}

run_lane() {  # run_lane <name> <command...>
  local name="$1"; shift
  note "lane: ${name}"
  local t0=${SECONDS}
  "$@"
  local code=$?
  local dt=$((SECONDS - t0))
  if [[ ${code} -eq 0 ]]; then
    echo "lane ${name}: OK (${dt}s)"
    record_lane "${name}" PASS "${dt}" 0
  else
    echo "lane ${name}: FAILED (exit ${code}, ${dt}s)"
    record_lane "${name}" FAIL "${dt}" "${code}"
  fi
}

skip_lane() {  # skip_lane <name> <reason>
  note "lane: $1 (skipped — $2)"
  record_lane "$1" SKIP 0 0 "$2"
}

build_and_test() {  # build_and_test <dir> <ctest-args...> -- <cmake-args...>
  local dir="$1"; shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do ctest_args+=("$1"); shift; done
  [[ "${1:-}" == "--" ]] && shift
  cmake -B "${dir}" -S . -DC2LSH_WERROR=ON "$@" >/dev/null || return 1
  cmake --build "${dir}" -j "${JOBS}" || return 1
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${ctest_args[@]}"
}

# Like build_and_test, but runs the ctest suite a second time with the SIMD
# dispatch forced to the scalar kernels (runtime override — no rebuild).
build_and_test_both_isas() {
  build_and_test "$@" || return 1
  local dir="$1"; shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do ctest_args+=("$1"); shift; done
  note "  (rerun with C2LSH_SIMD=scalar)"
  C2LSH_SIMD=scalar ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    "${ctest_args[@]}"
}

# --- lint ------------------------------------------------------------------
run_lane lint python3 tools/lint.py

# --- default ---------------------------------------------------------------
run_lane default build_and_test build-check/default --

# --- analyze (invariant analyzer over src/) --------------------------------
analyze_lane() {
  if [[ ! -f build-check/default/compile_commands.json ]]; then
    echo "analyze: build-check/default/compile_commands.json is missing." >&2
    echo "  The default lane's configure step exports it automatically" >&2
    echo "  (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt);" >&2
    echo "  run the default lane first, or configure any tree and pass" >&2
    echo "  it with: python3 tools/analyze -p <build-dir>" >&2
    return 2
  fi
  python3 tools/analyze -p build-check/default
}
run_lane analyze analyze_lane

# --- metrics (observability suite + exporter round-trip) -------------------
metrics_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L metrics || return 1
  local dump=build-check/default/tools/metrics_dump
  [[ -x "${dump}" ]] || { echo "metrics_dump not built"; return 1; }
  local fmt
  for fmt in table json prometheus; do
    "${dump}" --format="${fmt}" --n=500 --queries=2 \
      --scratch=build-check/default/metrics_dump.pages >/dev/null || return 1
  done
}
run_lane metrics metrics_lane

# --- deadline (cooperative-stop + overload-protection suite) ---------------
deadline_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L deadline
}
run_lane deadline deadline_lane

# --- mutate (online mutability: WAL, replay recovery, equivalence) ---------
mutate_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L mutate
}
run_lane mutate mutate_lane

if [[ "${FAST}" -eq 0 ]]; then
  # --- forced-scalar build (no SIMD translation units at all) --------------
  run_lane scalar build_and_test build-check/scalar -- -DC2LSH_DISABLE_SIMD=ON

  # --- sanitizers ----------------------------------------------------------
  run_lane asan build_and_test_both_isas build-check/asan -- -DC2LSH_SANITIZE=address
  run_lane ubsan build_and_test_both_isas build-check/ubsan -- -DC2LSH_SANITIZE=undefined
  run_lane tsan build_and_test_both_isas build-check/tsan -L race -- -DC2LSH_SANITIZE=thread

  # --- batch (QueryBatch determinism + pool under TSan, both ISA modes) ----
  run_lane batch build_and_test_both_isas build-check/tsan -L batch -- -DC2LSH_SANITIZE=thread

  # --- trace (span rings + flight recorder under TSan, both ISA modes) -----
  run_lane trace build_and_test_both_isas build-check/tsan -L trace -- -DC2LSH_SANITIZE=thread

  # --- serve (TCP front end + chaos soak under TSan, both ISA modes) -------
  serve_lane() {
    build_and_test_both_isas build-check/tsan -L serve \
      -- -DC2LSH_SANITIZE=thread || return 1
    local soak=build-check/tsan/tools/chaos_soak
    [[ -x "${soak}" ]] || { echo "chaos_soak not built"; return 1; }
    note "  (chaos_soak, short mode)"
    rm -rf build-check/tsan/chaos_soak.scratch
    "${soak}" --seed=20120612 --ops=32 --clients=3 \
      --scratch=build-check/tsan/chaos_soak.scratch
  }
  run_lane serve serve_lane

  # --- fuzz (untrusted-byte parsers under ASan+UBSan) ----------------------
  fuzz_lane() {
    cmake -B build-check/fuzz -S . -DC2LSH_WERROR=ON -DC2LSH_FUZZ=ON \
      -DC2LSH_SANITIZE=address,undefined >/dev/null || return 1
    cmake --build build-check/fuzz -j "${JOBS}" \
      --target wal_replay_fuzz page_header_fuzz serialize_fuzz make_seeds \
      || return 1
    local work=build-check/fuzz/soak
    rm -rf "${work}" && mkdir -p "${work}" || return 1
    build-check/fuzz/fuzz/make_seeds "${work}/corpus" || return 1
    local pair bin sub
    for pair in wal_replay_fuzz:wal page_header_fuzz:page \
                serialize_fuzz:serialize; do
      bin="${pair%%:*}"; sub="${pair##*:}"
      note "  (fuzz: ${bin}, ${FUZZ_SECONDS}s)"
      ( cd "${work}" &&
        "../fuzz/${bin}" -max_total_time="${FUZZ_SECONDS}" -seed=20120817 \
          "corpus/${sub}" ) || { echo "fuzz harness ${bin} FAILED"; return 1; }
    done
  }
  run_lane fuzz fuzz_lane

  # --- clang thread-safety annotations -------------------------------------
  if command -v clang++ >/dev/null 2>&1; then
    run_lane clang build_and_test build-check/clang -- \
      -DCMAKE_CXX_COMPILER=clang++
  else
    skip_lane clang "clang++ not installed; -Wthread-safety not checked"
  fi

  # --- clang-tidy ----------------------------------------------------------
  tidy_version() {  # major version of the installed clang-tidy, or 0
    clang-tidy --version 2>/dev/null |
      sed -n 's/.*version \([0-9][0-9]*\).*/\1/p' | head -1
  }
  if ! command -v clang-tidy >/dev/null 2>&1; then
    skip_lane tidy "clang-tidy not installed"
  elif [[ "$(tidy_version)" -lt "${TIDY_MIN_VERSION}" ]]; then
    skip_lane tidy "clang-tidy $(tidy_version) < required ${TIDY_MIN_VERSION}"
  else
    tidy_lane() {
      cmake -B build-check/tidy -S . >/dev/null || return 1
      # shellcheck disable=SC2046
      clang-tidy -p build-check/tidy --quiet \
        $(find src -name '*.cc') $(find tools -name '*.cpp')
    }
    run_lane tidy tidy_lane
  fi
fi

# --- verdict ---------------------------------------------------------------
note "summary"
printf '%-10s %-6s %8s  %s\n' "lane" "status" "time" ""
printf '%-10s %-6s %8s\n' "----" "------" "----"
for i in "${!lane_names[@]}"; do
  printf '%-10s %-6s %7ss  %s\n' "${lane_names[$i]}" "${lane_status[$i]}" \
    "${lane_secs[$i]}" "${lane_notes[$i]}"
done
if [[ "${first_fail_code}" -ne 0 ]]; then
  echo
  echo "FIRST FAILURE: lane '${first_fail_name}' (exit ${first_fail_code})"
  exit "${first_fail_code}"
fi
echo
echo "all lanes passed"
