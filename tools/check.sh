#!/usr/bin/env bash
# tools/check.sh — the pre-merge gate: lint + every build/test lane.
#
# Lanes (all with -DC2LSH_WERROR=ON, so warnings — including discarded
# [[nodiscard]] Status/Result — are hard failures):
#
#   lint      tools/lint.py over src/ tests/ tools/ bench/
#   default   plain build, full ctest
#   metrics   ctest -L metrics in the default tree, then metrics_dump in all
#             three exporter formats (the prometheus run self-validates
#             against the text-exposition grammar)
#   deadline  ctest -L deadline in the default tree — deadline, cancellation
#             and admission-control behavior (the same tests also run under
#             TSan via the race label)
#   mutate    ctest -L mutate in the default tree — WAL durability, crash
#             replay, and mutate/build equivalence (the concurrent-mutation
#             tests also run under TSan via the race label)
#   scalar    -DC2LSH_DISABLE_SIMD=ON build (only the scalar kernel TU is
#             compiled), full ctest — keeps the portable fallback tested
#   asan      -DC2LSH_SANITIZE=address,   full ctest, rerun w/ C2LSH_SIMD=scalar
#   ubsan     -DC2LSH_SANITIZE=undefined, full ctest, rerun w/ C2LSH_SIMD=scalar
#   tsan      -DC2LSH_SANITIZE=thread,    ctest -L race (concurrent stress
#             suite; any TSan report fails the test)
#
# The sanitizer lanes run their ctest suite twice: once on the CPU's best
# SIMD dispatch target and once with the C2LSH_SIMD=scalar runtime override,
# so both sides of the kernel dispatch stay sanitizer-clean without an extra
# build tree.
#   clang     clang++ build with -Wthread-safety (annotation check) — runs
#             only when clang++ is installed
#   tidy      clang-tidy over src/ with the checked-in .clang-tidy — runs
#             only when clang-tidy is installed
#
# Exits non-zero if ANY lane fails. Build trees live under build-check/ so
# they never collide with a developer's ./build.
#
# Usage: tools/check.sh [--fast]   (--fast: lint + default lane only)

set -u
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

failures=()
note() { printf '\n==== %s ====\n' "$*"; }

run_lane() {  # run_lane <name> <command...>
  local name="$1"; shift
  note "lane: ${name}"
  if "$@"; then
    echo "lane ${name}: OK"
  else
    echo "lane ${name}: FAILED"
    failures+=("${name}")
  fi
}

build_and_test() {  # build_and_test <dir> <ctest-args...> -- <cmake-args...>
  local dir="$1"; shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do ctest_args+=("$1"); shift; done
  [[ "${1:-}" == "--" ]] && shift
  cmake -B "${dir}" -S . -DC2LSH_WERROR=ON "$@" >/dev/null || return 1
  cmake --build "${dir}" -j "${JOBS}" || return 1
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${ctest_args[@]}"
}

# Like build_and_test, but runs the ctest suite a second time with the SIMD
# dispatch forced to the scalar kernels (runtime override — no rebuild).
build_and_test_both_isas() {
  build_and_test "$@" || return 1
  local dir="$1"; shift
  local ctest_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do ctest_args+=("$1"); shift; done
  note "  (rerun with C2LSH_SIMD=scalar)"
  C2LSH_SIMD=scalar ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    "${ctest_args[@]}"
}

# --- lint ------------------------------------------------------------------
run_lane lint python3 tools/lint.py

# --- default ---------------------------------------------------------------
run_lane default build_and_test build-check/default --

# --- metrics (observability suite + exporter round-trip) -------------------
metrics_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L metrics || return 1
  local dump=build-check/default/tools/metrics_dump
  [[ -x "${dump}" ]] || { echo "metrics_dump not built"; return 1; }
  local fmt
  for fmt in table json prometheus; do
    "${dump}" --format="${fmt}" --n=500 --queries=2 \
      --scratch=build-check/default/metrics_dump.pages >/dev/null || return 1
  done
}
run_lane metrics metrics_lane

# --- deadline (cooperative-stop + overload-protection suite) ---------------
deadline_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L deadline
}
run_lane deadline deadline_lane

# --- mutate (online mutability: WAL, replay recovery, equivalence) ---------
mutate_lane() {  # reuses the default lane's tree
  ctest --test-dir build-check/default --output-on-failure -j "${JOBS}" \
    -L mutate
}
run_lane mutate mutate_lane

if [[ "${FAST}" -eq 0 ]]; then
  # --- forced-scalar build (no SIMD translation units at all) --------------
  run_lane scalar build_and_test build-check/scalar -- -DC2LSH_DISABLE_SIMD=ON

  # --- sanitizers ----------------------------------------------------------
  run_lane asan build_and_test_both_isas build-check/asan -- -DC2LSH_SANITIZE=address
  run_lane ubsan build_and_test_both_isas build-check/ubsan -- -DC2LSH_SANITIZE=undefined
  run_lane tsan build_and_test_both_isas build-check/tsan -L race -- -DC2LSH_SANITIZE=thread

  # --- clang thread-safety annotations (optional tool) ---------------------
  if command -v clang++ >/dev/null 2>&1; then
    run_lane clang build_and_test build-check/clang -- \
      -DCMAKE_CXX_COMPILER=clang++
  else
    note "lane: clang (skipped — clang++ not installed; -Wthread-safety not checked)"
  fi

  # --- clang-tidy (optional tool) ------------------------------------------
  if command -v clang-tidy >/dev/null 2>&1; then
    tidy() {
      cmake -B build-check/tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null || return 1
      # shellcheck disable=SC2046
      clang-tidy -p build-check/tidy --quiet \
        $(find src -name '*.cc') $(find tools -name '*.cpp')
    }
    run_lane tidy tidy
  else
    note "lane: tidy (skipped — clang-tidy not installed)"
  fi
fi

# --- verdict ---------------------------------------------------------------
note "summary"
if [[ ${#failures[@]} -gt 0 ]]; then
  echo "FAILED lanes: ${failures[*]}"
  exit 1
fi
echo "all lanes passed"
