"""Command-line driver for the invariant analyzer.

Usage (from the repo root):

  python3 tools/analyze                      # analyze src/ (needs a build
                                             # dir with compile_commands.json)
  python3 tools/analyze -p build-check/default
  python3 tools/analyze --paths tests/analyze_fixtures   # fixture mode
  python3 tools/analyze --checks lock-order,mutation-seam
  python3 tools/analyze --list               # show the available checks

Exit codes: 0 clean, 1 findings, 2 environment/usage error (most notably a
missing compile_commands.json — build with CMAKE_EXPORT_COMPILE_COMMANDS=ON,
which this tree's CMakeLists enables by default).
"""

import argparse
import json
import os
import sys

import config
import checks as checks_mod
import frontend
import frontend_libclang
from callgraph import CallGraph
from ir import Model

SOURCE_EXTS = (".cc", ".cpp", ".h", ".hpp")
DEFAULT_BUILD_DIRS = ("build-check/default", "build")


def find_build_dir(root, explicit):
    if explicit:
        cc = os.path.join(explicit, "compile_commands.json")
        return explicit if os.path.exists(cc) else None
    for d in DEFAULT_BUILD_DIRS:
        if os.path.exists(os.path.join(root, d, "compile_commands.json")):
            return os.path.join(root, d)
    return None


def collect_files(root, paths):
    out = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            out.append(os.path.relpath(full, root))
            continue
        for dirpath, dirnames, names in os.walk(full):
            dirnames[:] = [d for d in dirnames if not d.endswith("_fixtures")]
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.relpath(os.path.join(dirpath, name),
                                               root))
    return sorted(set(out))


def build_model(root, files, frontend_choice, build_dir):
    model = Model()
    errors = []
    use_libclang = False
    if frontend_choice == "libclang":
        if not frontend_libclang.available():
            print("analyze: --frontend=libclang requested but the clang "
                  "python bindings / libclang.so are not available",
                  file=sys.stderr)
            sys.exit(2)
        use_libclang = True
    elif frontend_choice == "auto":
        use_libclang = frontend_libclang.available()

    if use_libclang and build_dir is not None:
        model.frontend = "libclang"
        errors += frontend_libclang.parse_with_libclang(files, build_dir,
                                                        model)
    else:
        model.frontend = "tokens"
        for rel in files:
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                text = fh.read()
            errors += frontend.parse_source(text, rel, model)
    return model, errors


def main(argv=None):
    ap = argparse.ArgumentParser(prog="tools/analyze", description=__doc__)
    ap.add_argument("-p", "--build-dir", default="",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--paths", nargs="*", default=None,
                    help="analyze these files/dirs instead of src/ "
                         "(fixture/test mode; skips the compile_commands "
                         "requirement)")
    ap.add_argument("--checks", default="",
                    help="comma-separated subset of checks to run")
    ap.add_argument("--frontend", choices=("auto", "tokens", "libclang"),
                    default="auto")
    ap.add_argument("--list", action="store_true", help="list checks")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    args = ap.parse_args(argv)

    if args.list:
        for name in sorted(checks_mod.ALL_CHECKS):
            print(name)
        return 0

    root = args.root
    fixture_mode = args.paths is not None
    build_dir = None
    if not fixture_mode:
        build_dir = find_build_dir(root, args.build_dir)
        if build_dir is None:
            where = args.build_dir or " or ".join(DEFAULT_BUILD_DIRS)
            print(f"analyze: no compile_commands.json under {where}.\n"
                  "  The analyzer needs an exported compilation database — "
                  "configure any build tree first:\n"
                  "    cmake -B build -S .   "
                  "(CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)\n"
                  "  or point at one with: tools/analyze -p <build-dir>",
                  file=sys.stderr)
            return 2

    paths = args.paths if fixture_mode else list(config.DEFAULT_ANALYSIS_DIRS)
    files = collect_files(root, paths)
    if not files:
        print(f"analyze: no source files under {paths}", file=sys.stderr)
        return 2

    selected = sorted(checks_mod.ALL_CHECKS)
    if args.checks:
        selected = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in selected if c not in checks_mod.ALL_CHECKS]
        if unknown:
            print(f"analyze: unknown checks: {', '.join(unknown)} "
                  f"(try --list)", file=sys.stderr)
            return 2

    prev_cwd = os.getcwd()
    os.chdir(root)  # repo-relative paths throughout
    try:
        model, errors = build_model(root, files, args.frontend, build_dir)
        graph = CallGraph(model)
        findings = []
        for name in selected:
            findings.extend(checks_mod.ALL_CHECKS[name](model, graph))
    finally:
        os.chdir(prev_cwd)

    findings.sort(key=lambda f: (f.file, f.line, f.check))
    if args.json:
        print(json.dumps(
            [{"check": f.check, "file": f.file, "line": f.line,
              "message": f.message} for f in findings], indent=2))
    else:
        for e in errors:
            print(e)
        for f in findings:
            print(f.render())
    n_fn = len(model.functions)
    print(f"analyze[{model.frontend}]: {len(files)} files, {n_fn} functions, "
          f"{len(selected)} checks, {len(findings)} finding(s), "
          f"{len(errors)} error(s)", file=sys.stderr)
    return 1 if (findings or errors) else 0


if __name__ == "__main__":
    sys.exit(main())
