"""Token-level C++ front end: builds the analysis Model (ir.py) from source
text without a compiler.

It is a structural parser, not a full C++ parser: it tracks namespaces,
classes, function definitions (including out-of-line `Class::Method` and
named local lambdas), brace scopes, RAII/manual lock acquisitions, loops,
call sites with their held-lock context, QueryContext poll sites, and
expression statements that discard a value. That is exactly the slice of the
language the checks need, and it is resilient: unknown constructs fall
through as plain tokens instead of failing the file.

When the libclang front end (frontend_libclang.py) is available it is
preferred for type-accurate receiver resolution; this front end is the
always-available baseline and the one exercised by the golden fixture tests
in CI images without libclang.
"""

from lexer import tokenize, code_tokens, collect_suppressions
from ir import CallSite, FileInfo, FunctionDef, LockAcq, Loop
import config

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "sizeof", "alignof", "new", "delete",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "throw",
    "try", "catch", "co_return", "co_await", "co_yield", "using", "typedef",
    "static_assert", "decltype", "noexcept", "operator", "this", "template",
    "typename", "public", "private", "protected", "friend",
}
# Keywords after which an `ident(` really is a call.
CALL_PREV_OK = {"return", "co_return", "co_await", "co_yield", "throw", "else",
                "do", "case"}
DECL_SPECIFIERS = {
    "static", "virtual", "inline", "constexpr", "consteval", "constinit",
    "explicit", "friend", "extern", "mutable", "thread_local", "typename",
    "const", "volatile",
}
CONTROL_STARTERS = {"if", "for", "while", "switch", "else", "do", "try",
                    "catch", "case", "default"}


def _norm_mutex_key(arg_tokens, cls):
    """Normalizes a lock-argument expression to a stable mutex identity."""
    texts = [t.text for t in arg_tokens]
    while texts and texts[0] in ("&", "*", "("):
        texts.pop(0)
    while texts and texts[-1] == ")":
        texts.pop()
    if len(texts) >= 2 and texts[0] == "this" and texts[1] in ("->", "."):
        texts = texts[2:]
    if not texts:
        return ""
    if len(texts) == 1 and cls:
        return f"{cls}::{texts[0]}"
    return "".join(texts)


class Parser:
    def __init__(self, toks, rel, model, raw_lines, errors):
        self.toks = toks
        self.rel = rel
        self.model = model
        self.raw_lines = raw_lines
        self.errors = errors

    # -- token helpers ------------------------------------------------------

    def match_brace(self, i):
        """toks[i] == '{' -> index of the matching '}' (or len(toks))."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == "{":
                depth += 1
            elif t == "}":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    def skip_group(self, i, open_ch, close_ch):
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == open_ch:
                depth += 1
            elif t == close_ch:
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    def skip_angles(self, i):
        """toks[i] == '<' -> index just past the matching '>' (template args).
        Treats '>>' as two closers."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # malformed / not a template — bail out
            i += 1
        return n

    # -- top-level structure ------------------------------------------------

    def parse_scope(self, i, end, cls):
        """Parses declarations in a namespace/class body region [i, end)."""
        toks = self.toks
        while i < end:
            t = toks[i]
            x = t.text
            if x == ";":
                i += 1
            elif x == "namespace":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";", "="):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = self.match_brace(j)
                    self.parse_scope(j + 1, close, cls)
                    i = close + 1
                else:
                    i = j + 1
            elif x in ("class", "struct", "union"):
                i = self.parse_class(i, end, cls)
            elif x == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = self.match_brace(j)
                j += 1
                while j < end and toks[j].text != ";":
                    j += 1
                i = j + 1
            elif x == "template":
                j = i + 1
                if j < end and toks[j].text == "<":
                    j = self.skip_angles(j)
                i = j
            elif x in ("public", "private", "protected"):
                i += 2 if i + 1 < end and toks[i + 1].text == ":" else 1
            elif x in ("using", "typedef", "static_assert", "extern", "friend"):
                # `extern "C" {` opens a scope; the rest run to ';'.
                if x == "extern" and i + 2 < end and toks[i + 2].text == "{":
                    close = self.match_brace(i + 2)
                    self.parse_scope(i + 3, close, cls)
                    i = close + 1
                    continue
                while i < end and toks[i].text != ";":
                    if toks[i].text == "{":
                        i = self.match_brace(i)
                    i += 1
                i += 1
            elif x == "{":
                close = self.match_brace(i)
                self.parse_scope(i + 1, close, cls)
                i = close + 1
            else:
                i = self.parse_declaration(i, end, cls)
        return i

    def parse_class(self, i, end, cls):
        toks = self.toks
        name = ""
        j = i + 1
        # Head runs to '{' (definition), ';' (fwd decl) or '=' (alias-ish).
        while j < end and toks[j].text not in ("{", ";", "="):
            if toks[j].kind == "ident" and toks[j].text not in ("final",):
                if j + 1 < end and toks[j + 1].text == "(":
                    # macro annotation like CAPABILITY("mutex") — skip it
                    j = self.skip_group(j + 1, "(", ")")
                elif toks[j].text == "alignas":
                    pass
                else:
                    name = toks[j].text
            if toks[j].text == ":":
                break  # base clause; name is fixed by now
            j += 1
        while j < end and toks[j].text not in ("{", ";", "="):
            if toks[j].text == "<":
                j = self.skip_angles(j)
                continue
            j += 1
        if j < end and toks[j].text == "{":
            close = self.match_brace(j)
            inner_cls = name or cls
            self.parse_scope(j + 1, close, inner_cls)
            j = close + 1
        # Trailing declarator list (`} name;`) or the fwd-decl ';'.
        while j < end and toks[j].text != ";":
            j += 1
        return j + 1

    # -- declarations / function definitions --------------------------------

    def parse_declaration(self, i, end, cls):
        """Parses one declaration starting at i. Detects function definitions
        and harvests Status/Result-returning declarations."""
        toks = self.toks
        head_start = i
        j = i
        paren = 0
        group_open = group_close = -1   # first top-level (...) group
        name_idx = -1
        saw_eq = False
        while j < end:
            x = toks[j].text
            if (x == "operator" and paren == 0 and group_open < 0
                    and not saw_eq):
                # Operator functions: `operator=(`, `operator==(`,
                # `operator()(`, conversion `operator bool(`. The symbol
                # tokens between `operator` and the parameter list must not
                # trip the `=`/declaration logic below.
                k = j + 1
                sym = []
                while k < end and toks[k].text not in ("(", ";", "{"):
                    sym.append(toks[k].text)
                    k += 1
                if k >= end or toks[k].text != "(":
                    return k + 1
                if not sym and k + 1 < end and toks[k + 1].text == ")":
                    sym = ["()"]  # operator()(params): first () is the name
                    k += 2
                    while k < end and toks[k].text != "(":
                        k += 1
                    if k >= end:
                        return end
                name_idx = j
                self._op_name = "operator" + "".join(sym)
                group_open = k
                group_close = self.skip_group(k, "(", ")")
                j = group_close + 1
                continue
            if x == "(":
                if paren == 0 and group_open < 0 and not saw_eq:
                    prev = toks[j - 1] if j > 0 else None
                    if prev is not None and (
                            prev.kind == "ident" and prev.text not in KEYWORDS
                            or prev.text == "operator"):
                        group_open = j
                        name_idx = j - 1
                        group_close = self.skip_group(j, "(", ")")
                        j = group_close + 1
                        continue
                paren += 1
            elif x == ")":
                paren -= 1
            elif paren == 0:
                if x == ";":
                    if name_idx >= 0:
                        self.harvest_decl(head_start, name_idx, cls)
                    return j + 1
                if x == "=":
                    saw_eq = True
                if x == "{":
                    if name_idx >= 0 and not saw_eq:
                        return self.parse_function(head_start, name_idx,
                                                   group_open, group_close,
                                                   j, cls)
                    close = self.match_brace(j)
                    j = close  # brace-init or stray block; run on to ';'
                if x == ":" and name_idx >= 0 and not saw_eq:
                    # ctor member-init list: find the body '{'.
                    k = j + 1
                    while k < end:
                        xt = toks[k].text
                        if xt == "(":
                            k = self.skip_group(k, "(", ")")
                        elif xt == "{":
                            prevt = toks[k - 1]
                            if prevt.kind == "ident" or prevt.text in (">",):
                                k = self.match_brace(k)  # brace-init item
                            else:
                                return self.parse_function(
                                    head_start, name_idx, group_open,
                                    group_close, k, cls)
                        elif xt == ";":
                            return k + 1  # e.g. bitfield — not a ctor
                        k += 1
                    return k
                if x == ":" and name_idx < 0:
                    # bitfield / label-ish: run to ';'
                    while j < end and toks[j].text != ";":
                        j += 1
                    return j + 1
            j += 1
        return end

    def head_annotation_keys(self, group_close, body_open, cls):
        """Collects REQUIRES/EXCLUSIVE_LOCKS_REQUIRED(...) keys between the
        parameter list and the body."""
        toks = self.toks
        keys = []
        k = group_close + 1
        while k < body_open:
            if (toks[k].kind == "ident"
                    and toks[k].text in config.REQUIRES_ANNOTATIONS
                    and k + 1 < body_open and toks[k + 1].text == "("):
                close = self.skip_group(k + 1, "(", ")")
                keys.append(_norm_mutex_key(toks[k + 2:close], cls))
                k = close
            k += 1
        return tuple(q for q in keys if q)

    def returns_status(self, head_start, name_start):
        """True if the return-type tokens are Status or Result<...>."""
        k = head_start
        toks = self.toks
        while k < name_start:
            t = toks[k]
            if t.text in DECL_SPECIFIERS or t.text in ("[", "]"):
                k += 1
                continue
            if t.kind == "ident" and t.text == "nodiscard":
                k += 1
                continue
            if t.kind == "ident":
                return t.text in ("Status", "Result")
            return False
        return False

    def _qual_chain(self, name_idx):
        """Walks `A::B::name` backwards; returns (first_head_idx, qual)."""
        toks = self.toks
        k = name_idx
        qual_parts = []
        while k - 2 >= 0 and toks[k - 1].text == "::" and toks[k - 2].kind == "ident":
            qual_parts.insert(0, toks[k - 2].text)
            k -= 2
        return k, "::".join(qual_parts)

    def harvest_decl(self, head_start, name_idx, cls):
        name_tok = self.toks[name_idx]
        if name_tok.kind != "ident" or name_tok.text in KEYWORDS:
            return
        chain_start, qual = self._qual_chain(name_idx)
        owner = qual.split("::")[-1] if qual else cls
        is_status = self.returns_status(head_start, chain_start)
        name = name_tok.text
        if name == owner or name in ("Status", "Result"):
            return  # constructor / the types themselves
        if is_status:
            self.model.status_names.add(name)
            if owner:
                self.model.status_names.add(f"{owner}::{name}")
        else:
            self.model.ambiguous_status_names.add(name)

    def parse_function(self, head_start, name_idx, group_open, group_close,
                       body_open, cls):
        toks = self.toks
        self.harvest_decl(head_start, name_idx, cls)
        chain_start, qual = self._qual_chain(name_idx)
        name = toks[name_idx].text
        if name == "operator":
            name = getattr(self, "_op_name", "operator?")
        owner = qual.split("::")[-1] if qual else cls
        qual_name = f"{owner}::{name}" if owner else name
        fn = FunctionDef(
            qual_name=qual_name, name=name, cls=owner, file=self.rel,
            line=toks[name_idx].line,
            requires=self.head_annotation_keys(group_close, body_open, owner),
        )
        fn.returns_status = self.returns_status(head_start, chain_start)
        body_close = self.match_brace(body_open)
        fn.end_line = toks[body_close].line
        BodyWalker(self, fn, owner).walk(body_open + 1, body_close)
        self.model.add_function(fn)
        # Run past the closing '}' (and a stray ';' if present).
        return body_close + 1


class BodyWalker:
    """Linear walk over one function body: scopes, locks, loops, calls,
    polls, statements. Anonymous lambdas are attributed to the enclosing
    function (lexical attribution — what the cadence check wants); named
    local lambdas (`auto f = [...](...) {...};`) become their own
    FunctionDefs so calls to them resolve."""

    def __init__(self, parser, fn, cls):
        self.p = parser
        self.fn = fn
        self.cls = cls
        self.held = list(fn.requires)       # lock keys currently held
        self.frames = []                    # (kind, held_len, loop_len)
        self.active_loops = []              # loop ids
        self.stmt_stack = [[]]              # buffers; top = current statement
        self.expect_do_while = []           # depths awaiting `while (...)` tail

    # -- helpers ------------------------------------------------------------

    def push_frame(self, kind):
        self.frames.append((kind, len(self.held), len(self.active_loops)))

    def pop_frame(self):
        kind, held_len, loop_len = self.frames.pop()
        del self.held[held_len:]
        del self.active_loops[loop_len:]
        return kind

    def flush_stmt(self):
        self.stmt_stack[-1] = []

    def add_loop(self, line, kind, infinite):
        loop = Loop(loop_id=len(self.fn.loops), line=line, kind=kind,
                    infinite=infinite,
                    parent=self.active_loops[-1] if self.active_loops else -1)
        self.fn.loops.append(loop)
        for lid in self.active_loops:
            self.fn.loops[lid].has_nested_loop = True
        self.active_loops.append(loop.loop_id)
        return loop

    def record_poll(self, line):
        self.fn.poll_lines = tuple(self.fn.poll_lines) + (line,)
        for lid in self.active_loops:
            lp = self.fn.loops[lid]
            lp.poll_lines = tuple(lp.poll_lines) + (line,)

    def receiver_of(self, toks, idx):
        """Builds the receiver/qualifier text for the call whose name is at
        token idx: walks back over `a.b->c::` chains."""
        parts = []
        k = idx - 1
        hops = 0
        while k > 0 and toks[k].text in (".", "->", "::") and hops < 8:
            parts.insert(0, toks[k].text)
            k -= 1
            if toks[k].kind == "ident" or toks[k].text in (")", "]"):
                parts.insert(0, toks[k].text if toks[k].kind == "ident" else "()")
                k -= 1
            hops += 1
        return "".join(parts[:-1]) if parts else ""

    # -- the walk -----------------------------------------------------------

    def walk(self, i, end):
        toks = self.p.toks
        paren = 0
        while i < end:
            t = toks[i]
            x = t.text
            buf = self.stmt_stack[-1]

            if x == "(":
                paren += 1
                buf.append(t)
                i += 1
                continue
            if x == ")":
                paren -= 1
                buf.append(t)
                i += 1
                continue

            if x == "{":
                if paren > 0:
                    # Anonymous lambda (or brace-init) inside an expression:
                    # its statements are processed in a nested buffer level.
                    self.push_frame("expr-brace")
                    self.stmt_stack.append([])
                    # paren depth is per-level; save it on the frame via a
                    # parallel trick: encode in stmt_stack? Keep a stack:
                    self._paren_save = getattr(self, "_paren_save", [])
                    self._paren_save.append(paren)
                    paren = 0
                    i += 1
                    continue
                named = self._named_lambda_start(buf)
                if named is not None:
                    close = self.p.match_brace(i)
                    lam = FunctionDef(
                        qual_name=f"{self.fn.qual_name}::{named}",
                        name=named, cls=self.cls, file=self.p.rel,
                        line=t.line, is_lambda=True,
                        parent=self.fn.qual_name)
                    lam.end_line = toks[close].line
                    BodyWalker(self.p, lam, self.cls).walk(i + 1, close)
                    self.p.model.add_function(lam)
                    self.flush_stmt()
                    i = close + 1
                    continue
                self.flush_stmt()
                self.push_frame("block")
                i += 1
                continue

            if x == "}":
                if self.frames:
                    kind = self.pop_frame()
                    if kind == "expr-brace":
                        self.stmt_stack.pop()
                        paren = self._paren_save.pop()
                        i += 1
                        continue
                self.flush_stmt()
                # A `do { ... }` body just closed? Swallow `while (...)`.
                if (self.expect_do_while
                        and self.expect_do_while[-1] == len(self.frames)
                        and i + 1 < end and toks[i + 1].text == "while"):
                    self.expect_do_while.pop()
                    k = i + 2
                    if k < end and toks[k].text == "(":
                        k = self.p.skip_group(k, "(", ")")
                    i = k + 1
                    continue
                i += 1
                continue

            if x == ";" and paren == 0:
                buf.append(t)
                self.finalize_statement(buf)
                self.flush_stmt()
                while self.frames and self.frames[-1][0] == "loop-stmt":
                    self.pop_frame()
                i += 1
                continue

            if x in ("for", "while") and paren == 0:
                self.flush_stmt()
                header_open = i + 1
                infinite = False
                kind = x
                if header_open < end and toks[header_open].text == "(":
                    header_close = self.p.skip_group(header_open, "(", ")")
                    inner = toks[header_open + 1:header_close]
                    inner_txt = [tt.text for tt in inner]
                    if x == "while" and inner_txt in (["true"], ["1"]):
                        infinite = True
                    if x == "for" and all(tt == ";" for tt in inner_txt):
                        infinite = True
                    if x == "for" and ":" in inner_txt:
                        kind = "range-for"
                    # Walk the header for calls/polls too (conditions poll).
                    self._scan_header(inner)
                else:
                    header_close = i
                # The frame snapshot must precede add_loop so popping the
                # frame deactivates this loop too.
                if header_close + 1 < end and toks[header_close + 1].text == "{":
                    self.push_frame("loop")
                    self.add_loop(t.line, kind, infinite)
                    i = header_close + 2
                else:
                    # Single-statement body: the loop stays active until the
                    # next ';' at this level — approximate with a frame that
                    # the ';' handler below pops.
                    self.push_frame("loop-stmt")
                    self.add_loop(t.line, kind, infinite)
                    i = header_close + 1
                continue

            if x == "do" and paren == 0:
                self.flush_stmt()
                if i + 1 < end and toks[i + 1].text == "{":
                    self.push_frame("loop")
                    self.add_loop(t.line, "do", False)
                    self.expect_do_while.append(len(self.frames) - 1)
                    i += 2
                else:
                    self.push_frame("loop-stmt")
                    self.add_loop(t.line, "do", False)
                    i += 1
                continue

            # RAII lock declaration: TYPE [<...>] NAME ( args ) ;
            if (t.kind == "ident" and t.text in config.RAII_LOCK_TYPES
                    and paren == 0):
                j = i + 1
                if j < end and toks[j].text == "<":
                    j = self.p.skip_angles(j)
                if (j < end and toks[j].kind == "ident"
                        and j + 1 < end and toks[j + 1].text == "("):
                    close = self.p.skip_group(j + 1, "(", ")")
                    key = _norm_mutex_key(toks[j + 2:close], self.cls)
                    if key:
                        self.fn.acquires.append(LockAcq(
                            key=key, line=t.line, kind="scoped",
                            held_before=tuple(self.held)))
                        self.held.append(key)
                    i = close + 1
                    continue

            # Call site: ident followed by '('.
            if (t.kind == "ident" and i + 1 < end
                    and toks[i + 1].text == "("
                    and t.text not in KEYWORDS):
                prev = toks[i - 1] if i > 0 else None
                is_decl = prev is not None and (
                    (prev.kind == "ident" and prev.text not in KEYWORDS
                     and prev.text not in CALL_PREV_OK)
                    or prev.text in (">", "*", "&")
                    and i >= 2 and toks[i - 2].kind == "ident")
                if prev is not None and prev.text in (".", "->", "::"):
                    is_decl = False
                if not is_decl:
                    self.record_call(t, self.receiver_of(toks, i))
                buf.append(t)
                i += 1
                continue

            buf.append(t)
            i += 1

            # Close single-statement loop bodies at their ';'.
            if x == ";" and paren == 0:
                pass  # handled above; unreachable

        # Function end: leftover buffer is not a statement (no trailing ';').

    def _scan_header(self, inner_tokens):
        for k, tt in enumerate(inner_tokens):
            if (tt.kind == "ident" and k + 1 < len(inner_tokens)
                    and inner_tokens[k + 1].text == "("
                    and tt.text not in KEYWORDS):
                recv = ""
                if k >= 2 and inner_tokens[k - 1].text in (".", "->", "::"):
                    recv = inner_tokens[k - 2].text
                self.record_call(tt, recv)

    def _named_lambda_start(self, buf):
        """`auto NAME = [...] ... {` (const auto also) -> NAME or None."""
        texts = [t.text for t in buf]
        if texts[:1] == ["const"]:
            texts = texts[1:]
        if len(texts) >= 4 and texts[0] == "auto" and texts[2] == "=" \
                and texts[3] == "[":
            return texts[1]
        return None

    def record_call(self, tok, receiver):
        name = tok.text
        qual = ""
        if "::" in receiver:
            qual = receiver.split("::")[0]
        cs = CallSite(name=name, qual=qual, receiver=receiver, line=tok.line,
                      locks_held=tuple(self.held),
                      loop_ids=tuple(self.active_loops))
        self.fn.calls.append(cs)
        for lid in self.active_loops:
            lp = self.fn.loops[lid]
            lp.call_ids = tuple(lp.call_ids) + (len(self.fn.calls) - 1,)
        # Manual lock transitions.
        key = _norm_mutex_key_from_text(receiver, self.cls)
        if name in config.MANUAL_ACQUIRE and receiver and key:
            self.fn.acquires.append(LockAcq(key=key, line=tok.line,
                                            kind="manual",
                                            held_before=tuple(self.held)))
            self.held.append(key)
        elif name in config.MANUAL_RELEASE and key in self.held:
            self.held.remove(key)
        # Poll sites.
        rl = receiver.lower()
        for pname, rsub in config.POLL_SITES:
            if name == pname and (not rsub or rsub in rl):
                self.record_poll(tok.line)
                break

    def finalize_statement(self, buf):
        """Statement-shaped analyses that need the whole statement: the
        discarded-Status candidates are stashed on the FunctionDef for the
        whole-program pass (the Status-name harvest completes only after all
        files are parsed)."""
        texts = [t.text for t in buf]
        if not texts:
            return
        stmt = _StatusStmt.classify(buf, texts)
        if stmt is not None:
            if not hasattr(self.fn, "status_stmts"):
                self.fn.status_stmts = []
            self.fn.status_stmts.append(stmt)


def _norm_mutex_key_from_text(receiver, cls):
    if not receiver:
        return ""
    r = receiver
    if r.startswith("this->") or r.startswith("this."):
        r = r.split(">", 1)[-1] if "->" in r else r.split(".", 1)[-1]
    if r.isidentifier() and cls:
        return f"{cls}::{r}"
    return r


class _StatusStmt:
    """A statement that *might* discard a Status: an expression statement
    whose outermost construct is a call (possibly under a (void)/static_cast
    <void> shroud or a comma operator). Stored token-texts + line; resolved
    against the completed Status-name harvest in the whole-program pass."""

    __slots__ = ("line", "texts", "void_cast", "kinds")

    def __init__(self, line, texts, void_cast):
        self.line = line
        self.texts = texts
        self.void_cast = void_cast

    @staticmethod
    def classify(buf, texts):
        first = texts[0]
        if first in CONTROL_STARTERS or first in ("return", "co_return",
                                                  "break", "continue", "goto",
                                                  "using", "typedef", "}",
                                                  "delete", "throw"):
            return None
        if first in config.STATUS_CONSUMING_MACROS:
            return None
        if first.startswith(config.TEST_MACRO_PREFIXES):
            return None
        # Any top-level assignment consumes.
        depth = 0
        for x in texts:
            if x in ("(", "["):
                depth += 1
            elif x in (")", "]"):
                depth -= 1
            elif depth == 0 and (x == "=" or (x.endswith("=") and len(x) == 2
                                 and x not in ("==", "!=", "<=", ">="))):
                return None
        void_cast = False
        k = 0
        # (void) prefix
        if texts[:3] == ["(", "void", ")"]:
            void_cast = True
            k = 3
        elif texts[:5] == ["static_cast", "<", "void", ">", "("]:
            void_cast = True
            k = 5
        # Expression must start with an identifier chain ending in a call.
        if k >= len(texts) or not _is_ident(texts[k]):
            return None
        # Declaration shape `Type name ...` (two idents in a row) -> skip.
        if k + 1 < len(texts) and _is_ident(texts[k + 1]):
            return None
        return _StatusStmt(buf[0].line, texts, void_cast)


def _is_ident(x):
    return bool(x) and (x[0].isalpha() or x[0] == "_")


def parse_source(text, rel, model):
    """Parses one file into the model; returns a list of error strings
    (currently only malformed suppression markers)."""
    errors = []
    supp = collect_suppressions(text, rel, errors)
    model.files[rel] = FileInfo(path=rel, suppressions=supp,
                                raw_lines=tuple(text.splitlines()))
    toks = code_tokens(tokenize(text))
    Parser(toks, rel, model, text.splitlines(), errors).parse_scope(
        0, len(toks), cls="")
    return errors
