"""Project-specific knowledge the checks consume: which types are locks,
which calls block, what counts as a QueryContext poll, where the query entry
points are, and which functions form the sanctioned page-mutation seam.

Keeping this in one module (instead of scattering string literals through the
checks) is what makes the analyzer maintainable as the tree grows: a new
subsystem usually means a few additions here, not a new pass.
"""

# ---------------------------------------------------------------------------
# Locks.

# RAII scope types that acquire on construction and release at end of scope.
# The token frontend recognizes `TYPE name(&expr)` / `TYPE<..> name(expr)`.
RAII_LOCK_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}

# Manual acquire/release method names on lock objects.
MANUAL_ACQUIRE = {"Lock", "lock"}
MANUAL_RELEASE = {"Unlock", "unlock"}
MANUAL_TRY = {"try_lock", "TryLock"}

# Condition-variable waits. These *release* the innermost lock while waiting,
# so they only count as blocking-under-lock when a second mutex is held.
CV_WAIT_NAMES = {"wait", "wait_for", "wait_until"}

# Thread-safety annotation spellings that mean "caller must hold".
REQUIRES_ANNOTATIONS = {"REQUIRES", "EXCLUSIVE_LOCKS_REQUIRED"}

# ---------------------------------------------------------------------------
# Blocking operations (may sleep, fsync, fault-retry, or do file I/O).
#
# Flagged when called with any mutex held (cv waits: see above). The names are
# matched against the callee; the receiver is reported for context. `join`
# covers std::thread joins (a join under a lock is a deadlock factory).
BLOCKING_CALLS = {
    "Sync", "Fsync", "Flush", "FlushAll",
    "ReadPage", "WritePage", "AllocatePage",
    "Append", "Replay", "Reset",
    "Read", "Write",
    "RetryTransient",
    "sleep_for", "sleep_until",
    "join",
}
# Receivers whose `Read`/`Write`/`Reset` are NOT file I/O (metrics, counters,
# string streams, token resets). Calls on these receivers are exempt.
NONBLOCKING_RECEIVER_HINTS = (
    "counter", "gauge", "hist", "metric", "stats", "stream", "token",
    "trace", "timer", "rng",
)

# ---------------------------------------------------------------------------
# Cancellation cadence.

# Query-path entry points: a loop reachable from any of these must poll the
# QueryContext (PR 5 contract). Matched on the unqualified function name.
QUERY_ENTRY_POINTS = {
    "Query", "RunQuery", "RunDiskQuery", "BatchQuery",
    "RangeQuery", "FilteredQuery", "DecisionQuery",
}

# A direct poll site: any of these spellings touching a context/deadline.
# (method name, receiver substring) — receiver "" matches anything.
POLL_SITES = [
    ("CheckNow", ""),
    ("Check", "ctx"),
    ("CheckEvery", ""),
    ("cancelled", "ctx"),
    ("cancelled", "cancel"),
    ("Expired", "deadline"),
    ("Expired", "ctx"),
]

# Functions whose loops are exempt because they are pure per-vector math
# bounded by the dimension or k (the cadence contract bounds *scan* work, not
# one distance computation).
CADENCE_EXEMPT_FUNCTIONS = set()

# Subtrees exempt from the cadence contract wholesale. src/baselines/ holds
# the offline evaluation reference implementations (E2LSH, LSB-forest,
# multi-probe, SRS) — they run under the bench harness, take no QueryContext
# by design, and are not servable query paths (ROADMAP scope).
CADENCE_EXEMPT_PREFIXES = ("src/baselines/",)

# How deep to chase "this call eventually loops / polls" through the call
# graph before giving up (keeps the walk linear on this tree's size).
CALL_GRAPH_DEPTH = 6

# ---------------------------------------------------------------------------
# Mutation-seam confinement.

# The page-mutation primitives that must stay behind the WAL-backed seam.
SEAM_PRIMITIVES = {"WritePage", "AllocatePage", "SetUserRoot"}

# Function-level seam membership (retires the old file-path heuristic):
#   - every function defined in a file under src/storage/ is in the seam
#     (the storage layer IS the mutation machinery), and
#   - the explicitly sanctioned compaction/recovery/publish functions of the
#     disk index, listed by qualified name.
SEAM_DIR_PREFIX = "src/storage/"
SEAM_FUNCTIONS = {
    # Bootstrap: writes the meta tree and publishes the initial user_root
    # before the index is visible to readers.
    "DiskC2lshIndex::Build",
    # The compaction fold + atomic user_root publish.
    "DiskC2lshIndex::Compact",
}
# Directories whose direct primitive calls are exempt (they tear state on
# purpose): tests, tools, bench, fuzz.
SEAM_EXEMPT_PREFIXES = ("tests/", "tools/", "bench/", "fuzz/", "examples/")

# ---------------------------------------------------------------------------
# Status discipline.

# Statement wrappers that consume a Status by construction.
STATUS_CONSUMING_MACROS = {
    "C2LSH_RETURN_IF_ERROR", "C2LSH_ASSIGN_OR_RETURN",
    "ASSERT_OK", "EXPECT_OK",
}
# gtest / test-assertion prefixes: anything starting with these consumes.
TEST_MACRO_PREFIXES = ("ASSERT_", "EXPECT_")

# Analyzed tree: which top-level dirs the default run covers. tests/, bench/
# and tools/ are covered by the compiler's [[nodiscard]] (always built); the
# analyzer focuses on library invariants.
DEFAULT_ANALYSIS_DIRS = ("src",)
