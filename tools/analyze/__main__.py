import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cli  # noqa: E402

sys.exit(cli.main())
