"""Optional libclang front end: builds the same ir.Model from real ASTs when
the `clang` Python bindings and a libclang shared object are available.

This container image ships GCC + LLVM static libs but neither libclang's C
API nor the python bindings, so the default environment runs the token front
end (frontend.py); on developer machines / CI images with `python3-clang`
installed, `--frontend=libclang` (or auto-detection) upgrades receiver and
return-type resolution to the compiler's own view. The two front ends emit
the identical IR, and the golden fixture suite pins the findings either way.

Kept deliberately compact: it resolves compile flags from
compile_commands.json, walks cursors, and fills the same FunctionDef fields
the token front end does.
"""

import json
import os

import config
from ir import CallSite, FileInfo, FunctionDef, LockAcq, Loop
from lexer import collect_suppressions


def available():
    try:
        import clang.cindex as ci
        ci.Index.create()
        return True
    except Exception:  # ImportError or missing libclang.so
        return False


def parse_with_libclang(files, build_dir, model):
    """Parses `files` (repo-relative paths) into `model`. Returns a list of
    error strings. Only call when available() is True."""
    import clang.cindex as ci

    errors = []
    args_by_file = {}
    ccpath = os.path.join(build_dir, "compile_commands.json")
    if os.path.exists(ccpath):
        with open(ccpath, encoding="utf-8") as fh:
            for entry in json.load(fh):
                rel = os.path.relpath(entry["file"])
                cmd = entry.get("arguments") or entry.get("command", "").split()
                # Drop the compiler, -c/-o pairs and the input itself.
                flags, skip = [], False
                for a in cmd[1:]:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", "-o"):
                        skip = a == "-o"
                        continue
                    if a.endswith((".cc", ".cpp", ".o")):
                        continue
                    flags.append(a)
                args_by_file[rel] = flags

    index = ci.Index.create()
    for rel in files:
        with open(rel, encoding="utf-8") as fh:
            text = fh.read()
        supp = collect_suppressions(text, rel, errors)
        model.files[rel] = FileInfo(path=rel, suppressions=supp,
                                    raw_lines=tuple(text.splitlines()))
        flags = args_by_file.get(rel, ["-std=c++20", "-I."])
        try:
            tu = index.parse(rel, args=flags)
        except ci.TranslationUnitLoadError as e:
            errors.append(f"{rel}:1: [frontend] libclang failed: {e}")
            continue
        _walk_tu(ci, tu, rel, model)
    return errors


def _walk_tu(ci, tu, rel, model):
    K = ci.CursorKind

    def spelled_mutex(cursor):
        toks = [t.spelling for t in cursor.get_tokens()]
        while toks and toks[0] in ("&", "*", "("):
            toks.pop(0)
        return "".join(toks[:4])

    def visit_fn(cursor):
        cls = ""
        sem = cursor.semantic_parent
        if sem is not None and sem.kind in (K.CLASS_DECL, K.STRUCT_DECL):
            cls = sem.spelling
        name = cursor.spelling
        qual_name = f"{cls}::{name}" if cls else name
        fn = FunctionDef(qual_name=qual_name, name=name, cls=cls, file=rel,
                         line=cursor.location.line,
                         end_line=cursor.extent.end.line)
        rt = cursor.result_type.spelling
        fn.returns_status = rt == "Status" or rt.startswith("Result<")
        state = {"held": [], "loops": []}
        _walk_body(ci, cursor, fn, state, cls, model)
        model.add_function(fn)
        if fn.returns_status:
            model.status_names.add(name)
            if cls:
                model.status_names.add(f"{cls}::{name}")
        else:
            model.ambiguous_status_names.add(name)

    def top(cursor):
        for ch in cursor.get_children():
            if ch.location.file is None or \
                    os.path.relpath(ch.location.file.name) != rel:
                continue
            if ch.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                           K.DESTRUCTOR) and ch.is_definition():
                visit_fn(ch)
            else:
                top(ch)

    top(tu.cursor)


def _walk_body(ci, cursor, fn, state, cls, model):
    K = ci.CursorKind
    for ch in cursor.get_children():
        kind = ch.kind
        if kind in (K.FOR_STMT, K.WHILE_STMT, K.DO_STMT,
                    K.CXX_FOR_RANGE_STMT):
            loop = Loop(loop_id=len(fn.loops), line=ch.location.line,
                        kind="for" if kind == K.FOR_STMT else "while",
                        parent=state["loops"][-1] if state["loops"] else -1)
            fn.loops.append(loop)
            for lid in state["loops"]:
                fn.loops[lid].has_nested_loop = True
            state["loops"].append(loop.loop_id)
            _walk_body(ci, ch, fn, state, cls, model)
            state["loops"].pop()
            continue
        if kind == K.VAR_DECL and ch.type.spelling.split("::")[-1].split(
                "<")[0] in config.RAII_LOCK_TYPES:
            key = spelled_arg = ""
            for sub in ch.get_children():
                spelled_arg = "".join(
                    t.spelling for t in sub.get_tokens())[:48]
            key = spelled_arg.lstrip("&(")
            if key:
                if key.isidentifier() and cls:
                    key = f"{cls}::{key}"
                fn.acquires.append(LockAcq(key=key, line=ch.location.line,
                                           kind="scoped",
                                           held_before=tuple(state["held"])))
                state["held"].append(key)
        if kind in (K.CALL_EXPR, K.MEMBER_REF_EXPR) and kind == K.CALL_EXPR:
            callee = ch.spelling or ""
            receiver = ""
            chn = list(ch.get_children())
            if chn and chn[0].kind == K.MEMBER_REF_EXPR:
                sub = list(chn[0].get_children())
                if sub:
                    receiver = "".join(
                        t.spelling for t in sub[0].get_tokens())[:32]
            cs = CallSite(name=callee, qual="", receiver=receiver,
                          line=ch.location.line,
                          locks_held=tuple(state["held"]),
                          loop_ids=tuple(state["loops"]))
            fn.calls.append(cs)
            for lid in state["loops"]:
                lp = fn.loops[lid]
                lp.call_ids = tuple(lp.call_ids) + (len(fn.calls) - 1,)
            rl = receiver.lower()
            for pname, rsub in config.POLL_SITES:
                if callee == pname and (not rsub or rsub in rl):
                    fn.poll_lines = tuple(fn.poll_lines) + (ch.location.line,)
                    for lid in state["loops"]:
                        lp = fn.loops[lid]
                        lp.poll_lines = tuple(lp.poll_lines) + \
                            (ch.location.line,)
        _walk_body(ci, ch, fn, state, cls, model)
