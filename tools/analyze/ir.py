"""The analysis IR shared by both front ends (token-level and libclang).

Everything downstream — the lock-order graph, the cancellation cadence walk,
the seam confinement check — consumes only these shapes, so the checks do not
care which front end produced the model.
"""

from dataclasses import dataclass, field


@dataclass
class CallSite:
    """One call expression inside a function body."""
    name: str                 # unqualified callee name, e.g. "WritePage"
    qual: str                 # qualifier if spelled, e.g. "WriteAheadLog" for A::B()
    receiver: str             # receiver expression text for member calls ("" if free)
    line: int = 0
    locks_held: tuple = ()    # normalized mutex keys held at the call site
    loop_ids: tuple = ()      # ids (into FunctionDef.loops) of enclosing loops


@dataclass
class LockAcq:
    """One mutex acquisition (RAII scope, manual Lock(), or REQUIRES entry)."""
    key: str                  # normalized mutex identity, e.g. "BufferPool::mu_"
    line: int = 0
    kind: str = "scoped"      # scoped | manual | requires
    held_before: tuple = ()   # keys already held when this one was taken


@dataclass
class Loop:
    loop_id: int
    line: int = 0
    kind: str = "for"         # for | while | do | range-for
    infinite: bool = False    # while(true) / for(;;)
    parent: int = -1          # enclosing loop id, -1 if top-level in the body
    has_nested_loop: bool = False
    poll_lines: tuple = ()    # lines of direct QueryContext poll sites in span
    call_ids: tuple = ()      # indices into FunctionDef.calls made inside the span


@dataclass
class FunctionDef:
    qual_name: str            # "Class::Name" or "Name"
    name: str                 # unqualified
    cls: str                  # enclosing class ("" for free functions)
    file: str = ""            # repo-relative path
    line: int = 0
    end_line: int = 0
    is_lambda: bool = False   # named local lambda (auto f = [...](...) {...})
    parent: str = ""          # for lambdas: qual_name of the enclosing function
    requires: tuple = ()      # mutex keys from EXCLUSIVE_LOCKS_REQUIRED/REQUIRES
    acquires: list = field(default_factory=list)   # [LockAcq]
    calls: list = field(default_factory=list)      # [CallSite]
    loops: list = field(default_factory=list)      # [Loop]
    poll_lines: tuple = ()    # direct QueryContext poll sites anywhere in body
    returns_status: bool = False  # declared return type Status / Result<T>


@dataclass
class FileInfo:
    path: str                 # repo-relative
    suppressions: dict = field(default_factory=dict)  # check -> set(lines)
    raw_lines: tuple = ()     # source lines, for comment-adjacency rules


@dataclass
class Model:
    """Whole-program view over the analyzed translation units."""
    functions: dict = field(default_factory=dict)   # qual_name -> FunctionDef
    by_name: dict = field(default_factory=dict)     # short name -> [qual_name]
    files: dict = field(default_factory=dict)       # path -> FileInfo
    # names declared with a Status/Result return type somewhere, and names
    # *also* declared with a different return type (ambiguous for unqualified
    # call resolution; qualified calls still resolve exactly).
    status_names: set = field(default_factory=set)
    ambiguous_status_names: set = field(default_factory=set)
    frontend: str = "tokens"

    def add_function(self, fn):
        # Lambdas and overloads: keep every definition distinguishable.
        key = fn.qual_name
        serial = 2
        while key in self.functions:
            key = f"{fn.qual_name}#{serial}"
            serial += 1
        self.functions[key] = fn
        self.by_name.setdefault(fn.name, []).append(key)
        return key

    def suppressed(self, check, path, line):
        fi = self.files.get(path)
        return fi is not None and line in fi.suppressions.get(check, ())


@dataclass(frozen=True)
class Finding:
    check: str
    file: str
    line: int
    message: str

    def render(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"
