"""Call resolution and memoized reachability predicates over the Model.

Resolution is name-based with precision tiers: local lambda > spelled
qualifier > same-class method > same-file definition > unique global name.
A short name that still matches several distinct definitions after those
tiers (e.g. `Reset` on a metrics counter vs. the WAL vs. the fault env) is
deliberately left unresolved: linking a receiver-dispatched call to every
same-named method in the tree manufactures lock-order edges and query-path
reachability that do not exist. The cost is that genuinely virtual dispatch
through a base pointer is invisible to the interprocedural passes — the
golden fixtures pin this trade-off and the tree-wide run is reviewed
finding-by-finding.
"""

import config


class CallGraph:
    def __init__(self, model):
        self.model = model
        self._polls = {}
        self._loops = {}
        self._blocking = {}

    # -- resolution ---------------------------------------------------------

    def resolve(self, caller, cs):
        """Returns the list of candidate FunctionDef keys for a call site."""
        m = self.model
        # Named local lambda of the caller (or of the caller's parent chain).
        scope = caller
        while scope is not None:
            key = f"{scope.qual_name}::{cs.name}"
            if key in m.functions:
                return [key]
            scope = m.functions.get(scope.parent) if scope.parent else None
        # Spelled qualifier: Class::Method(...).
        if cs.qual:
            hits = [k for k in m.by_name.get(cs.name, ())
                    if m.functions[k].cls == cs.qual]
            if hits:
                return hits
        # Unqualified call in a method: prefer the same class.
        if not cs.receiver and caller.cls:
            hits = [k for k in m.by_name.get(cs.name, ())
                    if m.functions[k].cls == caller.cls]
            if hits:
                return hits
        cands = list(m.by_name.get(cs.name, ()))
        # Locality: a definition in the caller's own file beats same-named
        # methods elsewhere in the tree.
        same_file = [k for k in cands if m.functions[k].file == caller.file]
        if same_file:
            return same_file
        # Unique global name (overload sets of one function count as unique).
        bases = {m.functions[k].qual_name.split("#")[0] for k in cands}
        if len(bases) <= 1:
            return cands
        return []  # ambiguous short name — refuse to over-link

    # -- memoized predicates ------------------------------------------------

    def _closure(self, key, cache, direct_fn, depth):
        if key in cache:
            return cache[key]
        cache[key] = False  # cycle guard
        fn = self.model.functions[key]
        if direct_fn(fn):
            cache[key] = True
            return True
        if depth <= 0:
            return False
        for cs in fn.calls:
            for cand in self.resolve(fn, cs):
                if self._closure(cand, cache, direct_fn, depth - 1):
                    cache[key] = True
                    return True
        return cache[key]

    def polls(self, key, depth=config.CALL_GRAPH_DEPTH):
        """Does this function (transitively) poll the QueryContext?"""
        return self._closure(key, self._polls,
                             lambda fn: bool(fn.poll_lines), depth)

    def has_loops(self, key, depth=2):
        """Does this function (shallow-transitively) iterate? Used to decide
        whether a loop that calls it does compound work."""
        return self._closure(key, self._loops,
                             lambda fn: bool(fn.loops), depth)

    def call_polls(self, caller, cs):
        return any(self.polls(k) for k in self.resolve(caller, cs))

    def call_has_loops(self, caller, cs):
        return any(self.has_loops(k) for k in self.resolve(caller, cs))

    # -- reachability -------------------------------------------------------

    def reachable_from(self, entry_keys):
        """BFS closure over resolved calls. Returns {key: entry_witness}."""
        seen = {}
        frontier = [(k, k) for k in entry_keys]
        while frontier:
            key, witness = frontier.pop()
            if key in seen:
                continue
            seen[key] = witness
            fn = self.model.functions[key]
            for cs in fn.calls:
                for cand in self.resolve(fn, cs):
                    if cand not in seen:
                        frontier.append((cand, witness))
        return seen
