"""A C++ token scanner that is exact about the things the analyzer cares
about: comments, string/char literals (including raw strings), preprocessor
directives (with line continuations), and line numbers.

It is NOT a preprocessor — macros are not expanded and conditional blocks are
taken as written. That is the right trade-off for this tree: the analyzer's
subjects (MutexLock scopes, call sites, loops, Status statements) all appear
literally in the source, and the project style keeps preprocessor tricks out
of function bodies (enforced culturally, and the checks would simply not see
code hidden behind unexpanded macros — same blind spot clang-tidy has with
macro-generated code).
"""

import bisect
import re
from dataclasses import dataclass

# Kinds: 'ident', 'num', 'str', 'char', 'punct', 'pp' (a whole preprocessor
# directive, continuations folded), 'comment' (kept so suppression markers
# survive into the token stream).
@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self):  # compact for golden-test debugging
        return f"{self.kind}:{self.text!r}@{self.line}"


_TOKEN_RE = re.compile(
    r"""
     (?P<ws>\s+)
    |(?P<lcomment>//[^\n]*)
    |(?P<bcomment>/\*.*?\*/)
    |(?P<rawstr>R"(?P<delim>[^()\s\\]*)\(.*?\)(?P=delim)")
    |(?P<str>"(?:[^"\\\n]|\\.)*")
    |(?P<char>'(?:[^'\\\n]|\\.)*')
    |(?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    |(?P<ident>[A-Za-z_]\w*)
    |(?P<punct>->\*?|\+\+|--|<<=|>>=|<=>|\.\.\.|::|&&|\|\||<<|>>
      |[-+*/%&|^!=<>]=|[{}()\[\];,.:?~&|^!<>=+\-*/%#@$`\\])
    """,
    re.DOTALL | re.VERBOSE,
)

# (leading indentation is consumed by the preceding whitespace token, so a
# directive always presents as '#' at the cursor when at_line_start is set)


def tokenize(text):
    """Returns a list of Tokens. Never raises on malformed input: anything the
    scanner cannot classify is emitted as a 1-char 'punct' token, so the
    analyzer degrades instead of dying on exotic code."""
    # Line table for offset -> line translation.
    nl_offsets = [m.start() for m in re.finditer(r"\n", text)]

    def line_of(off):
        return bisect.bisect_right(nl_offsets, off - 1) + 1

    tokens = []
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        if at_line_start and text[i] == "#":
            # Swallow the directive including backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    k = n
                if text.endswith("\\", 0, k) and k < n:
                    j = k + 1
                    continue
                # A // comment inside the directive can hide a continuation;
                # keep it simple: a backslash-newline only continues when it
                # ends the raw line.
                if k > 0 and text[k - 1] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            tokens.append(Token("pp", text[i:j], line_of(i)))
            i = j
            continue
        m = _TOKEN_RE.match(text, i)
        if m is None:
            tokens.append(Token("punct", text[i], line_of(i)))
            i += 1
            at_line_start = text[i - 1] == "\n"
            continue
        kind = m.lastgroup
        if kind == "delim":  # subgroup of rawstr; normalize
            kind = "rawstr"
        tok_text = m.group(0)
        if kind == "ws":
            if "\n" in tok_text:
                at_line_start = True
        else:
            at_line_start = False
            if kind in ("lcomment", "bcomment"):
                tokens.append(Token("comment", tok_text, line_of(m.start())))
            elif kind == "rawstr":
                tokens.append(Token("str", tok_text, line_of(m.start())))
            else:
                tokens.append(Token(kind, tok_text, line_of(m.start())))
        i = m.end()
    return tokens


def code_tokens(tokens):
    """The token stream without comments and preprocessor directives — what
    the structural passes walk."""
    return [t for t in tokens if t.kind not in ("comment", "pp")]


SUPPRESS_RE = re.compile(r"//\s*analyze-ok\(([\w-]+)\)\s*:\s*(\S.*)")
BARE_SUPPRESS_RE = re.compile(r"//\s*analyze-ok\(([\w-]+)\)\s*(?::\s*)?$")


def collect_suppressions(text, path, errors):
    """Scans raw source for `// analyze-ok(check): justification` markers.

    Returns {check-name: set(lines)} where a marker on line L suppresses
    findings of that check on L and L+1 (marker-above-statement style). A
    marker with an empty justification is itself reported as an error: the
    whole point of inline suppression is the recorded reason.
    """
    out = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if m:
            out.setdefault(m.group(1), set()).update({lineno, lineno + 1})
            continue
        if BARE_SUPPRESS_RE.search(line):
            errors.append(
                f"{path}:{lineno}: [suppression] analyze-ok marker has no "
                "justification — write `// analyze-ok(check): <why this is safe>`")
    return out
