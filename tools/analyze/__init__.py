# tools/analyze — AST-grounded invariant analyzer for the c2lsh tree.
#
# The package is runnable (`python3 tools/analyze`) and importable from the
# test runners. Modules use flat intra-package imports so both entry styles
# work without an installed package.
