"""The project-invariant checks. Each takes (model, graph) and returns a
list of ir.Finding, already filtered through inline `analyze-ok` suppressions.

  lock-order            cycles in the mutex-acquisition graph, and blocking
                        operations performed while holding a mutex
  cancellation-cadence  loops on the query path that do compound work and
                        never poll the QueryContext (the PR 5 contract)
  unchecked-status      statement-accurate discarded Status/Result<T>
                        (multi-line statements, comma operators, bare (void)
                        casts — the shapes the line-regex lint cannot see)
  mutation-seam         WritePage/AllocatePage/SetUserRoot call sites outside
                        the function-level mutation seam (storage layer +
                        the sanctioned disk-index compaction/publish set)
"""

import config
from ir import Finding


def _suppressed(model, check, fn_or_file, line):
    path = fn_or_file if isinstance(fn_or_file, str) else fn_or_file.file
    return model.suppressed(check, path, line)


def _emit(findings, model, check, path, line, message):
    if not model.suppressed(check, path, line):
        findings.append(Finding(check=check, file=path, line=line,
                                message=message))


# ---------------------------------------------------------------------------
# lock-order


def check_lock_order(model, graph):
    findings = []
    check = "lock-order"

    # Edge map: (held, acquired) -> first witness "file:line (function)".
    edges = {}

    def add_edge(a, b, fn, line):
        if a == b:
            return
        edges.setdefault((a, b), f"{fn.file}:{line} ({fn.qual_name})")

    # Transitive acquisition closure per function (what taking this call may
    # lock), memoized. REQUIRES keys are preconditions, not acquisitions.
    acq_cache = {}

    def acq_closure(key, depth=config.CALL_GRAPH_DEPTH):
        if key in acq_cache:
            return acq_cache[key]
        acq_cache[key] = frozenset()  # cycle guard
        fn = model.functions[key]
        out = {(a.key, a.line) for a in fn.acquires}
        if depth > 0:
            for cs in fn.calls:
                for cand in graph.resolve(fn, cs):
                    out |= {(k, cs.line) for (k, _l) in
                            acq_closure(cand, depth - 1)}
        acq_cache[key] = frozenset(out)
        return acq_cache[key]

    for key, fn in model.functions.items():
        # Intra-function: acquiring B while holding A.
        for acq in fn.acquires:
            for held in acq.held_before:
                add_edge(held, acq.key, fn, acq.line)
        # REQUIRES(A) functions that acquire B: the caller held A first.
        for req in fn.requires:
            for acq in fn.acquires:
                add_edge(req, acq.key, fn, acq.line)
        # Inter-procedural: calling something that (transitively) locks B
        # while holding A.
        for cs in fn.calls:
            if not cs.locks_held:
                continue
            for cand in graph.resolve(fn, cs):
                for (acquired, _line) in acq_closure(cand):
                    for held in cs.locks_held:
                        add_edge(held, acquired, fn, cs.line)

    # Cycle detection over the acquisition graph.
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
    for cycle in _find_cycles(adj):
        # Report at the witness of the first edge; suppression keys off it.
        a, b = cycle[0], cycle[1 % len(cycle)]
        witness = edges.get((a, b), "")
        path, _, rest = witness.partition(":")
        line = int(rest.split(" ")[0]) if rest else 1
        order = " -> ".join(cycle + [cycle[0]])
        wits = "; ".join(
            f"{x}->{y} at {edges[(x, y)]}"
            for x, y in zip(cycle, cycle[1:] + [cycle[0]]) if (x, y) in edges)
        _emit(findings, model, check, path, line,
              f"mutex acquisition cycle: {order} ({wits}) — a consistent "
              "global order is required; invert one of the nestings")

    # Blocking calls under a lock.
    for key, fn in model.functions.items():
        for cs in fn.calls:
            if not cs.locks_held:
                continue
            if cs.name in config.CV_WAIT_NAMES:
                # A cv wait releases the innermost lock while waiting; it only
                # wedges other threads if a *second* mutex stays held.
                if len(cs.locks_held) >= 2:
                    _emit(findings, model, check, fn.file, cs.line,
                          f"condition-variable {cs.name}() while holding "
                          f"{cs.locks_held[0]} in addition to the wait lock — "
                          "the outer mutex stays held for the whole wait")
                continue
            if cs.name not in config.BLOCKING_CALLS:
                continue
            recv = cs.receiver.lower()
            if any(h in recv for h in config.NONBLOCKING_RECEIVER_HINTS):
                continue
            _emit(findings, model, check, fn.file, cs.line,
                  f"blocking call {cs.receiver + '.' if cs.receiver else ''}"
                  f"{cs.name}() while holding "
                  f"{', '.join(cs.locks_held)} — I/O, fsync, waits and "
                  "retries must not run under a mutex (they serialize every "
                  "other thread behind a device latency)")
    return findings


def _find_cycles(adj):
    """Returns simple cycles as canonicalized node lists (deduplicated).
    Bounded DFS — the mutex graph is tiny."""
    cycles = set()
    for start in sorted(adj):
        stack = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adj.get(node, ())):
                if nxt == path[0] and len(path) > 0:
                    # canonical rotation: start at the smallest node
                    k = path.index(min(path))
                    cycles.add(tuple(path[k:] + path[:k]))
                elif nxt not in path and len(path) < 8:
                    stack.append((nxt, path + [nxt]))
    return [list(c) for c in sorted(cycles)]


# ---------------------------------------------------------------------------
# cancellation-cadence


def check_cancellation_cadence(model, graph):
    findings = []
    check = "cancellation-cadence"
    entries = [k for k, fn in model.functions.items()
               if fn.name in config.QUERY_ENTRY_POINTS
               and not fn.is_lambda]
    reachable = graph.reachable_from(entries)

    for key, entry in sorted(reachable.items()):
        fn = model.functions[key]
        if fn.qual_name.split("#")[0] in config.CADENCE_EXEMPT_FUNCTIONS:
            continue
        if fn.file.startswith(config.CADENCE_EXEMPT_PREFIXES):
            continue
        entry_name = model.functions[entry].qual_name
        for loop in fn.loops:
            # polls: a direct poll site lexically inside the span (inline
            # lambdas included), or a call inside the loop that resolves to
            # something that transitively polls.
            polls = bool(loop.poll_lines) or any(
                graph.call_polls(fn, fn.calls[ci]) for ci in loop.call_ids)
            if polls:
                continue
            # significance: infinite loops and compound-iteration loops only
            # (a leaf loop over one vector's dimensions is bounded by `d` and
            # is exactly the granularity the PR 5 cadence contract allows
            # between polls).
            significant = loop.infinite or loop.has_nested_loop or any(
                graph.call_has_loops(fn, fn.calls[ci])
                for ci in loop.call_ids)
            if not significant:
                continue
            # Inner loops whose enclosing loop already polls are covered by
            # the outer cadence only if the outer poll happens *per
            # iteration* of this loop — which a lexical span cannot prove, so
            # they are still reported; real cadence fixes poll in the scan.
            _emit(findings, model, check, fn.file, loop.line,
                  f"{loop.kind}-loop in {fn.qual_name} (reachable from query "
                  f"entry point {entry_name}) does compound work but never "
                  "polls the QueryContext — check ctx at a bounded cadence "
                  "(round boundary / kCheckIntervalMask increments) or "
                  "justify with analyze-ok(cancellation-cadence)")
    return findings


# ---------------------------------------------------------------------------
# unchecked-status


def check_unchecked_status(model, graph):
    findings = []
    check = "unchecked-status"
    short_status = {n for n in model.status_names if "::" not in n}
    qual_status = {n for n in model.status_names if "::" in n}
    unambiguous = short_status - model.ambiguous_status_names

    def call_is_status(name, qual):
        if qual and f"{qual}::{name}" in qual_status:
            return True
        return name in unambiguous

    for key, fn in model.functions.items():
        for stmt in getattr(fn, "status_stmts", ()):
            hit = _analyze_status_stmt(stmt, call_is_status)
            if hit is None:
                continue
            kind = hit
            if kind == "comma":
                _emit(findings, model, check, fn.file, stmt.line,
                      "comma operator discards the result of a "
                      "Status-returning call — check it or split the "
                      "statement")
            elif kind == "void-no-comment":
                fi = model.files.get(fn.file)
                if fi is not None and _has_adjacent_comment(fi.raw_lines,
                                                           stmt.line):
                    continue
                _emit(findings, model, check, fn.file, stmt.line,
                      "(void)-discarded Status needs a same-line or "
                      "preceding-line comment explaining why dropping the "
                      "error is safe")
            else:
                _emit(findings, model, check, fn.file, stmt.line,
                      f"result of Status-returning call {kind}() is "
                      "discarded — check it, use C2LSH_RETURN_IF_ERROR, or "
                      "cast to (void) with a justifying comment")
    return findings


def _analyze_status_stmt(stmt, call_is_status):
    """Returns None (fine), 'comma', 'void-no-comment', or the discarded
    callee name."""
    texts = stmt.texts
    k = 3 if stmt.void_cast and texts[0] == "(" else (
        5 if stmt.void_cast else 0)
    # Find top-level calls: (start_idx_of_name, close_idx).
    depth = 0
    calls = []
    commas = []
    i = k
    n = len(texts)
    while i < n:
        x = texts[i]
        if x in ("(", "["):
            if (x == "(" and depth == 0 and i > k
                    and _ident_like(texts[i - 1])):
                close = _match(texts, i)
                calls.append((i - 1, close))
                i = close + 1
                continue
            depth += 1
        elif x in (")", "]"):
            depth -= 1
        elif x == "," and depth == 0:
            commas.append(i)
        elif x == "<":
            # probable template args in a qualified call — skip shallowly
            pass
        i += 1
    if not calls:
        return None

    def call_name_qual(name_idx):
        name = texts[name_idx]
        qual = ""
        if name_idx >= 2 and texts[name_idx - 1] == "::" \
                and _ident_like(texts[name_idx - 2]):
            qual = texts[name_idx - 2]
        return name, qual

    # Comma operator: every call whose close is followed (at top level) by a
    # comma is discarded outright.
    for (ni, close) in calls:
        nxt = texts[close + 1] if close + 1 < len(texts) else ""
        if nxt == ",":
            name, qual = call_name_qual(ni)
            if call_is_status(name, qual):
                return "comma"
    # The statement's final value: the last top-level call, provided nothing
    # but ';' follows it (a trailing `.member(...)` chain becomes the last
    # call itself).
    ni, close = calls[-1]
    trailing = [x for x in texts[close + 1:] if x != ";"]
    if trailing:
        return None  # e.g. `foo(x)[i];` — not a plain discarded call
    name, qual = call_name_qual(ni)
    if not call_is_status(name, qual):
        return None
    if stmt.void_cast:
        return "void-no-comment"
    return name


def _ident_like(x):
    return bool(x) and (x[0].isalpha() or x[0] == "_")


def _match(texts, i):
    depth = 0
    while i < len(texts):
        if texts[i] == "(":
            depth += 1
        elif texts[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(texts) - 1


def _has_adjacent_comment(raw_lines, line):
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines):
            txt = raw_lines[ln - 1]
            if "//" in txt or "*/" in txt:
                return True
    return False


# ---------------------------------------------------------------------------
# mutation-seam


def _in_seam(model, fn):
    if fn.file.startswith(config.SEAM_DIR_PREFIX):
        return True
    scope = fn
    while scope is not None:
        if scope.qual_name.split("#")[0] in config.SEAM_FUNCTIONS:
            return True
        scope = model.functions.get(scope.parent) if scope.parent else None
    return False


def check_mutation_seam(model, graph):
    findings = []
    check = "mutation-seam"
    seen_seam_fns = set()
    for key, fn in model.functions.items():
        # Tests/tools/bench tear state on purpose — but fixture files under
        # *_fixtures simulate production code and stay in scope.
        if (fn.file.startswith(config.SEAM_EXEMPT_PREFIXES)
                and "analyze_fixtures/" not in fn.file):
            continue
        base = fn.qual_name.split("#")[0]
        if base in config.SEAM_FUNCTIONS:
            seen_seam_fns.add(base)
        for cs in fn.calls:
            if cs.name not in config.SEAM_PRIMITIVES:
                continue
            if not cs.receiver and not cs.qual:
                continue  # a free function of the same name, not the API
            if _in_seam(model, fn):
                continue
            _emit(findings, model, check, fn.file, cs.line,
                  f"{fn.qual_name} calls the page-mutation primitive "
                  f"{cs.name}() but is not part of the sanctioned seam "
                  "(src/storage/ functions + the allowlisted DiskC2lshIndex "
                  "compaction/recovery set in tools/analyze/config.py) — "
                  "route index changes through the WAL-backed "
                  "Insert/Delete/Compact path")
    # Config hygiene: allowlist entries that match nothing rot silently and
    # would quietly widen the seam if the function is later re-added with
    # different behavior. Only meaningful on a run that saw the disk index.
    if any(f.file.endswith("core/disk_index.cc") for f in
           model.functions.values()):
        for entry in sorted(config.SEAM_FUNCTIONS - seen_seam_fns):
            findings.append(Finding(
                check=check, file="tools/analyze/config.py", line=1,
                message=f"seam allowlist entry {entry} matches no function "
                        "definition — remove it or fix the name"))
    return findings


ALL_CHECKS = {
    "lock-order": check_lock_order,
    "cancellation-cadence": check_cancellation_cadence,
    "unchecked-status": check_unchecked_status,
    "mutation-seam": check_mutation_seam,
}
