// chaos_soak — runs the deterministic serving-stack chaos soak
// (src/serve/chaos.h) from the command line: fault-injected storage, an
// in-process transport with connection kills and short reads, insert/delete
// churn, overload waves into tiny admission quotas, a mid-soak graceful
// drain + restart, a forced drain-deadline overrun, and a crash-restart —
// then prints the ledger's verdict.
//
//   chaos_soak [--seed=1] [--ops=48] [--clients=4] [--long]
//              [--scratch=/tmp/c2lsh_chaos_soak]
//
// Exit status: 0 when every invariant held, 1 on a violation (each printed),
// 2 when the harness itself could not run. CI runs the short mode (defaults)
// under TSan via tools/check.sh's serve lane; --long multiplies the op count
// for soak-style runs. The same seed replays the same schedule.

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/serve/chaos.h"
#include "src/util/argparse.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser(
      "chaos_soak: deterministic fault/overload/drain/crash soak of the "
      "serving front end");
  parser.AddInt("seed", 1, "seed for the whole fault-and-churn schedule");
  parser.AddInt("ops", 48, "per-phase operation budget (short CI default)");
  parser.AddInt("clients", 4, "concurrent clients in the overload wave");
  parser.AddBool("long", false, "10x the op budget (soak mode)");
  parser.AddString("scratch", "/tmp/c2lsh_chaos_soak",
                   "scratch directory (created, removed on success)");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 parser.HelpString().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }

  serve::ChaosOptions options;
  options.seed = static_cast<uint64_t>(parser.GetInt("seed"));
  options.ops = static_cast<size_t>(parser.GetInt("ops"));
  if (parser.GetBool("long")) options.ops *= 10;
  options.clients = static_cast<size_t>(parser.GetInt("clients"));
  options.dir = parser.GetString("scratch");

  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create scratch dir %s: %s\n",
                 options.dir.c_str(), ec.message().c_str());
    return 2;
  }

  auto report_or = serve::ChaosSoak(options).Run();
  if (!report_or.ok()) {
    std::fprintf(stderr, "harness error: %s\n",
                 report_or.status().ToString().c_str());
    return 2;
  }
  const serve::ChaosReport& r = report_or.value();
  std::printf(
      "chaos soak (seed=%llu ops=%zu clients=%zu)\n"
      "  requests=%llu queries_ok=%llu partial=%llu unavailable=%llu "
      "other_errors=%llu\n"
      "  inserts_acked=%llu deletes_acked=%llu transport_kills=%llu "
      "anomaly_dumps=%llu\n"
      "  drain_met_deadline=%d forced_overrun_recorded=%d "
      "leaked_tickets=%zu leaked_connections=%zu\n",
      static_cast<unsigned long long>(options.seed), options.ops,
      options.clients, static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.queries_ok),
      static_cast<unsigned long long>(r.partial_results),
      static_cast<unsigned long long>(r.unavailable),
      static_cast<unsigned long long>(r.other_errors),
      static_cast<unsigned long long>(r.inserts_acked),
      static_cast<unsigned long long>(r.deletes_acked),
      static_cast<unsigned long long>(r.transport_kills),
      static_cast<unsigned long long>(r.anomaly_dumps),
      static_cast<int>(r.drain_met_deadline),
      static_cast<int>(r.forced_overrun_recorded), r.leaked_tickets,
      r.leaked_connections);
  if (!r.ok()) {
    std::printf("VIOLATIONS (%zu):\n", r.violations.size());
    for (const std::string& v : r.violations) {
      std::printf("  - %s\n", v.c_str());
    }
    std::printf("replay with --seed=%llu\n",
                static_cast<unsigned long long>(options.seed));
    return 1;
  }
  std::printf("all invariants held\n");
  std::filesystem::remove_all(options.dir, ec);  // keep the dir on failure
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
