// Fuzz target: PageFile::Open header recovery + page checksum verification.
//
// PageFile::Open decodes the shadow header slot pair (magic, version,
// page geometry, generation, user_root, crc32c) from whatever bytes are on
// disk after a crash, then ReadPage re-validates every page against its
// footer. Both parsers must reject arbitrary garbage with Corruption — not
// with an out-of-bounds read, a giant allocation, or an integer overflow in
// the offset arithmetic.
//
// When Open does accept the input (only reachable from crc-valid headers,
// i.e. mutated seed files), the harness exercises the full mutate-publish
// cycle and abort()s if it breaks: allocate + write + Sync + reopen + read
// back must succeed on a fault-free Env.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "fuzz/mem_env.h"
#include "src/storage/page_file.h"

namespace {
constexpr size_t kMaxInput = 1 << 20;
// Open bounds page_bytes to [64, 64 MiB]; only read pages when the claimed
// geometry keeps the scratch buffer (and physical page stride) small.
constexpr size_t kMaxPageBytes = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;

  c2lsh::fuzz::MemEnv env;
  env.SetFileBytes("pf.db", data, size);

  auto opened = c2lsh::PageFile::Open("pf.db", &env);
  if (!opened.ok()) return 0;  // Corruption/NotSupported — a valid outcome
  c2lsh::PageFile& pf = opened.value();
  if (pf.page_bytes() > kMaxPageBytes) return 0;

  std::vector<uint8_t> page(pf.page_bytes());
  const uint64_t scan = pf.num_pages() < 8 ? pf.num_pages() : 8;
  for (c2lsh::PageId id = 1; id <= scan; ++id) {
    // A torn/corrupt page is a valid outcome; crashing on one is not.
    if (!pf.ReadPage(id, page.data()).ok()) continue;
  }

  // Invariant: a successfully opened file accepts the normal mutate-publish
  // cycle, and the published state survives reopen.
  auto alloc = pf.AllocatePage();
  if (!alloc.ok()) std::abort();
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  if (!pf.WritePage(alloc.value(), page.data()).ok()) std::abort();
  pf.SetUserRoot(alloc.value());
  if (!pf.Sync().ok()) std::abort();

  auto reopened = c2lsh::PageFile::Open("pf.db", &env);
  if (!reopened.ok()) std::abort();
  if (reopened.value().user_root() != alloc.value()) std::abort();
  std::vector<uint8_t> back(reopened.value().page_bytes());
  if (!reopened.value().ReadPage(alloc.value(), back.data()).ok()) std::abort();
  if (back != page) std::abort();
  return 0;
}
