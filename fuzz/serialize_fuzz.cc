// Fuzz target: LoadIndex over attacker-controlled bytes.
//
// The index file carries length-prefixed sections (per-function projection
// rows, per-table pair counts) whose sizes the parser must bound-check
// against the actual file before allocating or reading — a forged
// num_objects or pair count must fail cleanly, not allocate terabytes or
// read past the buffer. The trailing crc32c rejects random mutation quickly,
// so most coverage of the field parsers comes from truncations of valid
// seeds (short reads hit every section boundary).
//
// When LoadIndex accepts the input, the save/load round trip must close:
// SaveIndex on the loaded index followed by LoadIndex must succeed on a
// fault-free Env. A failure there means load accepted parameters that save
// cannot re-serialize — abort().

#include <cstdint>
#include <cstdlib>

#include "fuzz/mem_env.h"
#include "src/core/serialize.h"

namespace {
constexpr size_t kMaxInput = 1 << 20;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;

  c2lsh::fuzz::MemEnv env;
  env.SetFileBytes("index.bin", data, size);

  auto loaded = c2lsh::LoadIndex("index.bin", &env);
  if (!loaded.ok()) return 0;  // Corruption/NotSupported — a valid outcome

  if (!c2lsh::SaveIndex("resaved.bin", &loaded.value(), &env).ok()) {
    std::abort();
  }
  auto reloaded = c2lsh::LoadIndex("resaved.bin", &env);
  if (!reloaded.ok()) std::abort();
  return 0;
}
