# ctest script for the fuzz_smoke test: generate seeds, then give each
# harness a short deterministic burst (corpus replay + 2000 mutated runs).
# Sanity for the wiring; the >=60s-per-harness soak lives in check.sh's fuzz
# lane.

file(MAKE_DIRECTORY ${WORK})
execute_process(COMMAND ${SEEDS} ${WORK}/corpus RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "make_seeds failed (${rc})")
endif()

foreach(pair "${WAL};wal" "${PAGE};page" "${SER};serialize")
  list(GET pair 0 bin)
  list(GET pair 1 sub)
  execute_process(
    COMMAND ${bin} -runs=2000 -seed=1 ${WORK}/corpus/${sub}
    WORKING_DIRECTORY ${WORK}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${bin} failed (${rc})")
  endif()
endforeach()
