// Fuzz target: WriteAheadLog::Open + Replay over attacker-controlled bytes.
//
// The WAL replay path is the first parser a crashed process runs, on a file
// that by definition may end mid-write. This harness feeds arbitrary bytes
// through the real Env seam and checks two things:
//
//   1. No crash, leak, or UB report (the sanitizers' job) — Replay must
//      reject any garbage with a Status, never by reading out of bounds.
//   2. The truncate-then-append invariant: once Replay has cut the torn
//      tail, an Append + Sync + reopen + Replay must succeed and deliver
//      the appended record. A violation means Replay left the append offset
//      pointing at garbage, which is exactly the corruption-resurrection
//      bug the shadowed layout exists to prevent — so it abort()s.

#include <cstdint>
#include <cstdlib>

#include "fuzz/mem_env.h"
#include "src/storage/wal.h"

namespace {
// Keep iterations fast: a valid frame is tens of bytes; 1 MiB of input is
// already thousands of frames.
constexpr size_t kMaxInput = 1 << 20;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;

  c2lsh::fuzz::MemEnv env;
  env.SetFileBytes("wal.log", data, size);

  auto wal = c2lsh::WriteAheadLog::Open("wal.log", &env);
  if (!wal.ok()) return 0;  // rejected header — a valid outcome

  uint64_t replayed = 0;
  auto replay = wal.value().Replay(
      /*applied_lsn=*/0, [&](const c2lsh::WriteAheadLog::Record& rec) {
        replayed += rec.vec.size() + 1;  // touch the payload
        return c2lsh::Status::OK();
      });
  if (!replay.ok()) return 0;  // corrupt-beyond-recovery is a valid outcome

  // Invariant: the log is now a valid prefix. Appending one record and
  // replaying from scratch must round-trip on a fault-free Env.
  c2lsh::WriteAheadLog::Record rec;
  rec.lsn = wal.value().last_lsn() + 1;
  rec.type = c2lsh::WriteAheadLog::RecordType::kDelete;
  rec.id = 7;
  if (!wal.value().Append(rec).ok()) std::abort();
  if (!wal.value().Sync().ok()) std::abort();

  auto reopened = c2lsh::WriteAheadLog::Open("wal.log", &env);
  if (!reopened.ok()) std::abort();
  bool saw_appended = false;
  auto replay2 = reopened.value().Replay(
      /*applied_lsn=*/0, [&](const c2lsh::WriteAheadLog::Record& r) {
        if (r.lsn == rec.lsn &&
            r.type == c2lsh::WriteAheadLog::RecordType::kDelete && r.id == 7) {
          saw_appended = true;
        }
        return c2lsh::Status::OK();
      });
  if (!replay2.ok() || !saw_appended) std::abort();
  return 0;
}
