// Standalone fuzz driver: a libFuzzer-shaped harness runner for toolchains
// without -fsanitize=fuzzer (GCC). It links against the same
// LLVMFuzzerTestOneInput entry point the real libFuzzer would, so a harness
// compiles unchanged under either driver; what it lacks is coverage
// feedback — mutation here is blind, seeded, and deterministic.
//
// Modes (combinable, libFuzzer-compatible flag names where they exist):
//
//   driver CORPUS...                      replay every file/dir once (regression mode)
//   driver -max_total_time=N CORPUS...    + N seconds of seeded mutation of the corpus
//   driver -runs=N CORPUS...              + exactly N mutated runs
//   driver -seed=S ...                    PRNG seed (default 20120817 — deterministic
//                                         runs are what makes a CI failure replayable;
//                                         the failing input is dumped to a file)
//
// Any abort/sanitizer report kills the process non-zero, which is what the
// check.sh fuzz lane treats as failure.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Bytes = std::vector<uint8_t>;

// xorshift64*: tiny, deterministic, and plenty for blind mutation.
uint64_t g_rng_state = 20120817;  // SIGMOD'12 venue date — arbitrary, stable
uint64_t NextRand() {
  uint64_t x = g_rng_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  g_rng_state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

Bytes ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void CollectCorpus(const std::string& arg, std::vector<Bytes>* corpus,
                   std::vector<std::string>* names) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> paths;
    for (const auto& e : fs::directory_iterator(arg, ec)) {
      if (e.is_regular_file()) paths.push_back(e.path().string());
    }
    std::sort(paths.begin(), paths.end());  // deterministic replay order
    for (const auto& p : paths) {
      corpus->push_back(ReadFileBytes(p));
      names->push_back(p);
    }
  } else {
    corpus->push_back(ReadFileBytes(arg));
    names->push_back(arg);
  }
}

constexpr size_t kMaxLen = 1 << 20;
const uint64_t kInteresting[] = {0,    1,        0x7F,       0xFF,
                                 256,  0xFFFF,   0x7FFFFFFF, 0xFFFFFFFF,
                                 ~0ULL};

// One blind mutation step. The menu mirrors libFuzzer's basics: bit flips,
// byte sets, interesting-value overwrites, truncation/extension, and cross-
// corpus splices (the splice is what stitches valid headers onto torn
// bodies, which is how most of the parser branches get reached without
// coverage feedback).
void MutateOnce(Bytes* b, const std::vector<Bytes>& corpus) {
  switch (NextRand() % 6) {
    case 0:  // bit flip
      if (!b->empty()) (*b)[NextRand() % b->size()] ^= 1u << (NextRand() % 8);
      break;
    case 1:  // byte set
      if (!b->empty()) {
        (*b)[NextRand() % b->size()] = static_cast<uint8_t>(NextRand());
      }
      break;
    case 2: {  // overwrite 1/2/4/8 bytes with an interesting value
      const size_t w = size_t{1} << (NextRand() % 4);
      if (b->size() >= w) {
        const size_t at = NextRand() % (b->size() - w + 1);
        const uint64_t v =
            kInteresting[NextRand() % (sizeof(kInteresting) / sizeof(uint64_t))];
        std::memcpy(b->data() + at, &v, w);
      }
      break;
    }
    case 3:  // truncate — the crash-tail case the WAL/PageFile formats defend
      if (!b->empty()) b->resize(NextRand() % b->size());
      break;
    case 4: {  // extend with random bytes
      const size_t add = NextRand() % 64;
      if (b->size() + add <= kMaxLen) {
        for (size_t i = 0; i < add; ++i) {
          b->push_back(static_cast<uint8_t>(NextRand()));
        }
      }
      break;
    }
    case 5: {  // splice: overwrite a window with a chunk of another input
      if (corpus.empty()) break;
      const Bytes& other = corpus[NextRand() % corpus.size()];
      if (other.empty() || b->empty()) break;
      const size_t len =
          1 + NextRand() % std::min(other.size(), b->size());
      const size_t src = NextRand() % (other.size() - len + 1);
      const size_t dst = NextRand() % (b->size() - len + 1);
      std::memcpy(b->data() + dst, other.data() + src, len);
      break;
    }
  }
}

// The input that is about to run, dumped on the way IN so an abort or
// sanitizer kill still leaves the reproducer on disk.
void DumpPendingInput(const Bytes& b) {
  std::ofstream out("fuzz-last-input.bin",
                    std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t max_seconds = 0;
  std::vector<Bytes> corpus;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(a.c_str() + 6, nullptr, 10);
    } else if (a.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::strtoull(a.c_str() + 16, nullptr, 10);
    } else if (a.rfind("-seed=", 0) == 0) {
      g_rng_state = std::strtoull(a.c_str() + 6, nullptr, 10) | 1;
    } else if (a.rfind("-", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return 2;
    } else {
      CollectCorpus(a, &corpus, &names);
    }
  }

  // Regression pass: every corpus entry exactly once.
  for (size_t i = 0; i < corpus.size(); ++i) {
    DumpPendingInput(corpus[i]);
    LLVMFuzzerTestOneInput(corpus[i].data(), corpus[i].size());
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

  if (runs == 0 && max_seconds == 0) {
    std::remove("fuzz-last-input.bin");
    return 0;
  }

  const std::time_t deadline =
      max_seconds > 0 ? std::time(nullptr) + static_cast<std::time_t>(max_seconds)
                      : 0;
  uint64_t executed = 0;
  Bytes input;
  for (;;) {
    if (runs > 0 && executed >= runs) break;
    if (deadline != 0 && std::time(nullptr) >= deadline) break;

    input = corpus.empty() ? Bytes() : corpus[NextRand() % corpus.size()];
    const size_t steps = 1 + NextRand() % 8;
    for (size_t s = 0; s < steps; ++s) MutateOnce(&input, corpus);
    if (input.size() > kMaxLen) input.resize(kMaxLen);

    DumpPendingInput(input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::fprintf(stderr, "executed %llu mutated runs (no crash)\n",
               static_cast<unsigned long long>(executed));
  std::remove("fuzz-last-input.bin");
  return 0;
}
