// MemEnv: an in-memory Env for the fuzz harnesses. Every fuzz iteration
// plants the input bytes as a "file" and lets the parser under test read it
// through the same Env seam production uses — no disk I/O, no tmpfile
// cleanup, and a fresh filesystem per iteration so corpus entries cannot
// contaminate each other.
//
// Unlike FaultInjectionEnv this never injects failures: a Status escaping a
// parser here is a verdict about the input bytes alone, which is what lets
// the harnesses abort() on broken round-trip invariants (append-after-replay,
// save-after-load) without false positives.

#pragma once
#ifndef C2LSH_FUZZ_MEM_ENV_H_
#define C2LSH_FUZZ_MEM_ENV_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/util/env.h"
#include "src/util/result.h"

namespace c2lsh {
namespace fuzz {

/// A RandomAccessFile over a shared byte vector. The vector is shared with
/// the owning MemEnv so reopening a path sees earlier writes (the reopen
/// round-trips in the harnesses depend on this).
class MemFile final : public RandomAccessFile {
 public:
  explicit MemFile(std::shared_ptr<std::vector<uint8_t>> bytes)
      : bytes_(std::move(bytes)) {}

  Status ReadAt(uint64_t offset, void* buf, size_t n,
                size_t* bytes_read) const override {
    *bytes_read = 0;
    if (offset >= bytes_->size()) return Status::OK();  // short read at EOF
    const size_t avail = static_cast<size_t>(bytes_->size() - offset);
    const size_t take = n < avail ? n : avail;
    std::memcpy(buf, bytes_->data() + offset, take);
    *bytes_read = take;
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    if (offset + n > bytes_->size()) bytes_->resize(offset + n, 0);
    std::memcpy(bytes_->data() + offset, buf, n);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Result<uint64_t> Size() const override {
    return static_cast<uint64_t>(bytes_->size());
  }

 private:
  std::shared_ptr<std::vector<uint8_t>> bytes_;
};

/// Path -> bytes map implementing the full Env factory surface.
class MemEnv final : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) override {
    auto bytes = std::make_shared<std::vector<uint8_t>>();
    files_[path] = bytes;
    std::unique_ptr<RandomAccessFile> f =
        std::make_unique<MemFile>(std::move(bytes));
    return f;
  }

  Result<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& path) override {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::IOError("MemEnv: no such file: " + path);
    }
    std::unique_ptr<RandomAccessFile> f = std::make_unique<MemFile>(it->second);
    return f;
  }

  bool FileExists(const std::string& path) const override {
    return files_.count(path) != 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (files_.erase(path) == 0) {
      return Status::IOError("MemEnv: no such file: " + path);
    }
    return Status::OK();
  }

  /// Plants `n` bytes at `path` — how each harness injects the fuzz input.
  void SetFileBytes(const std::string& path, const uint8_t* data, size_t n) {
    files_[path] =
        std::make_shared<std::vector<uint8_t>>(data, data + n);
  }

 private:
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> files_;
};

}  // namespace fuzz
}  // namespace c2lsh

#endif  // C2LSH_FUZZ_MEM_ENV_H_
